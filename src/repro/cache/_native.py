"""On-demand compilation and loading of the native sweep kernels.

The array-backed cache (:mod:`repro.cache.arraycache`) keeps all of its
state in numpy arrays; replaying a trace through that state is a tight
per-access loop that pure Python executes ~15-30x slower than necessary.
This module compiles ``_sweepkernel.c`` into a small shared library with
whatever C compiler the host has (``cc``/``gcc``/``clang``) and exposes it
through :mod:`ctypes` — no Python headers, build backends, or third-party
packages are involved, so the build degrades gracefully: when no compiler
is available (or ``REPRO_NATIVE=0`` is set) :func:`get_kernel` returns
``None`` and callers fall back to the pure-Python replay path, which
produces identical results.

The compiled library is cached under the user's cache directory keyed by a
hash of the C source, so recompilation happens only when the source
changes.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

__all__ = ["get_kernel", "native_available", "NativeKernel"]

_SOURCE = Path(__file__).with_name("_sweepkernel.c")

_I64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_U64 = np.ctypeslib.ndpointer(dtype=np.uint64, flags="C_CONTIGUOUS")

_kernel = None
_kernel_tried = False


class NativeKernel:
    """ctypes bindings for the compiled replay and monitoring kernels.

    One method per exported C function: ``lru_run`` (LRU/LIP), ``rrip_run``
    (SRRIP/BRRIP/DRRIP), ``dip_run`` (BIP/DIP), ``pdp_run`` (protecting
    distance), ``random_run`` (seeded random replacement), ``multi_lru_run``
    (several LRU/LIP configs in one trace pass), ``stack_hist_run``
    (one-shot Mattson stack-distance histogram), ``stack_hist_chunk`` /
    ``stack_state_rehash`` (the incremental, caller-owned-state variant),
    and ``vantage_run`` / ``vantage_realloc`` (line-granular Vantage
    partitioning with a shared unmanaged region).
    All replay kernels accept modulo or hashed set indexing, and all are
    chunk-resumable: state is passed in and returned, so split replays are
    bit-identical to one-shot replays.
    """

    def __init__(self, lib: ctypes.CDLL):
        self.lib = lib
        lib.lru_run.restype = ctypes.c_int64
        lib.lru_run.argtypes = [
            _I64, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            _I64, _I64, _I64,
            ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        ]
        lib.random_run.restype = ctypes.c_int64
        lib.random_run.argtypes = [
            _I64, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            _I64, _U64, ctypes.c_int64, ctypes.c_int64,
        ]
        lib.multi_lru_run.restype = ctypes.c_int64
        lib.multi_lru_run.argtypes = [
            _I64, ctypes.c_int64, ctypes.c_int64,
            _I64, _I64, _I64, _I64, _I64, _I64, _I64,
            ctypes.c_int64, ctypes.c_int64, _I64,
        ]
        lib.stack_hist_chunk.restype = ctypes.c_int64
        lib.stack_hist_chunk.argtypes = [
            _I64, ctypes.c_int64,
            _I64, _I64, ctypes.c_int64,
            _I64, ctypes.c_int64, _I64, _I64, _I64,
            _I64, ctypes.c_int64,
        ]
        lib.stack_state_rehash.restype = None
        lib.stack_state_rehash.argtypes = [
            _I64, _I64, ctypes.c_int64, _I64, _I64, ctypes.c_int64,
        ]
        lib.rrip_run.restype = ctypes.c_int64
        lib.rrip_run.argtypes = [
            _I64, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            ctypes.c_int64, _I64, _I64, _I64, _I64,
            ctypes.c_int64, ctypes.c_double, _U64, _I64, _I64,
            ctypes.c_int64, ctypes.c_int64,
            ctypes.c_int64, ctypes.c_int64,
        ]
        lib.dip_run.restype = ctypes.c_int64
        lib.dip_run.argtypes = [
            _I64, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            _I64, _I64, _I64,
            ctypes.c_int64, ctypes.c_double, _U64, _I64, _I64,
            ctypes.c_int64, ctypes.c_int64,
            ctypes.c_int64, ctypes.c_int64,
        ]
        lib.pdp_run.restype = ctypes.c_int64
        lib.pdp_run.argtypes = [
            _I64, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            _I64, _I64, _I64, _I64, _I64, _I64, _I64, _I64,
            ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            _I64, _I64, _I64, ctypes.c_int64,
            ctypes.c_int64, ctypes.c_int64,
        ]
        lib.stack_hist_run.restype = ctypes.c_int64
        lib.stack_hist_run.argtypes = [_I64, ctypes.c_int64, _I64]
        lib.part_lru_run.restype = ctypes.c_int64
        lib.part_lru_run.argtypes = [
            _I64, _I64, ctypes.c_int64, ctypes.c_int64,
            _I64, _I64, _I64,
            _I64, _I64, _I64,
            ctypes.c_int64, ctypes.c_int64, ctypes.c_int64, _I64,
        ]
        lib.part_srrip_run.restype = ctypes.c_int64
        lib.part_srrip_run.argtypes = [
            _I64, _I64, ctypes.c_int64, ctypes.c_int64,
            _I64, _I64, _I64,
            _I64, _I64, _I64, _I64,
            ctypes.c_int64, ctypes.c_int64, ctypes.c_int64, _I64,
        ]
        lib.vantage_run.restype = ctypes.c_int64
        lib.vantage_run.argtypes = [
            _I64, _I64, ctypes.c_int64, ctypes.c_int64, _I64,
            ctypes.c_int64,
            _I64, _I64, _I64, ctypes.c_int64,
            _I64, _I64, _I64,
            _I64, _I64, _I64, _I64, _I64,
        ]
        lib.vantage_realloc.restype = ctypes.c_int64
        lib.vantage_realloc.argtypes = [
            ctypes.c_int64, _I64, ctypes.c_int64,
            _I64, _I64, _I64, ctypes.c_int64,
            _I64, _I64, _I64,
            _I64, _I64, _I64, _I64,
        ]

    def lru_run(self, addrs, num_sets, ways, tags, stamp, counter,
                lip=0, hashed=0, index_seed=0) -> int:
        return int(self.lib.lru_run(addrs, addrs.size, num_sets, ways,
                                    tags, stamp, counter, lip, hashed,
                                    index_seed))

    def rrip_run(self, addrs, num_sets, ways, max_rrpv, tags, rrpv, stamp,
                 counter, mode, epsilon, rng_state, roles, psel,
                 psel_max, leader_levels, hashed=0, index_seed=0) -> int:
        return int(self.lib.rrip_run(addrs, addrs.size, num_sets, ways,
                                     max_rrpv, tags, rrpv, stamp, counter,
                                     mode, epsilon, rng_state, roles, psel,
                                     psel_max, leader_levels, hashed,
                                     index_seed))

    def dip_run(self, addrs, num_sets, ways, tags, stamp, counter, mode,
                epsilon, rng_state, roles, psel, psel_max, leader_levels,
                hashed=0, index_seed=0) -> int:
        return int(self.lib.dip_run(addrs, addrs.size, num_sets, ways,
                                    tags, stamp, counter, mode, epsilon,
                                    rng_state, roles, psel, psel_max,
                                    leader_levels, hashed, index_seed))

    def pdp_run(self, addrs, num_sets, ways, tags, stamp, counter, expires,
                clock, dp, sample_count, hist, max_dp, interval,
                clear_threshold, ls_tags, ls_clocks, ls_count, tsize,
                hashed=0, index_seed=0) -> int:
        return int(self.lib.pdp_run(addrs, addrs.size, num_sets, ways,
                                    tags, stamp, counter, expires, clock,
                                    dp, sample_count, hist, max_dp,
                                    interval, clear_threshold, ls_tags,
                                    ls_clocks, ls_count, tsize, hashed,
                                    index_seed))

    def random_run(self, addrs, num_sets, ways, tags, rng_state,
                   hashed=0, index_seed=0) -> int:
        return int(self.lib.random_run(addrs, addrs.size, num_sets, ways,
                                       tags, rng_state, hashed, index_seed))

    def multi_lru_run(self, addrs, num_configs, cfg_sets, cfg_ways, cfg_off,
                      tags, stamp, counters, lip, miss_out,
                      hashed=0, index_seed=0) -> int:
        """Replay one trace through several LRU/LIP configs in one pass;
        fills per-config miss counts into ``miss_out`` and returns the
        total."""
        return int(self.lib.multi_lru_run(addrs, addrs.size, num_configs,
                                          cfg_sets, cfg_ways, cfg_off, tags,
                                          stamp, counters, lip, hashed,
                                          index_seed, miss_out))

    def stack_hist_run(self, addrs, hist) -> int:
        """Fill ``hist`` with stack-distance counts; returns cold misses
        (or -1 when scratch allocation failed and nothing was written)."""
        return int(self.lib.stack_hist_run(addrs, addrs.size, hist))

    def stack_hist_chunk(self, addrs, tab_tags, tab_vals, tree, pos, live,
                         cold, hist) -> int:
        """Advance a caller-owned incremental stack-distance state by one
        chunk; returns 0, or -1 when the state arrays are too small for the
        chunk (grow and retry)."""
        return int(self.lib.stack_hist_chunk(
            addrs, addrs.size, tab_tags, tab_vals, tab_tags.size, tree,
            tree.size - 1, pos, live, cold, hist, hist.size))

    def stack_state_rehash(self, old_tags, old_vals, new_tags,
                           new_vals) -> None:
        """Re-probe every occupied slot of a last-position table into a
        larger caller-allocated table (``new_vals`` pre-filled with -1)."""
        self.lib.stack_state_rehash(old_tags, old_vals, old_tags.size,
                                    new_tags, new_vals, new_tags.size)

    def part_lru_run(self, addrs, parts, num_regions, region_sets,
                     region_ways, region_off, tags, stamp, counter, lip,
                     miss_out, hashed=0, index_seed=0) -> int:
        """Interleaved multi-partition LRU/LIP replay; fills per-partition
        miss counts into ``miss_out`` and returns the total (-1 on a bad
        partition id)."""
        return int(self.lib.part_lru_run(addrs, parts, addrs.size,
                                         num_regions, region_sets,
                                         region_ways, region_off, tags,
                                         stamp, counter, lip, hashed,
                                         index_seed, miss_out))

    def part_srrip_run(self, addrs, parts, num_regions, region_sets,
                       region_ways, region_off, tags, rrpv, stamp, counter,
                       max_rrpv, miss_out, hashed=0, index_seed=0) -> int:
        """Interleaved multi-partition SRRIP replay (see part_lru_run)."""
        return int(self.lib.part_srrip_run(addrs, parts, addrs.size,
                                           num_regions, region_sets,
                                           region_ways, region_off, tags,
                                           rrpv, stamp, counter, max_rrpv,
                                           hashed, index_seed, miss_out))

    def vantage_run(self, addrs, parts, num_parts, caps, unm_cap, ht_tag,
                    ht_reg, ht_node, node_tag, node_prev, node_next, head,
                    tail, occ, free_io, miss_out) -> int:
        """Partition-tagged Vantage replay (fully-associative LRU regions
        plus the shared unmanaged region); fills per-partition miss counts
        into ``miss_out`` and returns the total (negative on a bad
        partition id / exhausted node pool — both defensive)."""
        return int(self.lib.vantage_run(addrs, parts, addrs.size, num_parts,
                                        caps, unm_cap, ht_tag, ht_reg,
                                        ht_node, ht_tag.size, node_tag,
                                        node_prev, node_next, head, tail,
                                        occ, free_io, miss_out))

    def vantage_realloc(self, num_parts, new_caps, unm_cap, ht_tag, ht_reg,
                        ht_node, node_tag, node_prev, node_next, head, tail,
                        occ, free_io) -> int:
        """Warm Vantage reallocation: trim each managed region to its new
        capacity, demoting evicted victims into the unmanaged region."""
        return int(self.lib.vantage_realloc(num_parts, new_caps, unm_cap,
                                            ht_tag, ht_reg, ht_node,
                                            ht_tag.size, node_tag, node_prev,
                                            node_next, head, tail, occ,
                                            free_io))


def _cache_dir() -> Path:
    base = os.environ.get("XDG_CACHE_HOME")
    if base:
        return Path(base) / "repro-kernels"
    home = Path.home()
    if os.access(home, os.W_OK):
        return home / ".cache" / "repro-kernels"
    return Path(tempfile.gettempdir()) / "repro-kernels"


def _find_compiler() -> str | None:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _build_library() -> Path | None:
    if not _SOURCE.exists():
        return None
    source = _SOURCE.read_bytes()
    digest = hashlib.sha256(source).hexdigest()[:16]
    suffix = "dll" if sys.platform == "win32" else "so"
    cache = _cache_dir()
    lib_path = cache / f"sweepkernel-{digest}.{suffix}"
    if lib_path.exists():
        return lib_path
    compiler = _find_compiler()
    if compiler is None:
        return None
    try:
        cache.mkdir(parents=True, exist_ok=True)
        with tempfile.NamedTemporaryFile(
                suffix=f".{suffix}", dir=cache, delete=False) as tmp:
            tmp_path = Path(tmp.name)
        cmd = [compiler, "-O3", "-shared", "-fPIC",
               str(_SOURCE), "-o", str(tmp_path)]
        subprocess.run(cmd, check=True, capture_output=True, timeout=120)
        os.replace(tmp_path, lib_path)  # atomic against concurrent builders
        return lib_path
    except (OSError, subprocess.SubprocessError):
        try:
            tmp_path.unlink(missing_ok=True)
        except (OSError, UnboundLocalError):
            pass
        return None


def get_kernel() -> NativeKernel | None:
    """The compiled kernel bindings, or None when unavailable.

    The first call attempts the build; the result (including failure) is
    cached for the life of the process.  Set ``REPRO_NATIVE=0`` to force
    the pure-Python fallback.
    """
    global _kernel, _kernel_tried
    if _kernel_tried:
        return _kernel
    _kernel_tried = True
    if os.environ.get("REPRO_NATIVE", "1") == "0":
        return None
    lib_path = _build_library()
    if lib_path is None:
        return None
    try:
        _kernel = NativeKernel(ctypes.CDLL(str(lib_path)))
    except OSError:
        _kernel = None
    return _kernel


def native_available() -> bool:
    """Whether the native replay kernels can be used."""
    return get_kernel() is not None
