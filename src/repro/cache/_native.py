"""On-demand compilation and loading of the native sweep kernels.

The array-backed cache (:mod:`repro.cache.arraycache`) keeps all of its
state in numpy arrays; replaying a trace through that state is a tight
per-access loop that pure Python executes ~15-30x slower than necessary.
This module compiles ``_sweepkernel.c`` into a small shared library with
whatever C compiler the host has (``cc``/``gcc``/``clang``) and exposes it
through :mod:`ctypes` — no Python headers, build backends, or third-party
packages are involved, so the build degrades gracefully: when no compiler
is available (or ``REPRO_NATIVE=0`` is set) :func:`get_kernel` returns
``None`` and callers fall back to the pure-Python replay path, which
produces identical results.

The compiled library is cached under the user's cache directory keyed by a
hash of the C source, so recompilation happens only when the source
changes.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

__all__ = ["get_kernel", "native_available", "disable_native",
           "NativeKernel", "BatchTask",
           "resolve_threads",
           "KIND_LRU", "KIND_RRIP", "KIND_DIP", "KIND_PDP", "KIND_RANDOM",
           "KIND_PART_LRU", "KIND_PART_SRRIP", "KIND_VANTAGE",
           "KIND_TADRRIP", "KIND_BELADY"]

_SOURCE = Path(__file__).with_name("_sweepkernel.c")

_I64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_U64 = np.ctypeslib.ndpointer(dtype=np.uint64, flags="C_CONTIGUOUS")

_kernel = None
_kernel_tried = False

#: Task kinds of the threaded batch dispatcher; must match the
#: BATCH_KIND_* enum in _sweepkernel.c.
(KIND_LRU, KIND_RRIP, KIND_DIP, KIND_PDP, KIND_RANDOM,
 KIND_PART_LRU, KIND_PART_SRRIP, KIND_VANTAGE,
 KIND_TADRRIP, KIND_BELADY) = range(10)

_P64 = ctypes.POINTER(ctypes.c_int64)
_PU64 = ctypes.POINTER(ctypes.c_uint64)


class BatchTask(ctypes.Structure):
    """ctypes mirror of the C ``batch_task`` record (one replay per task).

    The field order must match the struct declaration in
    ``_sweepkernel.c`` exactly; every member is 8 bytes, so there is no
    padding to worry about.  Unused members of a given kind stay NULL/0
    (the zero-initialized default of a fresh ``(BatchTask * n)()`` array).
    """

    _fields_ = [
        ("kind", ctypes.c_int64),
        ("addrs", _P64),
        ("n", ctypes.c_int64),
        ("parts", _P64),
        ("tags", _P64),
        ("stamp", _P64),
        ("rrpv", _P64),
        ("counter", _P64),
        ("rng_state", _PU64),
        ("roles", _P64),
        ("psel", _P64),
        ("expires", _P64),
        ("clock", _P64),
        ("dp", _P64),
        ("sample_count", _P64),
        ("hist", _P64),
        ("ls_tags", _P64),
        ("ls_clocks", _P64),
        ("ls_count", _P64),
        ("region_sets", _P64),
        ("region_ways", _P64),
        ("region_off", _P64),
        ("miss_out", _P64),
        ("caps", _P64),
        ("ht_tag", _P64),
        ("ht_reg", _P64),
        ("ht_node", _P64),
        ("node_tag", _P64),
        ("node_prev", _P64),
        ("node_next", _P64),
        ("head", _P64),
        ("tail", _P64),
        ("occ", _P64),
        ("free_io", _P64),
        ("num_sets", ctypes.c_int64),
        ("ways", ctypes.c_int64),
        ("max_rrpv", ctypes.c_int64),
        ("mode", ctypes.c_int64),
        ("lip", ctypes.c_int64),
        ("hashed", ctypes.c_int64),
        ("index_seed", ctypes.c_int64),
        ("psel_max", ctypes.c_int64),
        ("leader_levels", ctypes.c_int64),
        ("max_dp", ctypes.c_int64),
        ("interval", ctypes.c_int64),
        ("clear_threshold", ctypes.c_int64),
        ("tsize", ctypes.c_int64),
        ("num_regions", ctypes.c_int64),
        ("unm_cap", ctypes.c_int64),
        ("node_aux", _P64),
        ("node_stamp", _P64),
        ("vp_maxdp", _P64),
        ("vp_interval", _P64),
        ("vp_clear", _P64),
        ("next_use", _P64),
        ("heap_key", _P64),
        ("heap_tag", _P64),
        ("heap_io", _P64),
        ("hist_stride", ctypes.c_int64),
        ("ls_size", ctypes.c_int64),
        ("heap_cap", ctypes.c_int64),
        ("capacity", ctypes.c_int64),
        ("num_streams", ctypes.c_int64),
        ("epsilon", ctypes.c_double),
        ("result", ctypes.c_int64),
    ]


def resolve_threads(threads: int | None = None) -> int:
    """Effective worker-thread width for a batched replay.

    Resolution order: an explicit ``threads=`` argument, the
    ``REPRO_THREADS`` environment variable, then the host core count.
    Always at least 1.
    """
    if threads is None:
        env = os.environ.get("REPRO_THREADS", "").strip()
        if env:
            try:
                threads = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_THREADS must be an integer, got {env!r}")
    if threads is None:
        threads = os.cpu_count() or 1
    return max(1, int(threads))


class NativeKernel:
    """ctypes bindings for the compiled replay and monitoring kernels.

    One method per exported C function: ``lru_run`` (LRU/LIP), ``rrip_run``
    (SRRIP/BRRIP/DRRIP), ``dip_run`` (BIP/DIP), ``pdp_run`` (protecting
    distance), ``random_run`` (seeded random replacement), ``multi_lru_run``
    (several LRU/LIP configs in one trace pass), ``stack_hist_run``
    (one-shot Mattson stack-distance histogram), ``stack_hist_chunk`` /
    ``stack_state_rehash`` (the incremental, caller-owned-state variant),
    ``tadrrip_run`` (thread-aware DRRIP with per-thread PSEL),
    ``belady_run`` (Belady MIN over precomputed next-use indices),
    and ``vantage_run`` / ``vantage_realloc`` (line-granular Vantage
    partitioning, managed regions running any of the recency/RRIP/PDP/
    Random policies, with a shared unmanaged region).
    All replay kernels accept modulo or hashed set indexing, and all are
    chunk-resumable: state is passed in and returned, so split replays are
    bit-identical to one-shot replays.
    """

    def __init__(self, lib: ctypes.CDLL):
        self.lib = lib
        lib.lru_run.restype = ctypes.c_int64
        lib.lru_run.argtypes = [
            _I64, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            _I64, _I64, _I64,
            ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        ]
        lib.random_run.restype = ctypes.c_int64
        lib.random_run.argtypes = [
            _I64, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            _I64, _U64, ctypes.c_int64, ctypes.c_int64,
        ]
        lib.multi_lru_run.restype = ctypes.c_int64
        lib.multi_lru_run.argtypes = [
            _I64, ctypes.c_int64, ctypes.c_int64,
            _I64, _I64, _I64, _I64, _I64, _I64, _I64,
            ctypes.c_int64, ctypes.c_int64, _I64,
        ]
        lib.stack_hist_chunk.restype = ctypes.c_int64
        lib.stack_hist_chunk.argtypes = [
            _I64, ctypes.c_int64,
            _I64, _I64, ctypes.c_int64,
            _I64, ctypes.c_int64, _I64, _I64, _I64,
            _I64, ctypes.c_int64,
        ]
        lib.stack_state_rehash.restype = None
        lib.stack_state_rehash.argtypes = [
            _I64, _I64, ctypes.c_int64, _I64, _I64, ctypes.c_int64,
        ]
        lib.rrip_run.restype = ctypes.c_int64
        lib.rrip_run.argtypes = [
            _I64, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            ctypes.c_int64, _I64, _I64, _I64, _I64,
            ctypes.c_int64, ctypes.c_double, _U64, _I64, _I64,
            ctypes.c_int64, ctypes.c_int64,
            ctypes.c_int64, ctypes.c_int64,
        ]
        lib.dip_run.restype = ctypes.c_int64
        lib.dip_run.argtypes = [
            _I64, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            _I64, _I64, _I64,
            ctypes.c_int64, ctypes.c_double, _U64, _I64, _I64,
            ctypes.c_int64, ctypes.c_int64,
            ctypes.c_int64, ctypes.c_int64,
        ]
        lib.pdp_run.restype = ctypes.c_int64
        lib.pdp_run.argtypes = [
            _I64, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            _I64, _I64, _I64, _I64, _I64, _I64, _I64, _I64,
            ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            _I64, _I64, _I64, ctypes.c_int64,
            ctypes.c_int64, ctypes.c_int64,
        ]
        lib.stack_hist_run.restype = ctypes.c_int64
        lib.stack_hist_run.argtypes = [_I64, ctypes.c_int64, _I64]
        lib.part_lru_run.restype = ctypes.c_int64
        lib.part_lru_run.argtypes = [
            _I64, _I64, ctypes.c_int64, ctypes.c_int64,
            _I64, _I64, _I64,
            _I64, _I64, _I64,
            ctypes.c_int64, ctypes.c_int64, ctypes.c_int64, _I64,
        ]
        lib.part_srrip_run.restype = ctypes.c_int64
        lib.part_srrip_run.argtypes = [
            _I64, _I64, ctypes.c_int64, ctypes.c_int64,
            _I64, _I64, _I64,
            _I64, _I64, _I64, _I64,
            ctypes.c_int64, ctypes.c_int64, ctypes.c_int64, _I64,
        ]
        lib.tadrrip_run.restype = ctypes.c_int64
        lib.tadrrip_run.argtypes = [
            _I64, _I64, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            ctypes.c_int64, _I64, _I64, _I64, _I64,
            ctypes.c_double, _U64, _I64,
            ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            ctypes.c_int64, ctypes.c_int64, _I64,
        ]
        lib.belady_run.restype = ctypes.c_int64
        lib.belady_run.argtypes = [
            _I64, _I64, ctypes.c_int64, ctypes.c_int64,
            _I64, _I64, ctypes.c_int64,
            _I64, _I64, ctypes.c_int64, _I64,
        ]
        lib.vantage_run.restype = ctypes.c_int64
        lib.vantage_run.argtypes = [
            _I64, _I64, ctypes.c_int64, ctypes.c_int64, _I64,
            ctypes.c_int64,
            ctypes.c_int64, ctypes.c_int64, ctypes.c_double,
            _I64, _U64, _I64, _I64, ctypes.c_int64, ctypes.c_int64,
            _I64, _I64,
            _I64, _I64, _I64, _I64, ctypes.c_int64,
            _I64, _I64, _I64,
            _I64, _I64, _I64, ctypes.c_int64,
            _I64, _I64, _I64, ctypes.c_int64,
            _I64, _I64, _I64,
            _I64, _I64, _I64, _I64, _I64,
        ]
        lib.vantage_realloc.restype = ctypes.c_int64
        lib.vantage_realloc.argtypes = [
            ctypes.c_int64, _I64, ctypes.c_int64,
            ctypes.c_int64, ctypes.c_int64, _U64,
            _I64, _I64, _I64, _I64,
            _I64, _I64, _I64, ctypes.c_int64,
            _I64, _I64, _I64,
            _I64, _I64, _I64, _I64,
        ]
        # The threaded batch dispatcher.  Libraries compiled from this
        # source always export both symbols (the -DREPRO_SERIAL_BATCH
        # variant runs the same tasks serially); the AttributeError guard
        # only protects against a stale pre-dispatcher library.
        try:
            lib.batch_run_threaded.restype = ctypes.c_int64
            lib.batch_run_threaded.argtypes = [
                ctypes.POINTER(BatchTask), ctypes.c_int64, ctypes.c_int64,
            ]
            lib.batch_threads_available.restype = ctypes.c_int64
            lib.batch_threads_available.argtypes = []
            self.has_batch = True
            self.threaded = bool(lib.batch_threads_available())
        except AttributeError:
            self.has_batch = False
            self.threaded = False

    def lru_run(self, addrs, num_sets, ways, tags, stamp, counter,
                lip=0, hashed=0, index_seed=0) -> int:
        return int(self.lib.lru_run(addrs, addrs.size, num_sets, ways,
                                    tags, stamp, counter, lip, hashed,
                                    index_seed))

    def rrip_run(self, addrs, num_sets, ways, max_rrpv, tags, rrpv, stamp,
                 counter, mode, epsilon, rng_state, roles, psel,
                 psel_max, leader_levels, hashed=0, index_seed=0) -> int:
        return int(self.lib.rrip_run(addrs, addrs.size, num_sets, ways,
                                     max_rrpv, tags, rrpv, stamp, counter,
                                     mode, epsilon, rng_state, roles, psel,
                                     psel_max, leader_levels, hashed,
                                     index_seed))

    def dip_run(self, addrs, num_sets, ways, tags, stamp, counter, mode,
                epsilon, rng_state, roles, psel, psel_max, leader_levels,
                hashed=0, index_seed=0) -> int:
        return int(self.lib.dip_run(addrs, addrs.size, num_sets, ways,
                                    tags, stamp, counter, mode, epsilon,
                                    rng_state, roles, psel, psel_max,
                                    leader_levels, hashed, index_seed))

    def pdp_run(self, addrs, num_sets, ways, tags, stamp, counter, expires,
                clock, dp, sample_count, hist, max_dp, interval,
                clear_threshold, ls_tags, ls_clocks, ls_count, tsize,
                hashed=0, index_seed=0) -> int:
        return int(self.lib.pdp_run(addrs, addrs.size, num_sets, ways,
                                    tags, stamp, counter, expires, clock,
                                    dp, sample_count, hist, max_dp,
                                    interval, clear_threshold, ls_tags,
                                    ls_clocks, ls_count, tsize, hashed,
                                    index_seed))

    def random_run(self, addrs, num_sets, ways, tags, rng_state,
                   hashed=0, index_seed=0) -> int:
        return int(self.lib.random_run(addrs, addrs.size, num_sets, ways,
                                       tags, rng_state, hashed, index_seed))

    def multi_lru_run(self, addrs, num_configs, cfg_sets, cfg_ways, cfg_off,
                      tags, stamp, counters, lip, miss_out,
                      hashed=0, index_seed=0) -> int:
        """Replay one trace through several LRU/LIP configs in one pass;
        fills per-config miss counts into ``miss_out`` and returns the
        total."""
        return int(self.lib.multi_lru_run(addrs, addrs.size, num_configs,
                                          cfg_sets, cfg_ways, cfg_off, tags,
                                          stamp, counters, lip, hashed,
                                          index_seed, miss_out))

    def stack_hist_run(self, addrs, hist) -> int:
        """Fill ``hist`` with stack-distance counts; returns cold misses
        (or -1 when scratch allocation failed and nothing was written)."""
        return int(self.lib.stack_hist_run(addrs, addrs.size, hist))

    def stack_hist_chunk(self, addrs, tab_tags, tab_vals, tree, pos, live,
                         cold, hist) -> int:
        """Advance a caller-owned incremental stack-distance state by one
        chunk; returns 0, or -1 when the state arrays are too small for the
        chunk (grow and retry)."""
        return int(self.lib.stack_hist_chunk(
            addrs, addrs.size, tab_tags, tab_vals, tab_tags.size, tree,
            tree.size - 1, pos, live, cold, hist, hist.size))

    def stack_state_rehash(self, old_tags, old_vals, new_tags,
                           new_vals) -> None:
        """Re-probe every occupied slot of a last-position table into a
        larger caller-allocated table (``new_vals`` pre-filled with -1)."""
        self.lib.stack_state_rehash(old_tags, old_vals, old_tags.size,
                                    new_tags, new_vals, new_tags.size)

    def part_lru_run(self, addrs, parts, num_regions, region_sets,
                     region_ways, region_off, tags, stamp, counter, lip,
                     miss_out, hashed=0, index_seed=0) -> int:
        """Interleaved multi-partition LRU/LIP replay; fills per-partition
        miss counts into ``miss_out`` and returns the total (-1 on a bad
        partition id)."""
        return int(self.lib.part_lru_run(addrs, parts, addrs.size,
                                         num_regions, region_sets,
                                         region_ways, region_off, tags,
                                         stamp, counter, lip, hashed,
                                         index_seed, miss_out))

    def part_srrip_run(self, addrs, parts, num_regions, region_sets,
                       region_ways, region_off, tags, rrpv, stamp, counter,
                       max_rrpv, miss_out, hashed=0, index_seed=0) -> int:
        """Interleaved multi-partition SRRIP replay (see part_lru_run)."""
        return int(self.lib.part_srrip_run(addrs, parts, addrs.size,
                                           num_regions, region_sets,
                                           region_ways, region_off, tags,
                                           rrpv, stamp, counter, max_rrpv,
                                           hashed, index_seed, miss_out))

    def tadrrip_run(self, addrs, threads, num_sets, ways, max_rrpv, tags,
                    rrpv, stamp, counter, epsilon, rng_state, psel,
                    num_streams, psel_max, leader_levels, miss_out,
                    hashed=0, index_seed=0) -> int:
        """Thread-aware DRRIP replay: per-thread PSEL counters dueled by
        address constituency; fills per-thread miss counts into
        ``miss_out`` and returns the total (-1 on a thread id outside
        ``[0, num_streams)``)."""
        return int(self.lib.tadrrip_run(addrs, threads, addrs.size,
                                        num_sets, ways, max_rrpv, tags,
                                        rrpv, stamp, counter, epsilon,
                                        rng_state, psel, num_streams,
                                        psel_max, leader_levels, hashed,
                                        index_seed, miss_out))

    def belady_run(self, addrs, next_use, capacity, ht_tag, ht_val,
                   heap_key, heap_tag, heap_io) -> int:
        """Belady MIN replay over a fully-associative cache of ``capacity``
        lines, fed by precomputed next-use indices (see
        ``belady_next_use``); returns misses (-2 on heap overflow /
        corruption — defensive, cannot happen when the heap holds
        ``len(addrs) + 1`` slots)."""
        return int(self.lib.belady_run(addrs, next_use, addrs.size,
                                       capacity, ht_tag, ht_val,
                                       ht_tag.size, heap_key, heap_tag,
                                       heap_key.size, heap_io))

    def vantage_run(self, addrs, parts, num_parts, caps, unm_cap, pol,
                    max_rrpv, epsilon, counter, rng_state, roles, psel,
                    psel_max, leader_levels, node_aux, node_stamp,
                    pdp_clock, pdp_dp, pdp_sample, pdp_hist, hist_stride,
                    vp_maxdp, vp_interval, vp_clear, ls_tags, ls_clocks,
                    ls_count, ls_size, ht_tag, ht_reg, ht_node, node_tag,
                    node_prev, node_next, head, tail, occ, free_io,
                    miss_out) -> int:
        """Partition-tagged Vantage replay (fully-associative managed
        regions running the ``pol`` replacement policy, plus the shared
        unmanaged region); fills per-partition miss counts into
        ``miss_out`` and returns the total (negative on a bad partition
        id / exhausted node pool — both defensive).  Policy side state the
        selected ``pol`` does not read may be size-1 dummies."""
        return int(self.lib.vantage_run(addrs, parts, addrs.size, num_parts,
                                        caps, unm_cap, pol, max_rrpv,
                                        epsilon, counter, rng_state, roles,
                                        psel, psel_max, leader_levels,
                                        node_aux, node_stamp, pdp_clock,
                                        pdp_dp, pdp_sample, pdp_hist,
                                        hist_stride, vp_maxdp, vp_interval,
                                        vp_clear, ls_tags, ls_clocks,
                                        ls_count, ls_size, ht_tag, ht_reg,
                                        ht_node, ht_tag.size, node_tag,
                                        node_prev, node_next, head, tail,
                                        occ, free_io, miss_out))

    def vantage_realloc(self, num_parts, new_caps, unm_cap, pol, max_rrpv,
                        rng_state, node_aux, node_stamp, pdp_clock, pdp_dp,
                        ht_tag, ht_reg, ht_node, node_tag, node_prev,
                        node_next, head, tail, occ, free_io) -> int:
        """Warm Vantage reallocation: trim each managed region to its new
        capacity via the ``pol`` victim policy, demoting evicted victims
        into the unmanaged region."""
        return int(self.lib.vantage_realloc(num_parts, new_caps, unm_cap,
                                            pol, max_rrpv, rng_state,
                                            node_aux, node_stamp, pdp_clock,
                                            pdp_dp, ht_tag, ht_reg, ht_node,
                                            ht_tag.size, node_tag, node_prev,
                                            node_next, head, tail, occ,
                                            free_io))

    def batch_run_threaded(self, tasks, num_tasks: int,
                           num_threads: int) -> int:
        """Execute ``num_tasks`` independent replay tasks across up to
        ``num_threads`` worker threads (serial under the
        ``REPRO_SERIAL_BATCH`` build); each task's outcome lands in its
        own ``result`` member.  Returns the thread count actually used.

        ``tasks`` is a ``(BatchTask * num_tasks)()`` ctypes array; the GIL
        is released for the whole call, which is what lets Python-level
        thread pools overlap other work with a running batch."""
        return int(self.lib.batch_run_threaded(tasks, num_tasks,
                                               num_threads))


def _cache_dir() -> Path:
    base = os.environ.get("XDG_CACHE_HOME")
    if base:
        return Path(base) / "repro-kernels"
    home = Path.home()
    if os.access(home, os.W_OK):
        return home / ".cache" / "repro-kernels"
    return Path(tempfile.gettempdir()) / "repro-kernels"


def _find_compiler() -> str | None:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


#: Extra compile flags per build variant, preferred first: the threaded
#: batch dispatcher needs -pthread; when the compiler rejects that flag the
#: retry compiles the same entry points with a serial dispatcher.
_FLAG_VARIANTS = (("-pthread",), ("-DREPRO_SERIAL_BATCH",))

#: Thread-entry symbols of the batch dispatcher.  Folded into the
#: cached-library key so a cache populated before the dispatcher existed
#: (same base flags, different exports) can never be picked up.
_BATCH_SYMBOLS = "batch_run_threaded,batch_threads_available"


def _variant_flags(extra: tuple[str, ...]) -> list[str]:
    """Full compile flags for one build variant.

    ``REPRO_NATIVE_CFLAGS`` appends user flags to every variant (e.g.
    ``-fsanitize=thread`` for the CI race-detection smoke build); they are
    part of the cache key, so sanitizer and plain builds coexist.
    """
    user = os.environ.get("REPRO_NATIVE_CFLAGS", "").split()
    return ["-O3", "-shared", "-fPIC", *extra, *user]


def _library_path(cache: Path, source: bytes, flags: list[str],
                  suffix: str) -> Path:
    key = source + b"|" + " ".join(flags).encode() + b"|" + \
        _BATCH_SYMBOLS.encode()
    digest = hashlib.sha256(key).hexdigest()[:16]
    return cache / f"sweepkernel-{digest}.{suffix}"


def _build_library() -> Path | None:
    if not _SOURCE.exists():
        return None
    source = _SOURCE.read_bytes()
    suffix = "dll" if sys.platform == "win32" else "so"
    cache = _cache_dir()
    candidates = [(extra, _library_path(cache, source,
                                        _variant_flags(extra), suffix))
                  for extra in _FLAG_VARIANTS]
    for _, lib_path in candidates:
        if lib_path.exists():
            return lib_path
    compiler = _find_compiler()
    if compiler is None:
        return None
    for extra, lib_path in candidates:
        tmp_path = None
        try:
            cache.mkdir(parents=True, exist_ok=True)
            with tempfile.NamedTemporaryFile(
                    suffix=f".{suffix}", dir=cache, delete=False) as tmp:
                tmp_path = Path(tmp.name)
            cmd = [compiler, *_variant_flags(extra),
                   str(_SOURCE), "-o", str(tmp_path)]
            subprocess.run(cmd, check=True, capture_output=True, timeout=120)
            os.replace(tmp_path, lib_path)  # atomic vs concurrent builders
            return lib_path
        except (OSError, subprocess.SubprocessError):
            try:
                if tmp_path is not None:
                    tmp_path.unlink(missing_ok=True)
            except OSError:
                pass
    return None


def get_kernel() -> NativeKernel | None:
    """The compiled kernel bindings, or None when unavailable.

    The first call attempts the build; the result (including failure) is
    cached for the life of the process.  Set ``REPRO_NATIVE=0`` to force
    the pure-Python fallback.
    """
    global _kernel, _kernel_tried
    if _kernel_tried:
        return _kernel
    _kernel_tried = True
    if os.environ.get("REPRO_NATIVE", "1") == "0":
        return None
    lib_path = _build_library()
    if lib_path is None:
        return None
    try:
        _kernel = NativeKernel(ctypes.CDLL(str(lib_path)))
    except OSError:
        _kernel = None
    return _kernel


def native_available() -> bool:
    """Whether the native replay kernels can be used."""
    return get_kernel() is not None


def disable_native() -> None:
    """Force the pure-Python fallback for the rest of this process.

    The supervised job runtime's degradation ladder calls this in a
    worker that is retrying a job after a native-kernel fault (SIGSEGV,
    OOM kill, compiler breakage): it drops any already-loaded kernel,
    pins the process-lifetime build cache to "unavailable", and sets
    ``REPRO_NATIVE=0`` so grandchild processes degrade too.  Every
    kernel lookup happens through :func:`get_kernel` at use time, so the
    switch takes effect immediately regardless of how the worker was
    started (fork inherits the parent's cached kernel; spawn would
    rebuild it).  There is deliberately no ``enable_native`` inverse —
    a degraded worker stays degraded for its lifetime.
    """
    global _kernel, _kernel_tried
    os.environ["REPRO_NATIVE"] = "0"
    _kernel = None
    _kernel_tried = True
