"""Array-backed set-associative cache: numpy state, native replay fast path.

This is the high-throughput counterpart of
:class:`repro.cache.cache.SetAssociativeCache`.  Instead of one policy
object (with Python dicts) per set, the whole cache lives in three flat
numpy matrices:

* ``tags``  — ``(num_sets, ways)`` resident line addresses (-1 == empty);
* ``stamp`` — ``(num_sets, ways)`` last-touch / bucket-entry sequence
  numbers that encode recency order;
* ``rrpv``  — ``(num_sets, ways)`` re-reference prediction values (RRIP
  policies only).

Replaying a trace is a single call into a compiled kernel
(:mod:`repro.cache._native`) that walks the trace and mutates those arrays
in place — typically 15-30x faster than the object model.  When no C
compiler is available the same algorithm runs in pure Python over the same
arrays, producing identical results, so the array backend is always
*correct*, just not always *fast*.

Exactness contract
------------------
``LRU`` and ``SRRIP`` are **bit-identical** to the object model (the parity
tests in ``tests/test_sweep_and_arraycache.py`` enforce this):

* LRU victim = oldest stamp (empty ways first), which is exactly the
  OrderedDict order of :class:`~repro.cache.replacement.lru.LRUPolicy`.
* RRIP victim = oldest *bucket entrant* among lines at the highest RRPV
  present, after which all lines age by the same delta.  Because aging
  shifts whole buckets without merging them, the object model's per-bucket
  OrderedDict order is fully determined by the last insert/promote event,
  which is what ``stamp`` records.

``BRRIP`` and ``DRRIP`` are *statistically* equivalent but not
bit-identical: their bimodal insertion draws come from a splitmix64 stream
(shared by the kernel and the Python fallback, so the array backend is
deterministic per seed across machines) rather than each set's
``random.Random`` instance.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ._native import get_kernel
from .cache import CacheStats
from .hashing import mix64

__all__ = ["ArraySetAssociativeCache", "ARRAY_POLICIES", "ARRAY_EXACT_POLICIES"]

#: Policies the array backend implements.
ARRAY_POLICIES = ("LRU", "SRRIP", "BRRIP", "DRRIP")

#: Policies whose array implementation is bit-identical to the object model.
ARRAY_EXACT_POLICIES = ("LRU", "SRRIP")

_EMPTY = -1
_M64 = (1 << 64) - 1

# Insertion modes / DRRIP roles; must match _sweepkernel.c.
_MODE = {"SRRIP": 0, "BRRIP": 1, "DRRIP": 2}
_ROLE_FOLLOWER, _ROLE_LEADER_SRRIP, _ROLE_LEADER_BRRIP = 0, 1, 2
_ROLE_ADDRESS_DUEL = 3


def _splitmix64(state: np.ndarray) -> int:
    """Advance the shared RNG state; must match the kernel's splitmix64."""
    s = (int(state[0]) + 0x9E3779B97F4A7C15) & _M64
    state[0] = s
    z = s
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    return (z ^ (z >> 31)) & _M64


def _uniform01(state: np.ndarray) -> float:
    return (_splitmix64(state) >> 11) * (1.0 / 9007199254740992.0)


def _drrip_roles(num_sets: int,
                 leader_regions_per_policy: int = 32) -> np.ndarray:
    """Replicate :func:`repro.cache.replacement.rrip.drrip_factory` roles."""
    leaders = min(leader_regions_per_policy, max(1, num_sets // 4))
    stride = max(1, num_sets // (2 * leaders))
    roles = np.full(num_sets, _ROLE_FOLLOWER, dtype=np.int64)
    for i in range(0, num_sets, stride):
        roles[i] = (_ROLE_LEADER_SRRIP if (i // stride) % 2 == 0
                    else _ROLE_LEADER_BRRIP)
    return roles


class ArraySetAssociativeCache:
    """A modulo-indexed set-associative cache with numpy-matrix state.

    Parameters
    ----------
    num_sets, ways:
        Geometry, as in :class:`~repro.cache.cache.SetAssociativeCache`.
    policy:
        One of :data:`ARRAY_POLICIES`.
    m_bits, epsilon:
        RRIP parameters (ignored for LRU), defaulting to the paper's
        2-bit RRPVs and epsilon = 1/32.
    seed:
        Seed of the bimodal-insertion RNG stream (BRRIP/DRRIP only).
    """

    def __init__(self, num_sets: int, ways: int, policy: str = "LRU",
                 m_bits: int = 2, epsilon: float = 1.0 / 32.0,
                 seed: int = 0):
        if num_sets <= 0:
            raise ValueError("num_sets must be positive")
        if ways <= 0:
            raise ValueError("ways must be positive")
        if policy not in ARRAY_POLICIES:
            raise ValueError(f"array backend does not implement {policy!r}; "
                             f"supported: {ARRAY_POLICIES}")
        if m_bits < 1 or m_bits > 8:
            raise ValueError("m_bits must be in [1, 8]")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.num_sets = num_sets
        self.ways = ways
        self.policy = policy
        self.m_bits = m_bits
        self.max_rrpv = (1 << m_bits) - 1
        self.epsilon = float(epsilon)
        self.seed = seed
        self.tags = np.full((num_sets, ways), _EMPTY, dtype=np.int64)
        self.stamp = np.zeros((num_sets, ways), dtype=np.int64)
        self.rrpv = np.full((num_sets, ways), self.max_rrpv, dtype=np.int64)
        self._counter = np.zeros(1, dtype=np.int64)
        self._rng_state = np.array([mix64(seed)], dtype=np.uint64)
        # DRRIP dueling state (mirrors drrip_factory / DuelingController).
        self._psel_max = (1 << 10) - 1
        self._psel = np.array([self._psel_max // 2], dtype=np.int64)
        self._roles = (_drrip_roles(num_sets) if policy == "DRRIP"
                       else np.zeros(num_sets, dtype=np.int64))
        self._leader_levels = max(1, int(round(1024 / 16.0)))
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    @property
    def capacity_lines(self) -> int:
        """Total capacity in lines."""
        return self.num_sets * self.ways

    def set_index(self, address: int) -> int:
        """Set index for a line address (modulo indexing)."""
        return address % self.num_sets if self.num_sets > 1 else 0

    def occupancy(self) -> int:
        """Number of currently resident lines across all sets."""
        return int(np.count_nonzero(self.tags != _EMPTY))

    def reset_stats(self) -> None:
        """Zero the statistics without touching cache contents."""
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    def access(self, address: int) -> bool:
        """Perform one access; returns True on a hit and updates stats.

        This is the pure-Python replay path, bit-compatible with the
        native kernel: a trace can be replayed partly through
        :meth:`run` and partly through :meth:`access` with identical
        results.
        """
        address = int(address)
        s = self.set_index(address)
        if self.policy == "LRU":
            hit = self._lru_access(address, s)
        else:
            hit = self._rrip_access(address, s)
        self.stats.record(hit)
        return hit

    def _lru_access(self, a: int, s: int) -> bool:
        row = self.tags[s]
        self._counter[0] += 1
        t = int(self._counter[0])
        match = np.nonzero(row == a)[0]
        if match.size:
            self.stamp[s, match[0]] = t
            return True
        empty = np.nonzero(row == _EMPTY)[0]
        w = int(empty[0]) if empty.size else int(np.argmin(self.stamp[s]))
        row[w] = a
        self.stamp[s, w] = t
        return False

    def _rrip_access(self, a: int, s: int) -> bool:
        row = self.tags[s]
        rv = self.rrpv[s]
        st = self.stamp[s]
        self._counter[0] += 1
        t = int(self._counter[0])
        match = np.nonzero(row == a)[0]
        if match.size:
            w = int(match[0])
            rv[w] = 0  # hit priority
            st[w] = t
            return True

        role = _ROLE_FOLLOWER
        if self.policy == "DRRIP":
            role = int(self._roles[s])
            if role == _ROLE_ADDRESS_DUEL:
                # Standalone-region dueling: a hashed fraction of addresses
                # form the SRRIP/BRRIP constituencies (matches the kernel).
                bucket = (a * 0x9E3779B97F4A7C15) & 1023
                if bucket < self._leader_levels:
                    role = _ROLE_LEADER_SRRIP
                elif bucket < 2 * self._leader_levels:
                    role = _ROLE_LEADER_BRRIP
                else:
                    role = _ROLE_FOLLOWER
            if role == _ROLE_LEADER_SRRIP and self._psel[0] < self._psel_max:
                self._psel[0] += 1
            elif role == _ROLE_LEADER_BRRIP and self._psel[0] > 0:
                self._psel[0] -= 1

        empty = np.nonzero(row == _EMPTY)[0]
        if empty.size:
            w = int(empty[0])
        else:
            maxp = int(rv.max())
            candidates = np.nonzero(rv == maxp)[0]
            w = int(candidates[np.argmin(st[candidates])])
            d = self.max_rrpv - maxp
            if d > 0:
                rv += d

        ins = self.max_rrpv - 1
        if self.policy == "BRRIP":
            bimodal = True
        elif self.policy == "DRRIP":
            bimodal = (role == _ROLE_LEADER_BRRIP
                       or (role == _ROLE_FOLLOWER
                           and int(self._psel[0]) > self._psel_max // 2))
        else:
            bimodal = False
        if bimodal and _uniform01(self._rng_state) >= self.epsilon:
            ins = self.max_rrpv

        row[w] = a
        rv[w] = ins
        st[w] = t
        return False

    # ------------------------------------------------------------------ #
    def run(self, trace: Iterable[int] | Sequence[int] | np.ndarray,
            instructions: int = 0) -> CacheStats:
        """Replay a trace; returns (and stores) the accumulated stats.

        Uses the native kernel when available, the Python access path
        otherwise — results are identical either way.
        """
        addrs = np.ascontiguousarray(np.asarray(
            trace if not hasattr(trace, "addresses") else trace.addresses,
            dtype=np.int64))
        if addrs.ndim != 1:
            raise ValueError("trace must be one-dimensional")
        kernel = get_kernel()
        if kernel is None:
            for a in addrs.tolist():
                self.access(a)
        elif addrs.size:
            misses = self._run_native(kernel, addrs)
            self.stats.accesses += int(addrs.size)
            self.stats.misses += misses
            self.stats.hits += int(addrs.size) - misses
        if instructions:
            self.stats.instructions += instructions
        return self.stats

    def _run_native(self, kernel, addrs: np.ndarray) -> int:
        if self.policy == "LRU":
            return kernel.lru_run(addrs, self.num_sets, self.ways,
                                  self.tags, self.stamp, self._counter)
        return kernel.rrip_run(addrs, self.num_sets, self.ways,
                               self.max_rrpv, self.tags, self.rrpv,
                               self.stamp, self._counter,
                               _MODE[self.policy], self.epsilon,
                               self._rng_state, self._roles, self._psel,
                               self._psel_max, self._leader_levels)

    def __repr__(self) -> str:
        return (f"ArraySetAssociativeCache(sets={self.num_sets}, "
                f"ways={self.ways}, policy={self.policy!r}, "
                f"capacity={self.capacity_lines} lines)")
