"""Array-backed set-associative cache: numpy state, native replay fast path.

This is the high-throughput counterpart of
:class:`repro.cache.cache.SetAssociativeCache`.  Instead of one policy
object (with Python dicts) per set, the whole cache lives in flat numpy
matrices:

* ``tags``  — ``(num_sets, ways)`` resident line addresses (-1 == empty);
* ``stamp`` — ``(num_sets, ways)`` last-touch / bucket-entry sequence
  numbers that encode recency order;
* ``rrpv``  — ``(num_sets, ways)`` re-reference prediction values (RRIP
  policies only);
* ``expires`` and per-set reuse-sampler tables (PDP only).

Replaying a trace is a single call into a compiled kernel
(:mod:`repro.cache._native`) that walks the trace and mutates those arrays
in place — typically 15-30x faster than the object model.  When no C
compiler is available the same algorithm runs in pure Python over the same
arrays, producing identical results, so the array backend is always
*correct*, just not always *fast*.

Both modulo and hashed set indexing are supported (``hashed_index=True``
uses the splitmix64 finalizer of :func:`repro.cache.hashing.set_index`,
exactly as the object model does).

Partitioned organizations reuse this machinery where their regions are
independent (:class:`repro.cache.partition.array.ArrayPartitionedCache`);
Vantage — line-granular, with a shared unmanaged victim region — has its
own array organization and kernel
(:class:`repro.cache.partition.array.ArrayVantageCache`, ``vantage_run``)
following the same caller-owned-state conventions.

Exactness contract
------------------
``LRU``, ``LIP``, ``SRRIP`` and ``PDP`` are **bit-identical** to the object
model (the parity tests in ``tests/test_sweep_and_arraycache.py`` enforce
this):

* LRU victim = oldest stamp (empty ways first), which is exactly the
  OrderedDict order of :class:`~repro.cache.replacement.lru.LRUPolicy`.
  LIP additionally stamps inserted lines *older* than the current LRU
  line, which is exactly ``OrderedDict.move_to_end(tag, last=False)``.
* RRIP victim = oldest *bucket entrant* among lines at the highest RRPV
  present, after which all lines age by the same delta.  Because aging
  shifts whole buckets without merging them, the object model's per-bucket
  OrderedDict order is fully determined by the last insert/promote event,
  which is what ``stamp`` records.
* PDP is deterministic (no RNG): protection deadlines, the bounded
  reuse-distance histogram, the periodic protecting-distance
  recomputation and the last-seen table clears all replicate
  :class:`~repro.cache.replacement.pdp.PDPPolicy` exactly.

Addresses may be any int64 except ``-1``, which is reserved as the
empty-way sentinel; :meth:`ArraySetAssociativeCache.access`/``run`` reject
it rather than silently mis-reporting a hit (the object model has no such
reservation).

``BIP``, ``DIP``, ``BRRIP``, ``DRRIP``, ``TA-DRRIP`` and ``Random`` are
*statistically* equivalent but not bit-identical: their randomized draws
(bimodal insertions, random victims) come from a shared splitmix64 stream
(used by both the kernel and the Python fallback, so the array backend is
deterministic per seed across machines) rather than each set's
``random.Random`` instance.

``Belady`` (offline MIN) lives in its own organization,
:class:`ArrayBeladyCache`: it is fully associative and needs the whole
trace up front (:func:`belady_next_use` precomputes every access's
next-use position once, shared across capacities).  Its *miss counts* are
exact against :class:`~repro.cache.replacement.belady.BeladyMINPolicy` —
ties among never-reused lines may be broken differently, but evicting any
dead line leaves every future hit intact, so MIN's miss count is invariant
to that choice.

``TA-DRRIP`` additionally threads a per-access ``thread_ids`` lane through
:meth:`ArraySetAssociativeCache.run`/``run_chunk``/``replay_task``: each
thread (stream) duels SRRIP against BRRIP with its own PSEL counter, and
per-thread miss counts accumulate in :attr:`thread_misses`.

Resumable-runtime contract
--------------------------
All replay state lives in caller-visible arrays that every entry point
reads *and* writes, so a trace split at arbitrary boundaries —
:meth:`ArraySetAssociativeCache.run_chunk`, :meth:`run`, or scalar
:meth:`access` calls, freely interleaved — produces bit-identical state
and statistics to a single one-shot :meth:`run`.  Warm caches can also be
*resized* in place (:meth:`resize_ways`, :meth:`resize_sets`), evicting
per-policy victims exactly as the object policies' ``set_capacity`` does;
this is what lets :class:`~repro.cache.partition.array.ArrayPartitionedCache`
reallocate warm partitions.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ._native import get_kernel
from .cache import CacheStats, materialize_addresses
from .hashing import GOLDEN64 as _GOLDEN
from .hashing import mix64, seed_mix

__all__ = ["ArraySetAssociativeCache", "ArrayBeladyCache", "ARRAY_POLICIES",
           "ARRAY_EXACT_POLICIES", "belady_next_use", "run_lru_family_batch"]

#: Policies the array backend implements (``Belady`` through
#: :class:`ArrayBeladyCache`; everything else through
#: :class:`ArraySetAssociativeCache`).
ARRAY_POLICIES = ("LRU", "LIP", "BIP", "DIP", "SRRIP", "BRRIP", "DRRIP",
                  "TA-DRRIP", "PDP", "Random", "Belady")

#: Policies whose array implementation is bit-identical to the object model.
ARRAY_EXACT_POLICIES = ("LRU", "LIP", "SRRIP", "PDP")

_EMPTY = -1
_M64 = (1 << 64) - 1

# Insertion modes; must match _sweepkernel.c.
_MODE = {"SRRIP": 0, "BRRIP": 1, "DRRIP": 2}
_DIP_MODE = {"BIP": 0, "DIP": 1}
_ROLE_FOLLOWER, _ROLE_LEADER_SRRIP, _ROLE_LEADER_BRRIP = 0, 1, 2
_ROLE_ADDRESS_DUEL = 3

#: Policies using the RRIP state matrix / rrip_run kernel.
_RRIP_FAMILY = ("SRRIP", "BRRIP", "DRRIP")
#: Policies whose per-line state is the RRIP matrix (victim selection and
#: warm resizing share one code path); TA-DRRIP has its own kernel.
_RRIP_STATE = _RRIP_FAMILY + ("TA-DRRIP",)
#: Policies using the recency matrix with dueled insertion / dip_run kernel.
_DIP_FAMILY = ("BIP", "DIP")
#: Policies that set-duel two insertion policies through per-set roles.
_DUELING = ("DRRIP", "DIP")


def _splitmix64(state: np.ndarray) -> int:
    """Advance the shared RNG state; must match the kernel's splitmix64."""
    s = (int(state[0]) + _GOLDEN) & _M64
    state[0] = s
    z = s
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    return (z ^ (z >> 31)) & _M64


def _uniform01(state: np.ndarray) -> float:
    return (_splitmix64(state) >> 11) * (1.0 / 9007199254740992.0)


def _dueling_roles(num_sets: int,
                   leader_regions_per_policy: int = 32) -> np.ndarray:
    """Replicate the leader-set wiring of ``drrip_factory``/``dip_factory``."""
    leaders = min(leader_regions_per_policy, max(1, num_sets // 4))
    stride = max(1, num_sets // (2 * leaders))
    roles = np.full(num_sets, _ROLE_FOLLOWER, dtype=np.int64)
    for i in range(0, num_sets, stride):
        roles[i] = (_ROLE_LEADER_SRRIP if (i // stride) % 2 == 0
                    else _ROLE_LEADER_BRRIP)
    return roles


def _next_pow2(n: int) -> int:
    size = 64
    while size < n:
        size <<= 1
    return size


class ArraySetAssociativeCache:
    """A set-associative cache with numpy-matrix state.

    Parameters
    ----------
    num_sets, ways:
        Geometry, as in :class:`~repro.cache.cache.SetAssociativeCache`.
    policy:
        One of :data:`ARRAY_POLICIES`.
    m_bits, epsilon:
        RRIP parameters (``m_bits`` ignored outside the RRIP family;
        ``epsilon`` is also the BIP/DIP bimodal rate), defaulting to the
        paper's 2-bit RRPVs and epsilon = 1/32.
    seed:
        Seed of the bimodal-insertion RNG stream (BIP/DIP/BRRIP/DRRIP only).
    hashed_index, index_seed:
        If ``hashed_index`` is true, set indices come from
        :func:`repro.cache.hashing.set_index` (same hash in the kernel);
        otherwise from the address modulo the number of sets.
    recompute_interval, max_distance_factor, initial_distance:
        PDP tuning, with the semantics and defaults of
        :class:`~repro.cache.replacement.pdp.PDPPolicy` (per-set capacity
        == ``ways``); rejected for other policies, as the object
        constructors would.
    """

    #: Marker for the sweep engine: ``run`` replays a whole trace in one
    #: batched (native-kernel) call, so streaming it access by access
    #: alongside object caches would waste the fast path.
    supports_batch_replay = True

    def __init__(self, num_sets: int, ways: int, policy: str = "LRU",
                 m_bits: int = 2, epsilon: float = 1.0 / 32.0,
                 seed: int = 0, hashed_index: bool = False,
                 index_seed: int = 0,
                 recompute_interval: int | None = None,
                 max_distance_factor: float = 3.0,
                 initial_distance: int | None = None,
                 num_streams: int = 8):
        if num_sets <= 0:
            raise ValueError("num_sets must be positive")
        if ways <= 0:
            raise ValueError("ways must be positive")
        if policy == "Belady":
            raise ValueError(
                "Belady is offline and fully associative; build it with "
                "ArrayBeladyCache(capacity, trace) (a spec needs the trace "
                "attached via spec.with_trace(...))")
        if policy not in ARRAY_POLICIES:
            raise ValueError(f"array backend does not implement {policy!r}; "
                             f"supported: {ARRAY_POLICIES}")
        if m_bits < 1 or m_bits > 8:
            raise ValueError("m_bits must be in [1, 8]")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.num_sets = num_sets
        self.ways = ways
        self.policy = policy
        self.m_bits = m_bits
        self.max_rrpv = (1 << m_bits) - 1
        self.epsilon = float(epsilon)
        self.seed = seed
        self.hashed_index = bool(hashed_index)
        self.index_seed = index_seed
        self.tags = np.full((num_sets, ways), _EMPTY, dtype=np.int64)
        self.stamp = np.zeros((num_sets, ways), dtype=np.int64)
        self.rrpv = np.full((num_sets, ways), self.max_rrpv, dtype=np.int64)
        self._counter = np.zeros(1, dtype=np.int64)
        self._rng_state = np.array([mix64(seed)], dtype=np.uint64)
        # Dueling state shared by DRRIP and DIP (mirrors drrip_factory /
        # dip_factory / DuelingController).
        self._psel_max = (1 << 10) - 1
        self._psel = np.array([self._psel_max // 2], dtype=np.int64)
        self._roles = (_dueling_roles(num_sets) if policy in _DUELING
                       else np.zeros(num_sets, dtype=np.int64))
        self._leader_levels = max(1, int(round(1024 / 16.0)))
        if num_streams != 8 and policy != "TA-DRRIP":
            raise ValueError("num_streams applies to TA-DRRIP only")
        self.num_streams = int(num_streams)
        if policy == "TA-DRRIP":
            # Thread-aware dueling (mirrors TADRRIPPolicy): one PSEL per
            # stream, address-hash leader constituencies (1/32 of the
            # address space per insertion policy), per-stream miss
            # accumulators surfaced as :attr:`thread_misses`.
            if self.num_streams < 1:
                raise ValueError("num_streams must be >= 1")
            self._psel = np.full(self.num_streams, self._psel_max // 2,
                                 dtype=np.int64)
            self._leader_levels = max(1, int(round(1024 / 32.0)))
            self._tad_misses = np.zeros(self.num_streams, dtype=np.int64)
        if policy == "PDP":
            self._init_pdp_state(recompute_interval, max_distance_factor,
                                 initial_distance)
        elif (recompute_interval is not None or max_distance_factor != 3.0
              or initial_distance is not None):
            raise ValueError("recompute_interval/max_distance_factor/"
                             "initial_distance apply to PDP only")
        self.stats = CacheStats()

    def _init_pdp_state(self, recompute_interval: int | None,
                        max_distance_factor: float,
                        initial_distance: int | None) -> None:
        """Allocate the PDP side state (mirrors PDPPolicy's parameters).

        The last-seen tables are open-addressing maps sized so they can
        never fill up between the periodic clears the object model
        performs, which keeps probing exact-dict-equivalent.
        """
        ways = self.ways
        if recompute_interval is None:
            recompute_interval = max(128, 16 * max(ways, 1))
        if recompute_interval < 16:
            raise ValueError("recompute_interval must be >= 16")
        if max_distance_factor <= 0:
            raise ValueError("max_distance_factor must be positive")
        self._pdp_max_dp = max(1, int(max_distance_factor * max(ways, 1)))
        self._pdp_initial_dp = (initial_distance if initial_distance
                                else max(1, ways))
        self._pdp_interval = recompute_interval
        self._pdp_clear_threshold = 8 * max(ways, 64)
        self._pdp_tsize = _next_pow2(
            2 * (self._pdp_clear_threshold + self._pdp_interval + 1))
        shape = (self.num_sets, ways)
        self.expires = np.zeros(shape, dtype=np.int64)
        self._pdp_clock = np.zeros(self.num_sets, dtype=np.int64)
        self._pdp_dp = np.full(
            self.num_sets,
            initial_distance if initial_distance else max(1, ways),
            dtype=np.int64)
        self._pdp_samples = np.zeros(self.num_sets, dtype=np.int64)
        self._pdp_hist = np.zeros((self.num_sets, self._pdp_max_dp + 1),
                                  dtype=np.int64)
        self._ls_tags = np.full((self.num_sets, self._pdp_tsize), _EMPTY,
                                dtype=np.int64)
        self._ls_clocks = np.zeros((self.num_sets, self._pdp_tsize),
                                   dtype=np.int64)
        self._ls_count = np.zeros(self.num_sets, dtype=np.int64)

    # ------------------------------------------------------------------ #
    @property
    def capacity_lines(self) -> int:
        """Total capacity in lines."""
        return self.num_sets * self.ways

    def set_index(self, address: int) -> int:
        """Set index for a line address (modulo or hashed indexing)."""
        if self.num_sets == 1:
            return 0
        if self.hashed_index:
            return mix64(address ^ seed_mix(self.index_seed)) % self.num_sets
        return address % self.num_sets

    def occupancy(self) -> int:
        """Number of currently resident lines across all sets."""
        return int(np.count_nonzero(self.tags != _EMPTY))

    def reset_stats(self) -> None:
        """Zero the statistics without touching cache contents."""
        self.stats = CacheStats()

    def snapshot(self, position: int = 0, meta: dict | None = None):
        """Capture the warm state as a picklable, content-hashable
        :class:`~repro.sampling.checkpoint.CacheCheckpoint`."""
        from ..sampling.checkpoint import snapshot
        return snapshot(self, position=position, meta=meta)

    def restore(self, checkpoint) -> None:
        """Rewind this cache to ``checkpoint``'s state, in place."""
        from ..sampling.checkpoint import restore_into
        restore_into(self, checkpoint)

    # ------------------------------------------------------------------ #
    def access(self, address: int, thread_id: int = 0) -> bool:
        """Perform one access; returns True on a hit and updates stats.

        This is the pure-Python replay path, bit-compatible with the
        native kernel: a trace can be replayed partly through
        :meth:`run` and partly through :meth:`access` with identical
        results.  ``thread_id`` attributes the access to a stream
        (TA-DRRIP only; other policies are thread-oblivious and reject a
        nonzero id).
        """
        address = int(address)
        if address == _EMPTY:
            raise ValueError("address -1 is reserved as the empty-way "
                             "sentinel; the array backend cannot cache it")
        if self.policy == "TA-DRRIP":
            tid = self._tad_tid(thread_id)
        elif thread_id != 0:
            raise ValueError("thread_id applies to TA-DRRIP only")
        if self.ways == 0 or self.num_sets == 0:
            # A region warm-resized to zero capacity: every access misses,
            # but side state advances exactly as the object policies' do
            # with ``capacity == 0`` (PDP keeps sampling reuse distances,
            # the dueling policies keep updating PSEL).
            if self.num_sets > 0:
                s = self.set_index(address)
                if self.policy == "PDP":
                    self._pdp_sample(address, s)
                elif self.policy == "TA-DRRIP":
                    self._tad_misses[tid] += 1
                    self._tad_duel(address, tid)
                elif self.policy in _DUELING:
                    self._duel_role(address, s)
            self.stats.record(False)
            return False
        s = self.set_index(address)
        if self.policy == "TA-DRRIP":
            hit = self._tadrrip_access(address, s, tid)
        elif self.policy in _RRIP_FAMILY:
            hit = self._rrip_access(address, s)
        elif self.policy in _DIP_FAMILY:
            hit = self._dip_access(address, s)
        elif self.policy == "PDP":
            hit = self._pdp_access(address, s)
        elif self.policy == "Random":
            hit = self._random_access(address, s)
        else:
            hit = self._lru_access(address, s)
        self.stats.record(hit)
        return hit

    def _lru_access(self, a: int, s: int) -> bool:
        row = self.tags[s]
        st = self.stamp[s]
        self._counter[0] += 1
        t = int(self._counter[0])
        match = np.nonzero(row == a)[0]
        if match.size:
            st[match[0]] = t
            return True
        empty = np.nonzero(row == _EMPTY)[0]
        best = None
        if self.policy == "LIP":
            occupied = np.nonzero(row != _EMPTY)[0]
            best = int(st[occupied].min()) if occupied.size else None
        w = int(empty[0]) if empty.size else int(np.argmin(st))
        row[w] = a
        if self.policy == "LIP" and best is not None:
            # LRU-position insertion: older than the current LRU line
            # (whose stamp is `best` even when it was just evicted).
            st[w] = best - 1
        else:
            st[w] = t
        return False

    def _duel_role(self, a: int, s: int) -> int:
        """Effective dueling role of a miss, with PSEL update (DRRIP/DIP)."""
        role = int(self._roles[s])
        if role == _ROLE_ADDRESS_DUEL:
            # Standalone-region dueling: a hashed fraction of addresses
            # form the two constituencies (matches the kernel).
            bucket = (a * _GOLDEN) & 1023
            if bucket < self._leader_levels:
                role = _ROLE_LEADER_SRRIP
            elif bucket < 2 * self._leader_levels:
                role = _ROLE_LEADER_BRRIP
            else:
                role = _ROLE_FOLLOWER
        if role == _ROLE_LEADER_SRRIP and self._psel[0] < self._psel_max:
            self._psel[0] += 1
        elif role == _ROLE_LEADER_BRRIP and self._psel[0] > 0:
            self._psel[0] -= 1
        return role

    def _rrip_access(self, a: int, s: int) -> bool:
        row = self.tags[s]
        rv = self.rrpv[s]
        st = self.stamp[s]
        self._counter[0] += 1
        t = int(self._counter[0])
        match = np.nonzero(row == a)[0]
        if match.size:
            w = int(match[0])
            rv[w] = 0  # hit priority
            st[w] = t
            return True

        role = _ROLE_FOLLOWER
        if self.policy == "DRRIP":
            role = self._duel_role(a, s)

        empty = np.nonzero(row == _EMPTY)[0]
        if empty.size:
            w = int(empty[0])
        else:
            maxp = int(rv.max())
            candidates = np.nonzero(rv == maxp)[0]
            w = int(candidates[np.argmin(st[candidates])])
            d = self.max_rrpv - maxp
            if d > 0:
                rv += d

        ins = self.max_rrpv - 1
        if self.policy == "BRRIP":
            bimodal = True
        elif self.policy == "DRRIP":
            bimodal = (role == _ROLE_LEADER_BRRIP
                       or (role == _ROLE_FOLLOWER
                           and int(self._psel[0]) > self._psel_max // 2))
        else:
            bimodal = False
        if bimodal and _uniform01(self._rng_state) >= self.epsilon:
            ins = self.max_rrpv

        row[w] = a
        rv[w] = ins
        st[w] = t
        return False

    # -- TA-DRRIP -------------------------------------------------------- #
    @property
    def thread_misses(self) -> np.ndarray:
        """Per-stream cumulative miss counts (TA-DRRIP only)."""
        if self.policy != "TA-DRRIP":
            raise AttributeError("thread_misses applies to TA-DRRIP only")
        return self._tad_misses

    def _tad_tid(self, thread_id: int) -> int:
        tid = int(thread_id)
        if not 0 <= tid < self.num_streams:
            raise ValueError(f"thread_id must be in [0, {self.num_streams}),"
                             f" got {tid}")
        return tid

    def _tad_duel(self, a: int, tid: int) -> int:
        """Address-constituency role of a TA-DRRIP miss, updating the
        issuing stream's PSEL (mirrors TADRRIPPolicy._address_role +
        DuelingController.record_leader_miss, and the kernel exactly)."""
        bucket = (a * _GOLDEN) & 1023
        if bucket < self._leader_levels:
            role = _ROLE_LEADER_SRRIP
        elif bucket < 2 * self._leader_levels:
            role = _ROLE_LEADER_BRRIP
        else:
            role = _ROLE_FOLLOWER
        if role == _ROLE_LEADER_SRRIP and self._psel[tid] < self._psel_max:
            self._psel[tid] += 1
        elif role == _ROLE_LEADER_BRRIP and self._psel[tid] > 0:
            self._psel[tid] -= 1
        return role

    def _tadrrip_access(self, a: int, s: int, tid: int) -> bool:
        row = self.tags[s]
        rv = self.rrpv[s]
        st = self.stamp[s]
        self._counter[0] += 1
        t = int(self._counter[0])
        match = np.nonzero(row == a)[0]
        if match.size:
            w = int(match[0])
            rv[w] = 0  # hit priority
            st[w] = t
            return True
        self._tad_misses[tid] += 1
        role = self._tad_duel(a, tid)

        empty = np.nonzero(row == _EMPTY)[0]
        if empty.size:
            w = int(empty[0])
        else:
            maxp = int(rv.max())
            candidates = np.nonzero(rv == maxp)[0]
            w = int(candidates[np.argmin(st[candidates])])
            d = self.max_rrpv - maxp
            if d > 0:
                rv += d

        ins = self.max_rrpv - 1
        bimodal = (role == _ROLE_LEADER_BRRIP
                   or (role == _ROLE_FOLLOWER
                       and int(self._psel[tid]) > self._psel_max // 2))
        if bimodal and _uniform01(self._rng_state) >= self.epsilon:
            ins = self.max_rrpv

        row[w] = a
        rv[w] = ins
        st[w] = t
        return False

    def _dip_access(self, a: int, s: int) -> bool:
        row = self.tags[s]
        st = self.stamp[s]
        self._counter[0] += 1
        t = int(self._counter[0])
        match = np.nonzero(row == a)[0]
        if match.size:
            st[match[0]] = t
            return True

        role = _ROLE_FOLLOWER
        if self.policy == "DIP":
            role = self._duel_role(a, s)

        empty = np.nonzero(row == _EMPTY)[0]
        w = int(empty[0]) if empty.size else int(np.argmin(st))
        row[w] = a
        st[w] = t

        if self.policy == "DIP":
            if role == _ROLE_LEADER_SRRIP:
                bip = False
            elif role == _ROLE_LEADER_BRRIP:
                bip = True
            else:
                bip = int(self._psel[0]) > self._psel_max // 2
        else:
            bip = True
        if bip and _uniform01(self._rng_state) >= self.epsilon:
            others = np.nonzero((row != _EMPTY)
                                & (np.arange(self.ways) != w))[0]
            if others.size:
                st[w] = int(st[others].min()) - 1
        return False

    def _random_access(self, a: int, s: int) -> bool:
        """Random replacement: uniform victim from the shared splitmix
        stream (draw-for-draw identical to the native ``random_run``)."""
        row = self.tags[s]
        match = np.nonzero(row == a)[0]
        if match.size:
            return True
        empty = np.nonzero(row == _EMPTY)[0]
        if empty.size:
            w = int(empty[0])
        else:
            w = int(_splitmix64(self._rng_state) % self.ways)
        row[w] = a
        return False

    # -- PDP ------------------------------------------------------------- #
    def _ls_lookup(self, s: int, a: int) -> int:
        """Slot of ``a`` in set ``s``'s last-seen table (linear probing)."""
        mask = self._pdp_tsize - 1
        tags = self._ls_tags[s]
        slot = mix64(a) & mask
        while tags[slot] != _EMPTY and tags[slot] != a:
            slot = (slot + 1) & mask
        return int(slot)

    def _pdp_recompute(self, s: int) -> None:
        """Mirror PDPPolicy._recompute_dp / select_protecting_distance."""
        hist = self._pdp_hist[s]
        max_dp = self._pdp_max_dp
        total = int(self._pdp_samples[s])
        if np.any(hist[1:] != 0) and total > 0:
            best_dp, best_score = max_dp, -1.0
            hits = weighted = 0
            for dp in range(1, max_dp + 1):
                hits += int(hist[dp])
                weighted += dp * int(hist[dp])
                misses = total - hits
                occupancy = weighted + dp * misses
                if occupancy <= 0:
                    continue
                score = hits / occupancy
                if score > best_score:
                    best_score = score
                    best_dp = dp
            self._pdp_dp[s] = best_dp
        # Decay the sample so the policy adapts to phase changes.
        decayed = np.where(hist > 1, (hist + 1) // 2, 0)
        decayed[0] = 0
        self._pdp_hist[s] = decayed
        if self._ls_count[s] > self._pdp_clear_threshold:
            self._ls_tags[s].fill(_EMPTY)
            self._ls_count[s] = 0

    def _pdp_sample(self, a: int, s: int) -> int:
        """Advance set ``s``'s reuse sampler for one access; returns the
        set-local clock (runs even at zero capacity, like the object
        policy's sampler)."""
        self._pdp_clock[s] += 1
        c = int(self._pdp_clock[s])
        slot = self._ls_lookup(s, a)
        if self._ls_tags[s, slot] == a:
            d = c - int(self._ls_clocks[s, slot])
            if d <= self._pdp_max_dp:
                self._pdp_hist[s, d] += 1
        else:
            self._ls_tags[s, slot] = a
            self._ls_count[s] += 1
        self._ls_clocks[s, slot] = c
        self._pdp_samples[s] += 1
        if self._pdp_samples[s] % self._pdp_interval == 0:
            self._pdp_recompute(s)
        return c

    def _pdp_access(self, a: int, s: int) -> bool:
        row = self.tags[s]
        st = self.stamp[s]
        ex = self.expires[s]
        c = self._pdp_sample(a, s)

        self._counter[0] += 1
        t = int(self._counter[0])
        match = np.nonzero(row == a)[0]
        if match.size:
            w = int(match[0])
            ex[w] = c + int(self._pdp_dp[s])
            st[w] = t
            return True
        empty = np.nonzero(row == _EMPTY)[0]
        if empty.size:
            w = int(empty[0])
        else:
            unprotected = np.nonzero(ex <= c)[0]
            if not unprotected.size:
                return False  # every line protected: bypass the fill
            w = int(unprotected[np.argmin(st[unprotected])])
        row[w] = a
        ex[w] = c + int(self._pdp_dp[s])
        st[w] = t
        return False

    # ------------------------------------------------------------------ #
    def _materialize_tids(self, addrs: np.ndarray, thread_ids) -> np.ndarray | None:
        """Validated per-access stream ids (TA-DRRIP's thread lane).

        Returns ``None`` for thread-oblivious policies; for TA-DRRIP an
        int64 array the shape of ``addrs`` (all stream 0 when no ids were
        supplied)."""
        if self.policy != "TA-DRRIP":
            if thread_ids is not None:
                raise ValueError("thread_ids applies to TA-DRRIP only")
            return None
        if thread_ids is None:
            return np.zeros(addrs.size, dtype=np.int64)
        tids = np.ascontiguousarray(thread_ids, dtype=np.int64)
        if tids.shape != addrs.shape:
            raise ValueError("thread_ids must have the trace's shape")
        if tids.size and (int(tids.min()) < 0
                          or int(tids.max()) >= self.num_streams):
            raise ValueError(
                f"thread ids must be in [0, {self.num_streams})")
        return tids

    def run(self, trace: Iterable[int] | Sequence[int] | np.ndarray,
            instructions: int = 0, thread_ids=None) -> CacheStats:
        """Replay a trace; returns (and stores) the accumulated stats.

        Uses the native kernel when available, the Python access path
        otherwise — results are identical either way.  ``thread_ids``
        (TA-DRRIP only) attributes each access to a stream; omitted, every
        access belongs to stream 0.
        """
        addrs = materialize_addresses(trace)
        if addrs.ndim != 1:
            raise ValueError("trace must be one-dimensional")
        if addrs.size and bool(np.any(addrs == _EMPTY)):
            raise ValueError("address -1 is reserved as the empty-way "
                             "sentinel; the array backend cannot cache it")
        tids = self._materialize_tids(addrs, thread_ids)
        kernel = get_kernel()
        if kernel is None or self.ways == 0 or self.num_sets == 0:
            # No kernel, or a zero-capacity warm-resized region (the
            # kernels index per-way rows, which a zero-way geometry does
            # not have; the Python path advances the capacity-independent
            # side state exactly).
            if tids is None:
                for a in addrs.tolist():
                    self.access(a)
            else:
                for a, tid in zip(addrs.tolist(), tids.tolist()):
                    self.access(a, tid)
        elif addrs.size:
            misses = self._run_native(kernel, addrs, tids)
            self.stats.accesses += int(addrs.size)
            self.stats.misses += misses
            self.stats.hits += int(addrs.size) - misses
        if instructions:
            self.stats.instructions += instructions
        return self.stats

    def run_chunk(self, trace: Iterable[int] | Sequence[int] | np.ndarray,
                  instructions: int = 0, thread_ids=None) -> CacheStats:
        """Replay one chunk of a trace; returns this chunk's stats only.

        The chunked entry point of the resumable runtime: state is carried
        across calls, so any sequence of ``run_chunk`` calls is
        bit-identical to one :meth:`run` over the concatenated trace.  The
        cumulative statistics remain available in :attr:`stats`.
        """
        before = CacheStats(accesses=self.stats.accesses,
                            hits=self.stats.hits, misses=self.stats.misses,
                            instructions=self.stats.instructions)
        self.run(trace, instructions=instructions, thread_ids=thread_ids)
        return CacheStats(
            accesses=self.stats.accesses - before.accesses,
            hits=self.stats.hits - before.hits,
            misses=self.stats.misses - before.misses,
            instructions=self.stats.instructions - before.instructions)

    def _run_native(self, kernel, addrs: np.ndarray,
                    tids: np.ndarray | None = None) -> int:
        hashed = 1 if self.hashed_index else 0
        if self.policy == "TA-DRRIP":
            if tids is None:
                tids = np.zeros(addrs.size, dtype=np.int64)
            misses = kernel.tadrrip_run(addrs, tids, self.num_sets,
                                        self.ways, self.max_rrpv, self.tags,
                                        self.rrpv, self.stamp, self._counter,
                                        self.epsilon, self._rng_state,
                                        self._psel, self.num_streams,
                                        self._psel_max, self._leader_levels,
                                        self._tad_misses, hashed,
                                        self.index_seed)
            if misses < 0:
                raise ValueError(
                    f"thread ids must be in [0, {self.num_streams})")
            return misses
        if self.policy in _RRIP_FAMILY:
            return kernel.rrip_run(addrs, self.num_sets, self.ways,
                                   self.max_rrpv, self.tags, self.rrpv,
                                   self.stamp, self._counter,
                                   _MODE[self.policy], self.epsilon,
                                   self._rng_state, self._roles, self._psel,
                                   self._psel_max, self._leader_levels,
                                   hashed, self.index_seed)
        if self.policy in _DIP_FAMILY:
            return kernel.dip_run(addrs, self.num_sets, self.ways,
                                  self.tags, self.stamp, self._counter,
                                  _DIP_MODE[self.policy], self.epsilon,
                                  self._rng_state, self._roles, self._psel,
                                  self._psel_max, self._leader_levels,
                                  hashed, self.index_seed)
        if self.policy == "PDP":
            return kernel.pdp_run(addrs, self.num_sets, self.ways,
                                  self.tags, self.stamp, self._counter,
                                  self.expires, self._pdp_clock,
                                  self._pdp_dp, self._pdp_samples,
                                  self._pdp_hist, self._pdp_max_dp,
                                  self._pdp_interval,
                                  self._pdp_clear_threshold,
                                  self._ls_tags, self._ls_clocks,
                                  self._ls_count, self._pdp_tsize,
                                  hashed, self.index_seed)
        if self.policy == "Random":
            return kernel.random_run(addrs, self.num_sets, self.ways,
                                     self.tags, self._rng_state,
                                     hashed, self.index_seed)
        return kernel.lru_run(addrs, self.num_sets, self.ways,
                              self.tags, self.stamp, self._counter,
                              1 if self.policy == "LIP" else 0,
                              hashed, self.index_seed)

    def replay_task(self, trace, thread_ids=None):
        """This cache's replay of ``trace`` as a batchable
        :class:`~repro.cache.threadbatch.ReplayTask`.

        The packed fields mirror :meth:`_run_native` member for member and
        the commit folds the statistics exactly as :meth:`run` does, so a
        task executed by the threaded dispatcher — at any width — is
        bit-identical to calling :meth:`run` directly.  Without a kernel
        (or at zero geometry) the task carries :meth:`run` itself as its
        fallback.  ``thread_ids`` is TA-DRRIP's per-access stream lane.
        """
        from . import _native
        from .threadbatch import ReplayTask, i64_ptr, u64_ptr
        addrs = materialize_addresses(trace)
        if addrs.ndim != 1:
            raise ValueError("trace must be one-dimensional")
        if addrs.size and bool(np.any(addrs == _EMPTY)):
            raise ValueError("address -1 is reserved as the empty-way "
                             "sentinel; the array backend cannot cache it")
        tids = self._materialize_tids(addrs, thread_ids)
        kernel = get_kernel()
        if (kernel is None or not kernel.has_batch or self.ways == 0
                or self.num_sets == 0 or addrs.size == 0):
            return ReplayTask(
                fallback=lambda: self.run(addrs, thread_ids=tids))
        n = int(addrs.size)
        fields = {
            "addrs": i64_ptr(addrs), "n": n,
            "num_sets": self.num_sets, "ways": self.ways,
            "tags": i64_ptr(self.tags), "stamp": i64_ptr(self.stamp),
            "counter": i64_ptr(self._counter),
            "hashed": 1 if self.hashed_index else 0,
            "index_seed": self.index_seed,
        }
        refs: tuple = (addrs,)
        if self.policy == "TA-DRRIP":
            fields.update(
                kind=_native.KIND_TADRRIP, max_rrpv=self.max_rrpv,
                rrpv=i64_ptr(self.rrpv), parts=i64_ptr(tids),
                epsilon=self.epsilon, rng_state=u64_ptr(self._rng_state),
                psel=i64_ptr(self._psel), psel_max=self._psel_max,
                leader_levels=self._leader_levels,
                num_streams=self.num_streams,
                miss_out=i64_ptr(self._tad_misses))
            refs = (addrs, tids)
        elif self.policy in _RRIP_FAMILY:
            fields.update(
                kind=_native.KIND_RRIP, max_rrpv=self.max_rrpv,
                rrpv=i64_ptr(self.rrpv), mode=_MODE[self.policy],
                epsilon=self.epsilon, rng_state=u64_ptr(self._rng_state),
                roles=i64_ptr(self._roles), psel=i64_ptr(self._psel),
                psel_max=self._psel_max, leader_levels=self._leader_levels)
        elif self.policy in _DIP_FAMILY:
            fields.update(
                kind=_native.KIND_DIP, mode=_DIP_MODE[self.policy],
                epsilon=self.epsilon, rng_state=u64_ptr(self._rng_state),
                roles=i64_ptr(self._roles), psel=i64_ptr(self._psel),
                psel_max=self._psel_max, leader_levels=self._leader_levels)
        elif self.policy == "PDP":
            fields.update(
                kind=_native.KIND_PDP, expires=i64_ptr(self.expires),
                clock=i64_ptr(self._pdp_clock), dp=i64_ptr(self._pdp_dp),
                sample_count=i64_ptr(self._pdp_samples),
                hist=i64_ptr(self._pdp_hist), max_dp=self._pdp_max_dp,
                interval=self._pdp_interval,
                clear_threshold=self._pdp_clear_threshold,
                ls_tags=i64_ptr(self._ls_tags),
                ls_clocks=i64_ptr(self._ls_clocks),
                ls_count=i64_ptr(self._ls_count), tsize=self._pdp_tsize)
        elif self.policy == "Random":
            fields.update(kind=_native.KIND_RANDOM,
                          rng_state=u64_ptr(self._rng_state))
        else:
            fields.update(kind=_native.KIND_LRU,
                          lip=1 if self.policy == "LIP" else 0)

        def commit(misses: int) -> None:
            if misses < 0:
                raise ValueError(
                    f"thread ids must be in [0, {self.num_streams})")
            self.stats.accesses += n
            self.stats.misses += misses
            self.stats.hits += n - misses

        return ReplayTask(fields=fields, refs=refs, commit=commit)

    # ------------------------------------------------------------------ #
    # Warm resizing (the reallocation primitive of the resumable runtime)
    # ------------------------------------------------------------------ #
    def _shrink_survivors(self, s: int, new_ways: int) -> np.ndarray:
        """Way indices (ascending) surviving a shrink of set ``s``.

        Victims are chosen exactly as the object policies' ``evict_one``
        would choose them: oldest stamp for the recency family (LRU order),
        highest-RRPV-then-oldest-entrant for the RRIP family,
        oldest-unprotected-then-oldest for PDP, and uniformly random draws
        from the shared splitmix stream for Random.
        """
        row = self.tags[s]
        occupied = np.nonzero(row != _EMPTY)[0]
        k = occupied.size - new_ways
        if k <= 0:
            return occupied
        if new_ways == 0:
            return occupied[:0]
        if self.policy == "Random":
            resident = occupied.tolist()
            for _ in range(k):
                idx = int(_splitmix64(self._rng_state) % len(resident))
                resident[idx] = resident[-1]
                resident.pop()
            return np.sort(np.asarray(resident, dtype=np.int64))
        st = self.stamp[s, occupied]
        if self.policy in _RRIP_STATE:
            order = occupied[np.lexsort((st, -self.rrpv[s, occupied]))]
        elif self.policy == "PDP":
            protected = (self.expires[s, occupied]
                         > int(self._pdp_clock[s])).astype(np.int64)
            order = occupied[np.lexsort((st, protected))]
        else:
            order = occupied[np.argsort(st, kind="stable")]
        return np.sort(order[k:])

    def resize_ways(self, new_ways: int) -> None:
        """Warm-resize every set to ``new_ways`` ways, keeping contents.

        Growing keeps all lines (new ways start empty).  Shrinking evicts
        per-policy victims per set, replicating repeated ``evict_one``
        calls of the object policies — including RRIP aging: survivors age
        by the same delta the object model's eviction-driven aging applies.
        Capacity-derived PDP tuning (candidate-distance bound, recompute
        interval, table sizes) stays frozen at construction-time values,
        exactly as the object model's ``set_capacity`` leaves them.
        Resizing to zero ways is allowed; such a region misses every
        access while its capacity-independent side state keeps advancing.
        """
        if new_ways < 0:
            raise ValueError("new_ways must be non-negative")
        if new_ways == self.ways:
            return
        old_ways = self.ways
        shape = (self.num_sets, new_ways)
        new_tags = np.full(shape, _EMPTY, dtype=np.int64)
        new_stamp = np.zeros(shape, dtype=np.int64)
        new_rrpv = np.full(shape, self.max_rrpv, dtype=np.int64)
        new_expires = (np.zeros(shape, dtype=np.int64)
                       if self.policy == "PDP" else None)
        if new_ways > old_ways:
            new_tags[:, :old_ways] = self.tags
            new_stamp[:, :old_ways] = self.stamp
            new_rrpv[:, :old_ways] = self.rrpv
            if new_expires is not None:
                new_expires[:, :old_ways] = self.expires
        else:
            for s in range(self.num_sets):
                surv = self._shrink_survivors(s, new_ways)
                m = int(surv.size)
                if m == 0:
                    continue
                new_tags[s, :m] = self.tags[s, surv]
                new_stamp[s, :m] = self.stamp[s, surv]
                if self.policy in _RRIP_STATE:
                    rv = self.rrpv[s, surv]
                    evicted = np.setdiff1d(
                        np.nonzero(self.tags[s] != _EMPTY)[0], surv)
                    if evicted.size:
                        # Survivors age by the delta that brought the last
                        # victim's bucket to max RRPV (object-model aging).
                        delta = self.max_rrpv - int(
                            self.rrpv[s, evicted].min())
                        if delta > 0:
                            rv = np.minimum(rv + delta, self.max_rrpv)
                    new_rrpv[s, :m] = rv
                if new_expires is not None:
                    new_expires[s, :m] = self.expires[s, surv]
        self.tags = new_tags
        self.stamp = new_stamp
        self.rrpv = new_rrpv
        if new_expires is not None:
            self.expires = new_expires
        self.ways = new_ways

    def resize_sets(self, new_num_sets: int) -> None:
        """Warm-resize to ``new_num_sets`` sets, keeping the leading sets.

        The first ``min(old, new)`` sets keep their full state (lines,
        recency, RRPVs, PDP samplers); extra sets start empty with fresh
        per-set policy state — exactly how the object
        :class:`~repro.cache.partition.setpart.SetPartitionedCache` drops
        trailing regions on shrink and appends fresh ones on growth.  The
        dueling policies' leader-set wiring is recomputed for the new set
        count (they are on the seeded tier; the object model instead keeps
        per-region roles by absolute index).
        """
        if new_num_sets < 0:
            raise ValueError("new_num_sets must be non-negative")
        if new_num_sets == self.num_sets:
            return
        n = min(self.num_sets, new_num_sets)

        def pad2(arr: np.ndarray, fill) -> np.ndarray:
            out = np.full((new_num_sets, arr.shape[1]), fill, dtype=arr.dtype)
            out[:n] = arr[:n]
            return out

        def pad1(arr: np.ndarray, fill) -> np.ndarray:
            out = np.full(new_num_sets, fill, dtype=arr.dtype)
            out[:n] = arr[:n]
            return out

        self.tags = pad2(self.tags, _EMPTY)
        self.stamp = pad2(self.stamp, 0)
        self.rrpv = pad2(self.rrpv, self.max_rrpv)
        if self.policy == "PDP":
            self.expires = pad2(self.expires, 0)
            self._pdp_clock = pad1(self._pdp_clock, 0)
            self._pdp_dp = pad1(self._pdp_dp, self._pdp_initial_dp)
            self._pdp_samples = pad1(self._pdp_samples, 0)
            self._pdp_hist = pad2(self._pdp_hist, 0)
            self._ls_tags = pad2(self._ls_tags, _EMPTY)
            self._ls_clocks = pad2(self._ls_clocks, 0)
            self._ls_count = pad1(self._ls_count, 0)
        self._roles = (_dueling_roles(new_num_sets)
                       if self.policy in _DUELING and new_num_sets > 0
                       else np.zeros(new_num_sets, dtype=np.int64))
        self.num_sets = new_num_sets

    def to_spec(self):
        """A :class:`~repro.cache.spec.CacheSpec` rebuilding this cache.

        Caches built from a spec return it verbatim; directly constructed
        caches are reconstructed from their own attributes (non-default
        RRIP/bimodal parameters included; PDP tuning parameters are only
        preserved when the cache was built from a spec).
        """
        stored = getattr(self, "_built_spec", None)
        if stored is not None:
            return stored
        from .spec import CacheSpec
        kwargs = {}
        if self.policy in _RRIP_STATE and self.m_bits != 2:
            kwargs["m_bits"] = self.m_bits
        if (self.policy in _RRIP_STATE or self.policy in _DIP_FAMILY) \
                and self.epsilon != 1.0 / 32.0:
            kwargs["epsilon"] = self.epsilon
        if self.policy == "TA-DRRIP" and self.num_streams != 8:
            kwargs["num_streams"] = self.num_streams
        return CacheSpec(capacity_lines=self.capacity_lines, ways=self.ways,
                         policy=self.policy, backend="array",
                         seed=self.seed or None,
                         hashed_index=self.hashed_index,
                         index_seed=self.index_seed,
                         policy_kwargs=tuple(sorted(kwargs.items())))

    @classmethod
    def from_spec(cls, spec):
        """Build a cache from a :class:`~repro.cache.spec.CacheSpec`."""
        from .spec import build
        return build(spec)

    def __repr__(self) -> str:
        return (f"ArraySetAssociativeCache(sets={self.num_sets}, "
                f"ways={self.ways}, policy={self.policy!r}, "
                f"capacity={self.capacity_lines} lines)")


#: next_use sentinel for lines never accessed again (must sort above every
#: real trace position; matches I64_MAX in the kernel's documentation).
_NEVER = np.iinfo(np.int64).max


def belady_next_use(trace) -> np.ndarray:
    """Per-access next-use positions of ``trace`` (vectorized two-pass).

    ``out[i]`` is the trace position of the next access to the line
    ``trace[i]`` touches after position ``i``, or ``2**63 - 1`` when that
    line is never touched again.  One stable argsort groups each line's
    accesses in trace order; a scatter then links every access to its
    successor.  Computed once per trace and shared across every capacity
    point of a Belady miss curve (and across every
    :class:`ArrayBeladyCache` built from the same precomputation).
    """
    addrs = materialize_addresses(trace)
    if addrs.ndim != 1:
        raise ValueError("trace must be one-dimensional")
    out = np.full(addrs.size, _NEVER, dtype=np.int64)
    if addrs.size > 1:
        order = np.argsort(addrs, kind="stable")
        same = addrs[order[1:]] == addrs[order[:-1]]
        out[order[:-1][same]] = order[1:][same]
    return out


class ArrayBeladyCache:
    """Belady's MIN (offline optimal) over caller-owned array state.

    The array counterpart of
    :class:`~repro.cache.replacement.belady.BeladyMINPolicy`: fully
    associative, fed the whole trace up front.  Next-use positions are
    precomputed by :func:`belady_next_use` (pass ``next_use=`` to share one
    precomputation across capacities); the replay itself is a lazy
    max-heap over an open-addressing residency table, chunk-resumable like
    every other array organization (``run``/``run_chunk``/``access`` calls
    may be freely mixed, and must follow the attached trace in order).

    Miss counts are exact against the object model at every capacity: ties
    (which only arise among lines never accessed again) may be broken
    differently, but evicting any dead line leaves every future hit
    intact, so MIN's miss count is invariant to the choice.
    """

    supports_batch_replay = True
    policy = "Belady"

    def __init__(self, capacity: int, trace, next_use: np.ndarray | None = None):
        capacity = int(capacity)
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._trace = materialize_addresses(trace)
        if self._trace.ndim != 1:
            raise ValueError("trace must be one-dimensional")
        if self._trace.size and bool(np.any(self._trace == _EMPTY)):
            raise ValueError("address -1 is reserved as the empty-slot "
                             "sentinel; the array backend cannot cache it")
        if next_use is None:
            next_use = belady_next_use(self._trace)
        else:
            next_use = np.ascontiguousarray(next_use, dtype=np.int64)
            if next_use.shape != self._trace.shape:
                raise ValueError("next_use must have the trace's shape")
        self._next_use = next_use
        self._cursor = 0
        n = int(self._trace.size)
        live = min(capacity, n)
        self._tsize = _next_pow2(2 * (live + 2))
        self._ht_tag = np.full(self._tsize, _EMPTY, dtype=np.int64)
        self._ht_val = np.zeros(self._tsize, dtype=np.int64)
        # Every access pushes one lazy heap entry, so n + 1 slots suffice
        # for the whole attached trace regardless of chunking.
        self._heap_key = np.zeros(n + 1, dtype=np.int64)
        self._heap_tag = np.zeros(n + 1, dtype=np.int64)
        self._heap_io = np.zeros(2, dtype=np.int64)  # [live len, resident]
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    @property
    def capacity_lines(self) -> int:
        """Capacity in lines (fully associative)."""
        return self.capacity

    @property
    def trace_remaining(self) -> int:
        """Accesses of the attached trace not yet replayed."""
        return int(self._trace.size) - self._cursor

    def occupancy(self) -> int:
        """Number of currently resident lines."""
        return int(self._heap_io[1])

    def reset_stats(self) -> None:
        """Zero the statistics without touching cache contents."""
        self.stats = CacheStats()

    def snapshot(self, position: int = 0, meta: dict | None = None):
        """Capture the warm state (replay cursor included) as a
        picklable :class:`~repro.sampling.checkpoint.CacheCheckpoint`."""
        from ..sampling.checkpoint import snapshot
        return snapshot(self, position=position, meta=meta)

    def restore(self, checkpoint) -> None:
        """Rewind this cache to ``checkpoint``'s state, in place (the
        attached trace must match the checkpoint's)."""
        from ..sampling.checkpoint import restore_into
        restore_into(self, checkpoint)

    def _claim(self, trace) -> tuple[int, np.ndarray]:
        """Validate ``trace`` as the next chunk of the attached trace and
        advance the cursor past it (``None`` claims the whole remainder)."""
        start = self._cursor
        if trace is None:
            addrs = self._trace[start:]
        else:
            addrs = materialize_addresses(trace)
            if addrs.ndim != 1:
                raise ValueError("trace must be one-dimensional")
            end = start + int(addrs.size)
            if (end > self._trace.size
                    or not np.array_equal(addrs, self._trace[start:end])):
                raise ValueError(
                    f"out-of-order replay: Belady MIN is offline and must "
                    f"replay its attached trace in order (cursor at "
                    f"{start} of {self._trace.size})")
        self._cursor = start + int(addrs.size)
        return start, addrs

    # ------------------------------------------------------------------ #
    def access(self, address: int) -> bool:
        """Replay the next attached-trace access (which must be
        ``address``); returns True on a hit and updates stats."""
        start, addrs = self._claim(
            np.asarray([int(address)], dtype=np.int64))
        misses = self._replay_python(addrs, self._next_use[start:start + 1])
        hit = misses == 0
        self.stats.record(hit)
        return hit

    def run(self, trace=None, instructions: int = 0) -> CacheStats:
        """Replay the next chunk of the attached trace (all of it when
        ``trace`` is None); returns (and stores) the accumulated stats."""
        start, addrs = self._claim(trace)
        n = int(addrs.size)
        if n:
            nu = self._next_use[start:start + n]
            kernel = get_kernel()
            if kernel is None:
                misses = self._replay_python(addrs, nu)
            else:
                misses = kernel.belady_run(addrs, nu, self.capacity,
                                           self._ht_tag, self._ht_val,
                                           self._heap_key, self._heap_tag,
                                           self._heap_io)
                if misses < 0:
                    raise RuntimeError("belady_run: corrupt heap state")
            self.stats.accesses += n
            self.stats.misses += misses
            self.stats.hits += n - misses
        if instructions:
            self.stats.instructions += instructions
        return self.stats

    def run_chunk(self, trace=None, instructions: int = 0) -> CacheStats:
        """Replay one chunk; returns this chunk's stats only (state and
        cumulative :attr:`stats` carry across calls)."""
        before = CacheStats(accesses=self.stats.accesses,
                            hits=self.stats.hits, misses=self.stats.misses,
                            instructions=self.stats.instructions)
        self.run(trace, instructions=instructions)
        return CacheStats(
            accesses=self.stats.accesses - before.accesses,
            hits=self.stats.hits - before.hits,
            misses=self.stats.misses - before.misses,
            instructions=self.stats.instructions - before.instructions)

    def _replay_python(self, addrs: np.ndarray, next_use: np.ndarray) -> int:
        """Pure-Python twin of ``belady_run`` over the same arrays
        (bit-identical state, so kernel and Python chunks may be mixed)."""
        ht_tag, ht_val = self._ht_tag, self._ht_val
        hk, ht = self._heap_key, self._heap_tag
        io = self._heap_io
        mask = self._tsize - 1
        cap = self.capacity
        heap_cap = int(hk.size)
        misses = 0
        for i in range(int(addrs.size)):
            a = int(addrs[i])
            nu = int(next_use[i])
            slot = mix64(a) & mask
            while ht_tag[slot] != _EMPTY and ht_tag[slot] != a:
                slot = (slot + 1) & mask
            if int(io[0]) >= heap_cap:
                raise RuntimeError("belady: corrupt heap state")
            if ht_tag[slot] == a:
                ht_val[slot] = nu
            else:
                misses += 1
                if cap == 0:
                    continue
                if int(io[1]) >= cap:
                    while True:  # evict the furthest-next-use resident line
                        ln = int(io[0])
                        if ln <= 0:
                            raise RuntimeError("belady: corrupt heap state")
                        key, tag = int(hk[0]), int(ht[0])
                        ln -= 1
                        io[0] = ln
                        hk[0] = hk[ln]
                        ht[0] = ht[ln]
                        j = 0
                        while True:
                            left, right, big = 2 * j + 1, 2 * j + 2, j
                            if left < ln and hk[left] > hk[big]:
                                big = left
                            if right < ln and hk[right] > hk[big]:
                                big = right
                            if big == j:
                                break
                            hk[j], hk[big] = int(hk[big]), int(hk[j])
                            ht[j], ht[big] = int(ht[big]), int(ht[j])
                            j = big
                        vs = mix64(tag) & mask
                        while ht_tag[vs] != _EMPTY and ht_tag[vs] != tag:
                            vs = (vs + 1) & mask
                        if ht_tag[vs] != tag or ht_val[vs] != key:
                            continue  # stale entry: deadline since renewed
                        ht_tag[vs] = _EMPTY  # backward-shift delete
                        hole = vs
                        k = (vs + 1) & mask
                        while ht_tag[k] != _EMPTY:
                            home = mix64(int(ht_tag[k])) & mask
                            if ((k - home) & mask) >= ((k - hole) & mask):
                                ht_tag[hole] = ht_tag[k]
                                ht_val[hole] = ht_val[k]
                                ht_tag[k] = _EMPTY
                                hole = k
                            k = (k + 1) & mask
                        io[1] -= 1
                        break
                    # The delete may have moved the probe target; re-find.
                    slot = mix64(a) & mask
                    while ht_tag[slot] != _EMPTY:
                        slot = (slot + 1) & mask
                ht_tag[slot] = a
                ht_val[slot] = nu
                io[1] += 1
            # Push (nu, a); hits and fills both push, like the object model.
            j = int(io[0])
            io[0] = j + 1
            hk[j] = nu
            ht[j] = a
            while j > 0:
                parent = (j - 1) // 2
                if hk[parent] >= hk[j]:
                    break
                hk[j], hk[parent] = int(hk[parent]), int(hk[j])
                ht[j], ht[parent] = int(ht[parent]), int(ht[j])
                j = parent
        return misses

    # ------------------------------------------------------------------ #
    def replay_task(self, trace=None):
        """The next chunk's replay as a batchable
        :class:`~repro.cache.threadbatch.ReplayTask` (claims the chunk
        immediately; the dispatcher commits its statistics)."""
        from . import _native
        from .threadbatch import ReplayTask, i64_ptr
        start, addrs = self._claim(trace)
        n = int(addrs.size)
        nu = self._next_use[start:start + n]
        kernel = get_kernel()
        if kernel is None or not kernel.has_batch or n == 0:
            def fallback():
                self._cursor = start  # run() re-claims the chunk
                return self.run(addrs)
            return ReplayTask(fallback=fallback)
        fields = {
            "kind": _native.KIND_BELADY, "addrs": i64_ptr(addrs), "n": n,
            "capacity": self.capacity, "next_use": i64_ptr(nu),
            "ht_tag": i64_ptr(self._ht_tag), "ht_reg": i64_ptr(self._ht_val),
            "tsize": self._tsize, "heap_key": i64_ptr(self._heap_key),
            "heap_tag": i64_ptr(self._heap_tag),
            "heap_cap": int(self._heap_key.size),
            "heap_io": i64_ptr(self._heap_io),
        }

        def commit(misses: int) -> None:
            if misses < 0:
                raise RuntimeError("belady_run: corrupt heap state")
            self.stats.accesses += n
            self.stats.misses += misses
            self.stats.hits += n - misses

        return ReplayTask(fields=fields, refs=(addrs, nu), commit=commit)

    def to_spec(self):
        """A :class:`~repro.cache.spec.CacheSpec` rebuilding this cache
        (the trace itself is attached at build time, not stored in the
        spec)."""
        stored = getattr(self, "_built_spec", None)
        if stored is not None:
            return stored
        from .spec import CacheSpec
        return CacheSpec(capacity_lines=self.capacity,
                         ways=max(1, self.capacity), policy="Belady",
                         backend="array")

    @classmethod
    def from_spec(cls, spec, trace=None):
        """Build a cache from a :class:`~repro.cache.spec.CacheSpec`
        (``trace`` may also be pre-attached on the spec)."""
        from .spec import build
        if trace is not None:
            spec = spec.with_trace(trace)
        return build(spec)

    def __repr__(self) -> str:
        return (f"ArrayBeladyCache(capacity={self.capacity} lines, "
                f"trace={int(self._trace.size)} accesses, "
                f"cursor={self._cursor})")


def run_lru_family_batch(trace, caches: Sequence[ArraySetAssociativeCache]
                         ) -> np.ndarray:
    """Replay one trace through several LRU/LIP caches in a single pass.

    The shared-trace-decode fast path of batched sweeps: instead of one
    kernel call per configuration (each streaming the whole trace through
    memory again), all configurations advance together in one
    ``multi_lru_run`` call.  Results — per-cache state, statistics and the
    returned per-cache miss counts of this replay — are bit-identical to
    calling ``cache.run(trace)`` on each cache separately; without a native
    kernel that is exactly what happens.

    All caches must be LRU or LIP and share the same set-indexing scheme
    (``hashed_index``/``index_seed``).
    """
    caches = list(caches)
    misses = np.zeros(len(caches), dtype=np.int64)
    if not caches:
        return misses
    for cache in caches:
        if cache.policy not in ("LRU", "LIP"):
            raise ValueError(
                f"run_lru_family_batch supports LRU/LIP only, got "
                f"{cache.policy!r}")
        if (cache.hashed_index != caches[0].hashed_index
                or cache.index_seed != caches[0].index_seed):
            raise ValueError("all caches must share one set-indexing scheme")
    addrs = materialize_addresses(trace)
    if addrs.ndim != 1:
        raise ValueError("trace must be one-dimensional")
    if addrs.size == 0:
        return misses
    if bool(np.any(addrs == _EMPTY)):
        raise ValueError("address -1 is reserved as the empty-way "
                         "sentinel; the array backend cannot cache it")
    kernel = get_kernel()
    if kernel is None:
        for i, cache in enumerate(caches):
            before = cache.stats.misses
            cache.run(addrs)
            misses[i] = cache.stats.misses - before
        return misses
    cfg_sets = np.array([c.num_sets for c in caches], dtype=np.int64)
    cfg_ways = np.array([c.ways for c in caches], dtype=np.int64)
    lengths = cfg_sets * cfg_ways
    cfg_off = np.zeros(len(caches), dtype=np.int64)
    np.cumsum(lengths[:-1], out=cfg_off[1:])
    flat_tags = np.concatenate([c.tags.ravel() for c in caches]) \
        if lengths.sum() else np.zeros(0, dtype=np.int64)
    flat_stamp = np.concatenate([c.stamp.ravel() for c in caches]) \
        if lengths.sum() else np.zeros(0, dtype=np.int64)
    counters = np.array([int(c._counter[0]) for c in caches], dtype=np.int64)
    lip = np.array([1 if c.policy == "LIP" else 0 for c in caches],
                   dtype=np.int64)
    kernel.multi_lru_run(addrs, len(caches), cfg_sets, cfg_ways, cfg_off,
                         flat_tags, flat_stamp, counters, lip, misses,
                         1 if caches[0].hashed_index else 0,
                         caches[0].index_seed)
    n = int(addrs.size)
    for i, cache in enumerate(caches):
        start, end = int(cfg_off[i]), int(cfg_off[i] + lengths[i])
        shape = (cache.num_sets, cache.ways)
        cache.tags[:] = flat_tags[start:end].reshape(shape)
        cache.stamp[:] = flat_stamp[start:end].reshape(shape)
        cache._counter[0] = counters[i]
        m = int(misses[i])
        cache.stats.accesses += n
        cache.stats.misses += m
        cache.stats.hits += n - m
    return misses
