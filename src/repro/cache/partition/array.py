"""Array-backed partitioned caches: the Talus/partition fast path.

This is the partitioned counterpart of
:class:`repro.cache.arraycache.ArraySetAssociativeCache`.  Way, set and
ideal partitioning all share one structural property the object model
enforces implicitly: partitions are *independent regions* — no line ever
moves between partitions and no replacement decision reads another
partition's state.  That independence is what makes a batched fast path
possible:

* each partition's state lives in numpy matrices (for way/set
  partitioning, slices of one flat per-line buffer, so a single native
  kernel call can replay an interleaved multi-partition access stream with
  per-line partition ownership and per-partition occupancy targets);
* a whole trace *with per-access partition ids* is replayed by
  :meth:`ArrayPartitionedCache.run_partitioned` in one pass — one
  ``part_lru_run``/``part_srrip_run`` kernel call for the recency/RRIP
  policies, or one existing per-region kernel call per partition for the
  rest (PDP and the seeded tier), which is equivalent exactly because the
  regions are independent;
* idealized (fully-associative) partitioning runs LRU through a one-shot
  stack-distance pass per partition (hit iff stack distance < allocation),
  which is bit-identical to a fully-associative
  :class:`~repro.cache.replacement.lru.LRUPolicy` region and avoids an
  O(allocation) scan per access.

Exactness matches the plain array cache: LRU, LIP and SRRIP (and PDP via
the per-region path) are bit-identical to the object-model schemes in
:mod:`repro.cache.partition`; BIP/DIP/BRRIP/DRRIP are deterministic per
seed but draw from splitmix64 streams, and their set-dueling state is
per-region rather than shared across a shadow pair, so they stay off the
``auto`` tier.

Allocations are granted with the *same* rounding helpers as the object
schemes (:func:`~repro.cache.partition.way.round_to_ways`,
:func:`~repro.cache.partition.setpart.round_to_sets`,
:func:`~repro.cache.partition.base.trim_line_allocations`).

Warm reallocation
-----------------
:meth:`ArrayPartitionedCache.reallocate` (which ``set_allocations`` routes
through) resizes partitions *in place*, warm: shrinking a partition evicts
per-policy victims exactly as the object schemes' ``set_capacity`` does
(oldest lines for the recency family, highest-RRPV-then-oldest for RRIP
with the same eviction-driven aging, oldest-unprotected for PDP, dropped
trailing sets for set partitioning), and growing only adds empty capacity
— no resident line ever moves between partitions.  This is what lets the
interval-based reconfiguration loop (:mod:`repro.sim.reconfigure`) run on
the array backend: ``run_chunk``/``reallocate`` alternate on a warm cache
with results bit-identical to the object model for the exact policy tier.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._native import get_kernel
from ..arraycache import ARRAY_POLICIES, ArraySetAssociativeCache
from ..cache import materialize_addresses
from ..replacement.lru import LRUPolicy
from .base import PartitionedCache, trim_line_allocations
from .setpart import round_to_sets
from .way import round_to_ways

__all__ = ["ArrayPartitionedCache", "ARRAY_SCHEMES"]

#: Partitioning schemes the array backend implements.
ARRAY_SCHEMES = ("ideal", "way", "set")

#: Policies replayed by the interleaved multi-region part kernels.
_PART_KERNEL_POLICIES = ("LRU", "LIP", "SRRIP")

_EMPTY = -1


class _FastIdealLRURegion:
    """A fully-associative LRU region with a stack-distance batch replay.

    The per-access path is the object model itself (an
    :class:`~repro.cache.replacement.lru.LRUPolicy`); the batch path
    replays the region's resident lines (LRU -> MRU) followed by the new
    accesses through the native ``stack_hist_run`` kernel and counts hits
    as accesses with stack distance below the allocation — which is the
    stack property, so results are bit-identical to the per-access path.
    """

    def __init__(self, capacity: int):
        self.capacity = int(capacity)
        self._policy = LRUPolicy(self.capacity)

    def access(self, address: int) -> bool:
        return self._policy.access(int(address))

    def set_capacity(self, capacity: int) -> None:
        """Warm-resize the region (shrinking evicts LRU overflow)."""
        self.capacity = int(capacity)
        self._policy.set_capacity(self.capacity)

    def occupancy(self) -> int:
        return len(self._policy)

    def _run_python(self, addrs: np.ndarray) -> int:
        misses = 0
        access = self._policy.access
        for a in addrs.tolist():
            if not access(a):
                misses += 1
        return misses

    def run_batch(self, addrs: np.ndarray) -> int:
        """Replay ``addrs``; returns the miss count and updates the state."""
        n = int(addrs.size)
        if n == 0:
            return 0
        if self.capacity == 0:
            return n
        kernel = get_kernel()
        if kernel is None:
            return self._run_python(addrs)
        resident = np.asarray(list(self._policy.resident()), dtype=np.int64)
        replay = np.concatenate([resident, addrs]) if resident.size else addrs
        hist = np.zeros(replay.size, dtype=np.int64)
        cold = kernel.stack_hist_run(replay, hist)
        if cold < 0:  # scratch allocation failed inside the kernel
            return self._run_python(addrs)
        hits = int(hist[:min(self.capacity, hist.size)].sum())
        # The resident-prefix accesses are all cold (distinct tags), so
        # every counted hit belongs to the new accesses.
        misses = n - hits
        # Final LRU state: the last `capacity` distinct addresses, most
        # recent at MRU.
        reversed_replay = replay[::-1]
        uniq, first = np.unique(reversed_replay, return_index=True)
        recent_first = uniq[np.argsort(first)][: self.capacity]
        policy = LRUPolicy(self.capacity)
        for tag in recent_first[::-1].tolist():
            policy.access(int(tag))
        self._policy = policy
        return misses


class ArrayPartitionedCache(PartitionedCache):
    """Way/set/ideal partitioning with numpy state and batched native replay.

    Parameters
    ----------
    scheme:
        One of :data:`ARRAY_SCHEMES` ("ideal", "way", "set").  Vantage and
        futility scaling couple partitions through shared victim state and
        stay object-only.
    capacity_lines, num_partitions, ways:
        As in :func:`repro.cache.partition.make_partitioned_cache`; the
        way/set geometries derive the set count exactly as the object
        factory does.
    policy:
        One of :data:`~repro.cache.arraycache.ARRAY_POLICIES` for way/set
        partitioning; idealized partitions are fully associative and
        support "LRU" only.
    hashed_index, index_seed:
        Set-index scheme of the way/set organizations (same hash as the
        object model).
    min_ways_per_partition:
        Way-partitioning coarsening floor (as in
        :class:`~repro.cache.partition.way.WayPartitionedCache`).
    policy_kwargs:
        Extra policy parameters (e.g. ``seed`` or ``epsilon``), forwarded
        to every region's :class:`ArraySetAssociativeCache`.
    """

    def __init__(self, scheme: str, capacity_lines: int, num_partitions: int,
                 policy: str = "LRU", ways: int = 16,
                 hashed_index: bool = False, index_seed: int = 0,
                 min_ways_per_partition: int = 1, **policy_kwargs):
        scheme = scheme.lower()
        if scheme not in ARRAY_SCHEMES:
            raise ValueError(
                f"the array backend does not implement partitioning scheme "
                f"{scheme!r} (supported: {ARRAY_SCHEMES}); use backend='object'")
        if capacity_lines <= 0:
            raise ValueError("capacity_lines must be positive")
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if scheme == "ideal":
            if policy != "LRU":
                raise ValueError(
                    f"array-backed ideal partitioning is fully associative "
                    f"and supports policy 'LRU' only, got {policy!r}; use "
                    f"backend='object' or scheme 'way'/'set'")
            capacity = capacity_lines
            num_sets = 0
        else:
            if policy not in ARRAY_POLICIES:
                raise ValueError(
                    f"array backend does not implement {policy!r}; "
                    f"supported: {ARRAY_POLICIES}")
            if scheme == "way":
                num_sets = max(1, capacity_lines // ways)
                if num_partitions > ways:
                    raise ValueError(
                        f"cannot way-partition {ways} ways into "
                        f"{num_partitions} partitions")
            else:
                num_sets = max(num_partitions, capacity_lines // ways)
            capacity = num_sets * ways
        super().__init__(capacity, num_partitions)
        self.scheme = scheme
        self.scheme_name = scheme
        self.policy = policy
        self.ways = ways
        self.num_sets = num_sets
        self.hashed_index = bool(hashed_index)
        self.index_seed = index_seed
        self.min_ways = min_ways_per_partition
        self._policy_kwargs = dict(policy_kwargs)
        if scheme == "way":
            self._way_alloc = round_to_ways(
                [self.capacity_lines / num_partitions] * num_partitions,
                num_sets, ways, self.min_ways)
            # The object model builds each partition's policy regions once,
            # at this equal-split allocation, and later reallocations only
            # change capacities — so capacity-derived policy parameters
            # (PDP's tuning) are frozen at these way counts.  Recorded so
            # the array regions can replicate that exactly.
            self._initial_ways = list(self._way_alloc)
        elif scheme == "set":
            base_sets = num_sets // num_partitions
            self._set_alloc = [base_sets] * num_partitions
            self._set_alloc[0] += num_sets - base_sets * num_partitions
        else:
            base = capacity // num_partitions
            self._line_alloc = [base] * num_partitions
        self._rebuild_regions()

    # ------------------------------------------------------------------ #
    # Region construction
    # ------------------------------------------------------------------ #
    def _region_geometries(self) -> list[tuple[int, int]]:
        """Per-partition (num_sets, ways) geometry.

        Zero-allocation way/set partitions keep a degenerate (but
        well-shaped) geometry — ``(num_sets, 0)`` / ``(0, ways)`` — so a
        warm-resized zero-capacity region's arrays still line up with the
        flat buffers; the kernels treat any zero dimension as all-miss.
        """
        if self.scheme == "way":
            return [(self.num_sets, w) for w in self._way_alloc]
        if self.scheme == "set":
            return [(s, self.ways) for s in self._set_alloc]
        return [(1, c) if c > 0 else (0, 0) for c in self._line_alloc]

    def _rebuild_regions(self) -> None:
        if self.scheme == "ideal":
            self._regions = [
                _FastIdealLRURegion(c) if c > 0 else None
                for c in self._line_alloc]
            self._flat_ready = False
            return
        self._regions = []
        for p, (sets_p, ways_p) in enumerate(self._region_geometries()):
            if sets_p <= 0 or ways_p <= 0:
                self._regions.append(None)
                continue
            kwargs = self._region_policy_kwargs(p, ways_p)
            self._regions.append(ArraySetAssociativeCache(
                sets_p, ways_p, policy=self.policy,
                hashed_index=self.hashed_index, index_seed=self.index_seed,
                **kwargs))
        self._link_flat_state()

    def _region_policy_kwargs(self, partition: int, ways_p: int) -> dict:
        """Policy kwargs for one region, replicating object-model quirks.

        Way-partitioned PDP regions in the object model keep the tuning
        parameters derived from their *construction-time* (equal-split)
        capacity even after reallocation shrinks or grows them — only the
        capacity itself changes.  The array regions are rebuilt at the
        final way count, so the construction-time derivations are passed
        explicitly to stay bit-identical.
        """
        kwargs = dict(self._policy_kwargs)
        if self.policy != "PDP" or self.scheme != "way":
            return kwargs
        w0 = max(self._initial_ways[partition], 1)
        interval = kwargs.get("recompute_interval")
        if interval is None:
            interval = max(128, 16 * w0)
        factor = kwargs.get("max_distance_factor", 3.0)
        max_candidate = max(1, int(factor * w0))
        initial = kwargs.get("initial_distance")
        if not initial:
            initial = max(1, self._initial_ways[partition])
        kwargs.update(
            recompute_interval=interval,
            initial_distance=initial,
            # Chosen so int(factor * ways_p) lands exactly on the object
            # model's construction-time candidate bound.
            max_distance_factor=(max_candidate + 0.5) / max(ways_p, 1),
        )
        return kwargs

    def _link_flat_state(self) -> None:
        """Re-point region matrices into one flat per-line buffer.

        Lines of all partitions live in a single tags/stamp (and, for the
        RRIP family, RRPV) buffer, each partition owning the slice
        described by the region geometry arrays — the layout the
        interleaved ``part_*_run`` kernels replay in one call.  The region
        objects keep views into the same memory, so the per-access Python
        path and the kernels stay interchangeable.

        Existing region state is *copied* into the (re-)built flat buffer,
        so re-linking after a warm :meth:`reallocate` preserves resident
        lines, recency and RRPVs; at construction the regions are freshly
        initialized, making the copy equivalent to the initial fill.
        """
        self._flat_ready = self.policy in _PART_KERNEL_POLICIES
        geoms = self._region_geometries()
        self._region_sets = np.array([g[0] for g in geoms], dtype=np.int64)
        self._region_ways = np.array([g[1] for g in geoms], dtype=np.int64)
        lengths = self._region_sets * self._region_ways
        self._region_off = np.zeros(self.num_partitions, dtype=np.int64)
        np.cumsum(lengths[:-1], out=self._region_off[1:])
        if not self._flat_ready:
            return
        total = int(lengths.sum())
        self._flat_tags = np.full(total, _EMPTY, dtype=np.int64)
        self._flat_stamp = np.zeros(total, dtype=np.int64)
        rrip = self.policy == "SRRIP"
        max_rrpv = 3
        self._flat_rrpv = None
        if rrip:
            for region in self._regions:
                if region is not None:
                    max_rrpv = region.max_rrpv
                    break
            self._flat_rrpv = np.full(total, max_rrpv, dtype=np.int64)
        self._max_rrpv = max_rrpv
        counter = int(getattr(self, "_shared_counter", np.zeros(1))[0])
        self._shared_counter = np.array([counter], dtype=np.int64)
        for p, region in enumerate(self._regions):
            if region is None:
                continue
            start = int(self._region_off[p])
            end = start + int(lengths[p])
            shape = (region.num_sets, region.ways)
            self._flat_tags[start:end] = region.tags.ravel()
            self._flat_stamp[start:end] = region.stamp.ravel()
            region.tags = self._flat_tags[start:end].reshape(shape)
            region.stamp = self._flat_stamp[start:end].reshape(shape)
            if rrip:
                self._flat_rrpv[start:end] = region.rrpv.ravel()
                region.rrpv = self._flat_rrpv[start:end].reshape(shape)
            region._counter = self._shared_counter

    # ------------------------------------------------------------------ #
    # PartitionedCache interface
    # ------------------------------------------------------------------ #
    def set_allocations(self, sizes: Sequence[float]) -> list[int]:
        return self.reallocate(sizes)

    def reallocate(self, sizes: Sequence[float]) -> list[int]:
        """Apply new capacity targets to *warm* partitions, in place.

        The warm-reallocation entry point of the resumable runtime (the
        object schemes' ``set_allocations`` semantics): shrinking a
        partition evicts its policy's victims (repeated ``evict_one``
        order — see :meth:`ArraySetAssociativeCache.resize_ways` /
        :meth:`~repro.cache.arraycache.ArraySetAssociativeCache.resize_sets`),
        growing adds empty capacity, and surviving lines never move between
        partitions.  Partitions resized to zero keep their region object
        (and its capacity-independent side state, e.g. PDP's reuse
        sampler), again matching the object model's zero-capacity regions.

        Returns the granted allocations, rounded with the same helpers the
        object schemes use.
        """
        sizes = self._check_requests(sizes)
        if self.scheme == "way":
            new = round_to_ways(sizes, self.num_sets, self.ways, self.min_ways)
            current = self._way_alloc
        elif self.scheme == "set":
            new = round_to_sets(sizes, self.num_sets, self.ways)
            current = self._set_alloc
        else:
            new = trim_line_allocations(sizes, self.capacity_lines)
            current = self._line_alloc
        if new == current:
            return self.granted_allocations()
        if self.scheme == "ideal":
            for p, lines in enumerate(new):
                region = self._regions[p]
                if region is None:
                    if lines > 0:
                        self._regions[p] = _FastIdealLRURegion(lines)
                else:
                    region.set_capacity(lines)
            self._line_alloc = new
            return self.granted_allocations()
        for p, region in enumerate(self._regions):
            if region is None:
                if new[p] <= 0:
                    continue
                geometry = ((self.num_sets, new[p]) if self.scheme == "way"
                            else (new[p], self.ways))
                kwargs = self._region_policy_kwargs(p, geometry[1])
                self._regions[p] = ArraySetAssociativeCache(
                    geometry[0], geometry[1], policy=self.policy,
                    hashed_index=self.hashed_index,
                    index_seed=self.index_seed, **kwargs)
            elif self.scheme == "way":
                region.resize_ways(new[p])
            else:
                region.resize_sets(new[p])
        if self.scheme == "way":
            self._way_alloc = new
        else:
            self._set_alloc = new
        self._link_flat_state()
        return self.granted_allocations()

    def granted_allocations(self) -> list[int]:
        if self.scheme == "way":
            return [w * self.num_sets for w in self._way_alloc]
        if self.scheme == "set":
            return [s * self.ways for s in self._set_alloc]
        return list(self._line_alloc)

    def access(self, address: int, partition: int) -> bool:
        self._check_partition(partition)
        region = self._regions[partition]
        if region is None:
            self.record(partition, False)
            return False
        hit = region.access(address)
        self.record(partition, hit)
        return hit

    def partition_occupancy(self, partition: int) -> int:
        self._check_partition(partition)
        region = self._regions[partition]
        return 0 if region is None else region.occupancy()

    # ------------------------------------------------------------------ #
    # Batched replay
    # ------------------------------------------------------------------ #
    def run_partitioned(self, trace, parts) -> tuple[np.ndarray, np.ndarray]:
        """Replay a trace with per-access partition ids in one batch.

        Parameters
        ----------
        trace:
            Addresses (any form :func:`materialize_addresses` accepts).
        parts:
            Partition id of each access (int array, same length).

        Returns
        -------
        (accesses, misses):
            Per-partition int64 access and miss counts of this replay.
            Per-partition statistics are updated as the per-access path
            would (counts are order-independent, so both paths agree).
        """
        addrs = materialize_addresses(trace)
        parts = np.ascontiguousarray(np.asarray(parts, dtype=np.int64))
        if addrs.shape != parts.shape or addrs.ndim != 1:
            raise ValueError("trace and parts must be 1-D and equally long")
        accesses = np.zeros(self.num_partitions, dtype=np.int64)
        misses = np.zeros(self.num_partitions, dtype=np.int64)
        if addrs.size == 0:
            return accesses, misses
        if int(parts.min()) < 0 or int(parts.max()) >= self.num_partitions:
            raise ValueError(
                f"partition ids must be in [0, {self.num_partitions})")
        accesses += np.bincount(parts, minlength=self.num_partitions)
        kernel = get_kernel()
        if self._flat_ready and kernel is not None:
            if bool(np.any(addrs == _EMPTY)):
                raise ValueError("address -1 is reserved as the empty-way "
                                 "sentinel; the array backend cannot cache it")
            self._run_part_kernel(kernel, addrs, parts, accesses, misses)
        else:
            for p in range(self.num_partitions):
                if accesses[p] == 0:
                    continue
                sub = addrs[parts == p]
                region = self._regions[p]
                if region is None:
                    misses[p] = sub.size
                elif isinstance(region, _FastIdealLRURegion):
                    misses[p] = region.run_batch(sub)
                else:
                    before = region.stats.misses
                    region.run(sub)
                    misses[p] = region.stats.misses - before
        for p in range(self.num_partitions):
            stats = self.partition_stats[p]
            a, m = int(accesses[p]), int(misses[p])
            stats.accesses += a
            stats.misses += m
            stats.hits += a - m
        return accesses, misses

    def run_chunk(self, trace, parts) -> tuple[np.ndarray, np.ndarray]:
        """Replay one chunk of a partition-tagged trace.

        The chunked entry point of the resumable runtime: identical to
        :meth:`run_partitioned` (state carries across calls, so chunked
        and one-shot replays are bit-identical at any boundary), named to
        make call sites that interleave replay chunks with
        :meth:`reallocate` read naturally.
        """
        return self.run_partitioned(trace, parts)

    def _run_part_kernel(self, kernel, addrs: np.ndarray, parts: np.ndarray,
                         accesses: np.ndarray, miss_out: np.ndarray) -> None:
        hashed = 1 if self.hashed_index else 0
        if self.policy == "SRRIP":
            result = kernel.part_srrip_run(
                addrs, parts, self.num_partitions, self._region_sets,
                self._region_ways, self._region_off, self._flat_tags,
                self._flat_rrpv, self._flat_stamp, self._shared_counter,
                self._max_rrpv, miss_out, hashed, self.index_seed)
        else:
            result = kernel.part_lru_run(
                addrs, parts, self.num_partitions, self._region_sets,
                self._region_ways, self._region_off, self._flat_tags,
                self._flat_stamp, self._shared_counter,
                1 if self.policy == "LIP" else 0, miss_out, hashed,
                self.index_seed)
        if result < 0:
            raise RuntimeError("native partitioned replay rejected the input")
        # Keep the per-region counters coherent with the split path.
        for p, region in enumerate(self._regions):
            if region is None:
                continue
            sub_accesses = int(accesses[p])
            sub_misses = int(miss_out[p])
            region.stats.accesses += sub_accesses
            region.stats.misses += sub_misses
            region.stats.hits += sub_accesses - sub_misses

    # ------------------------------------------------------------------ #
    def reset_stats(self) -> None:
        super().reset_stats()
        for region in self._regions:
            if isinstance(region, ArraySetAssociativeCache):
                region.reset_stats()

    def to_spec(self):
        """A :class:`~repro.cache.spec.PartitionSpec` rebuilding this cache."""
        from ..spec import PartitionSpec
        return PartitionSpec(
            scheme=self.scheme,
            capacity_lines=self.capacity_lines,
            num_partitions=self.num_partitions,
            policy=self.policy,
            ways=self.ways,
            backend="array",
            hashed_index=self.hashed_index,
            index_seed=self.index_seed,
            targets=tuple(float(g) for g in self.granted_allocations()),
            policy_kwargs=tuple(sorted(self._policy_kwargs.items())),
            scheme_kwargs=self._spec_scheme_kwargs(),
        )

    def _spec_scheme_kwargs(self) -> tuple:
        if self.scheme == "way" and self.min_ways != 1:
            return (("min_ways_per_partition", self.min_ways),)
        return ()

    def __repr__(self) -> str:
        return (f"ArrayPartitionedCache(scheme={self.scheme!r}, "
                f"capacity={self.capacity_lines} lines, "
                f"partitions={self.num_partitions}, policy={self.policy!r})")
