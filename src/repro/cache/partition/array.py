"""Array-backed partitioned caches: the Talus/partition fast path.

This is the partitioned counterpart of
:class:`repro.cache.arraycache.ArraySetAssociativeCache`.  Way, set and
ideal partitioning all share one structural property the object model
enforces implicitly: partitions are *independent regions* — no line ever
moves between partitions and no replacement decision reads another
partition's state.  That independence is what makes a batched fast path
possible:

* each partition's state lives in numpy matrices (for way/set
  partitioning, slices of one flat per-line buffer, so a single native
  kernel call can replay an interleaved multi-partition access stream with
  per-line partition ownership and per-partition occupancy targets);
* a whole trace *with per-access partition ids* is replayed by
  :meth:`ArrayPartitionedCache.run_partitioned` in one pass — one
  ``part_lru_run``/``part_srrip_run`` kernel call for the recency/RRIP
  policies, or one existing per-region kernel call per partition for the
  rest (PDP and the seeded tier), which is equivalent exactly because the
  regions are independent;
* idealized (fully-associative) partitioning runs LRU through a one-shot
  stack-distance pass per partition (hit iff stack distance < allocation),
  which is bit-identical to a fully-associative
  :class:`~repro.cache.replacement.lru.LRUPolicy` region and avoids an
  O(allocation) scan per access.

Exactness matches the plain array cache: LRU, LIP and SRRIP (and PDP via
the per-region path) are bit-identical to the object-model schemes in
:mod:`repro.cache.partition`; BIP/DIP/BRRIP/DRRIP/TA-DRRIP/Random are
deterministic per seed but draw from splitmix64 streams, with set-dueling
state per region rather than shared across a shadow pair — the same
seeded-deterministic tier as the plain array cache.  Idealized
(fully-associative) partitions run any array policy: LRU keeps the
stack-distance batch replay below, every other policy runs as a
single-set :class:`~repro.cache.arraycache.ArraySetAssociativeCache`
region whose one set *is* the fully-associative partition.

Allocations are granted with the *same* rounding helpers as the object
schemes (:func:`~repro.cache.partition.way.round_to_ways`,
:func:`~repro.cache.partition.setpart.round_to_sets`,
:func:`~repro.cache.partition.base.trim_line_allocations`).

Vantage is the one scheme whose partitions are *not* independent — every
managed partition demotes its victims into one shared unmanaged region —
so it gets its own organization, :class:`ArrayVantageCache`: a linked-list
node pool plus a (tag, region)-keyed hash table replayed by the
``vantage_run`` kernel.  Managed regions run any policy of the array
family (per-region RRPV/protecting-distance side state rides on the node
pool); the deterministic policies (LRU, LIP, SRRIP, PDP) are bit-identical
to the object :class:`~repro.cache.partition.vantage.
VantagePartitionedCache`, the randomized tier is seeded-deterministic.
Futility scaling is the only remaining object-only scheme (its
feedback-controlled insertion probabilities have no array twin — use
``backend="object"``).

Warm reallocation
-----------------
:meth:`ArrayPartitionedCache.reallocate` (which ``set_allocations`` routes
through) resizes partitions *in place*, warm: shrinking a partition evicts
per-policy victims exactly as the object schemes' ``set_capacity`` does
(oldest lines for the recency family, highest-RRPV-then-oldest for RRIP
with the same eviction-driven aging, oldest-unprotected for PDP, dropped
trailing sets for set partitioning), and growing only adds empty capacity
— no resident line ever moves between partitions.
:meth:`ArrayVantageCache.reallocate` does the same for Vantage, demoting
each trimmed partition's LRU victims into the unmanaged region.  This is
what lets the interval-based reconfiguration loops
(:mod:`repro.sim.reconfigure`, :mod:`repro.sim.multicore`) run on the
array backend: ``run_chunk``/``reallocate`` alternate on a warm cache
with results bit-identical to the object model for the exact policy tier.

State ownership in the resumable runtime
----------------------------------------
Every byte of simulation state is owned by the cache object as plain
numpy arrays and passed *into* each kernel call (nothing lives on the C
side between calls): the flat tags/stamp/RRPV buffers and shared access
counter here, the node pool / region lists / hash table of
:class:`ArrayVantageCache`, and the per-policy side state inside each
:class:`~repro.cache.arraycache.ArraySetAssociativeCache` region.  That
caller-ownership is the whole resumability contract — a replay can stop
at any access, be resumed by the pure-Python twin (or vice versa), be
interleaved with warm reallocation, or be pickled conceptually as "the
arrays", and the result never changes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._native import get_kernel
from ..arraycache import (ARRAY_POLICIES, ArraySetAssociativeCache,
                          _dueling_roles, _next_pow2, _splitmix64, _uniform01)
from ..cache import materialize_addresses
from ..hashing import _MASK64, GOLDEN64, mix64, seed_mix
from ..replacement.lru import LRUPolicy
from .base import PartitionedCache, trim_line_allocations
from .setpart import round_to_sets
from .vantage import vantage_managed_lines
from .way import round_to_ways

__all__ = ["ArrayPartitionedCache", "ArrayVantageCache", "ARRAY_SCHEMES"]

#: Partitioning schemes the array backend implements.
ARRAY_SCHEMES = ("ideal", "way", "set", "vantage")

#: Schemes built on independent set-associative regions (the
#: :class:`ArrayPartitionedCache` flat-buffer machinery); Vantage is
#: line-granular with a shared victim region and lives in
#: :class:`ArrayVantageCache` instead.
_SET_ASSOC_SCHEMES = ("ideal", "way", "set")

#: Policies replayed by the interleaved multi-region part kernels.
_PART_KERNEL_POLICIES = ("LRU", "LIP", "SRRIP")

#: Managed-region policy codes of the native Vantage kernel (must match
#: the ``VPOL_*`` enum in ``_sweepkernel.c``).
_VPOL = {"LRU": 0, "LIP": 1, "BIP": 2, "DIP": 3, "SRRIP": 4, "BRRIP": 5,
         "DRRIP": 6, "TA-DRRIP": 7, "PDP": 8, "Random": 9}

#: Vantage managed-region policies whose victims come from the RRPV scan.
_VT_RRIP = ("SRRIP", "BRRIP", "DRRIP", "TA-DRRIP")

_ROLE_FOLLOWER, _ROLE_LEADER_SRRIP, _ROLE_LEADER_BRRIP = 0, 1, 2

_EMPTY = -1


class _FastIdealLRURegion:
    """A fully-associative LRU region with a stack-distance batch replay.

    The per-access path is the object model itself (an
    :class:`~repro.cache.replacement.lru.LRUPolicy`); the batch path
    replays the region's resident lines (LRU -> MRU) followed by the new
    accesses through the native ``stack_hist_run`` kernel and counts hits
    as accesses with stack distance below the allocation — which is the
    stack property, so results are bit-identical to the per-access path.
    """

    def __init__(self, capacity: int):
        self.capacity = int(capacity)
        self._policy = LRUPolicy(self.capacity)

    def access(self, address: int) -> bool:
        return self._policy.access(int(address))

    def set_capacity(self, capacity: int) -> None:
        """Warm-resize the region (shrinking evicts LRU overflow)."""
        self.capacity = int(capacity)
        self._policy.set_capacity(self.capacity)

    def occupancy(self) -> int:
        return len(self._policy)

    def _run_python(self, addrs: np.ndarray) -> int:
        misses = 0
        access = self._policy.access
        for a in addrs.tolist():
            if not access(a):
                misses += 1
        return misses

    def run_batch(self, addrs: np.ndarray) -> int:
        """Replay ``addrs``; returns the miss count and updates the state."""
        n = int(addrs.size)
        if n == 0:
            return 0
        if self.capacity == 0:
            return n
        kernel = get_kernel()
        if kernel is None:
            return self._run_python(addrs)
        resident = np.asarray(list(self._policy.resident()), dtype=np.int64)
        replay = np.concatenate([resident, addrs]) if resident.size else addrs
        hist = np.zeros(replay.size, dtype=np.int64)
        cold = kernel.stack_hist_run(replay, hist)
        if cold < 0:  # scratch allocation failed inside the kernel
            return self._run_python(addrs)
        hits = int(hist[:min(self.capacity, hist.size)].sum())
        # The resident-prefix accesses are all cold (distinct tags), so
        # every counted hit belongs to the new accesses.
        misses = n - hits
        # Final LRU state: the last `capacity` distinct addresses, most
        # recent at MRU.
        reversed_replay = replay[::-1]
        uniq, first = np.unique(reversed_replay, return_index=True)
        recent_first = uniq[np.argsort(first)][: self.capacity]
        policy = LRUPolicy(self.capacity)
        for tag in recent_first[::-1].tolist():
            policy.access(int(tag))
        self._policy = policy
        return misses


class ArrayPartitionedCache(PartitionedCache):
    """Way/set/ideal partitioning with numpy state and batched native replay.

    Parameters
    ----------
    scheme:
        One of the set-associative-region schemes ("ideal", "way",
        "set").  Vantage couples partitions through its shared unmanaged
        region and is implemented by :class:`ArrayVantageCache`; futility
        scaling stays object-only.
    capacity_lines, num_partitions, ways:
        As in :func:`repro.cache.partition.make_partitioned_cache`; the
        way/set geometries derive the set count exactly as the object
        factory does.
    policy:
        One of :data:`~repro.cache.arraycache.ARRAY_POLICIES` except the
        offline "Belady" (which has no partitioned organization).
        Idealized partitions are fully associative: LRU rides the
        stack-distance batch replay, every other policy a single-set
        array region.
    hashed_index, index_seed:
        Set-index scheme of the way/set organizations (same hash as the
        object model).
    min_ways_per_partition:
        Way-partitioning coarsening floor (as in
        :class:`~repro.cache.partition.way.WayPartitionedCache`).
    policy_kwargs:
        Extra policy parameters (e.g. ``seed`` or ``epsilon``), forwarded
        to every region's :class:`ArraySetAssociativeCache`.
    """

    def __init__(self, scheme: str, capacity_lines: int, num_partitions: int,
                 policy: str = "LRU", ways: int = 16,
                 hashed_index: bool = False, index_seed: int = 0,
                 min_ways_per_partition: int = 1, **policy_kwargs):
        scheme = scheme.lower()
        if scheme not in _SET_ASSOC_SCHEMES:
            raise ValueError(
                f"ArrayPartitionedCache implements the set-associative-region "
                f"schemes {_SET_ASSOC_SCHEMES}, not {scheme!r}; Vantage has "
                f"its own array organization (ArrayVantageCache), and "
                f"futility scaling is object-only")
        if capacity_lines <= 0:
            raise ValueError("capacity_lines must be positive")
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if policy == "Belady":
            raise ValueError(
                "Belady is offline and replays one attached trace; it has "
                "no partitioned organization — supported partition "
                f"policies: {tuple(p for p in ARRAY_POLICIES if p != 'Belady')}")
        if policy not in ARRAY_POLICIES:
            raise ValueError(
                f"array backend does not implement {policy!r}; "
                f"supported: {ARRAY_POLICIES}")
        if scheme == "ideal":
            capacity = capacity_lines
            num_sets = 0
        else:
            if scheme == "way":
                num_sets = max(1, capacity_lines // ways)
                if num_partitions > ways:
                    raise ValueError(
                        f"cannot way-partition {ways} ways into "
                        f"{num_partitions} partitions")
            else:
                num_sets = max(num_partitions, capacity_lines // ways)
            capacity = num_sets * ways
        super().__init__(capacity, num_partitions)
        self.scheme = scheme
        self.scheme_name = scheme
        self.policy = policy
        self.ways = ways
        self.num_sets = num_sets
        self.hashed_index = bool(hashed_index)
        self.index_seed = index_seed
        self.min_ways = min_ways_per_partition
        self._policy_kwargs = dict(policy_kwargs)
        if scheme == "way":
            self._way_alloc = round_to_ways(
                [self.capacity_lines / num_partitions] * num_partitions,
                num_sets, ways, self.min_ways)
            # The object model builds each partition's policy regions once,
            # at this equal-split allocation, and later reallocations only
            # change capacities — so capacity-derived policy parameters
            # (PDP's tuning) are frozen at these way counts.  Recorded so
            # the array regions can replicate that exactly.
            self._initial_ways = list(self._way_alloc)
        elif scheme == "set":
            base_sets = num_sets // num_partitions
            self._set_alloc = [base_sets] * num_partitions
            self._set_alloc[0] += num_sets - base_sets * num_partitions
        else:
            base = capacity // num_partitions
            self._line_alloc = [base] * num_partitions
            # As with way partitioning above: the object model derives
            # capacity-dependent policy parameters (PDP's tuning) once, at
            # the construction-time equal split.
            self._initial_lines = list(self._line_alloc)
        self._rebuild_regions()

    # ------------------------------------------------------------------ #
    # Region construction
    # ------------------------------------------------------------------ #
    def _region_geometries(self) -> list[tuple[int, int]]:
        """Per-partition (num_sets, ways) geometry.

        Zero-allocation way/set partitions keep a degenerate (but
        well-shaped) geometry — ``(num_sets, 0)`` / ``(0, ways)`` — so a
        warm-resized zero-capacity region's arrays still line up with the
        flat buffers; the kernels treat any zero dimension as all-miss.
        """
        if self.scheme == "way":
            return [(self.num_sets, w) for w in self._way_alloc]
        if self.scheme == "set":
            return [(s, self.ways) for s in self._set_alloc]
        return [(1, c) if c > 0 else (0, 0) for c in self._line_alloc]

    def _rebuild_regions(self) -> None:
        if self.scheme == "ideal":
            self._regions = [self._make_ideal_region(p, c)
                             for p, c in enumerate(self._line_alloc)]
            self._flat_ready = False
            return
        self._regions = []
        for p, (sets_p, ways_p) in enumerate(self._region_geometries()):
            if sets_p <= 0 or ways_p <= 0:
                self._regions.append(None)
                continue
            kwargs = self._region_policy_kwargs(p, ways_p)
            self._regions.append(ArraySetAssociativeCache(
                sets_p, ways_p, policy=self.policy,
                hashed_index=self.hashed_index, index_seed=self.index_seed,
                **kwargs))
        self._link_flat_state()

    def _make_ideal_region(self, partition: int, lines: int):
        """One fully-associative ideal region of ``lines`` capacity.

        LRU keeps the stack-distance batch replay of
        :class:`_FastIdealLRURegion`; every other policy runs as a
        single-set :class:`~repro.cache.arraycache.
        ArraySetAssociativeCache` whose one set *is* the
        fully-associative region.
        """
        if lines <= 0:
            return None
        if self.policy == "LRU":
            return _FastIdealLRURegion(lines)
        kwargs = self._region_policy_kwargs(partition, lines)
        return ArraySetAssociativeCache(1, lines, policy=self.policy,
                                        **kwargs)

    def _region_policy_kwargs(self, partition: int, ways_p: int) -> dict:
        """Policy kwargs for one region, replicating object-model quirks.

        Way-partitioned (and idealized) PDP regions in the object model
        keep the tuning parameters derived from their *construction-time*
        (equal-split) capacity even after reallocation shrinks or grows
        them — only the capacity itself changes.  The array regions are
        rebuilt at the final way count, so the construction-time
        derivations are passed explicitly to stay bit-identical.
        """
        kwargs = dict(self._policy_kwargs)
        if self.policy != "PDP" or self.scheme == "set":
            return kwargs
        construction = (self._initial_ways if self.scheme == "way"
                        else self._initial_lines)[partition]
        w0 = max(construction, 1)
        interval = kwargs.get("recompute_interval")
        if interval is None:
            interval = max(128, 16 * w0)
        factor = kwargs.get("max_distance_factor", 3.0)
        max_candidate = max(1, int(factor * w0))
        initial = kwargs.get("initial_distance")
        if not initial:
            initial = max(1, construction)
        kwargs.update(
            recompute_interval=interval,
            initial_distance=initial,
            # Chosen so int(factor * ways_p) lands exactly on the object
            # model's construction-time candidate bound.
            max_distance_factor=(max_candidate + 0.5) / max(ways_p, 1),
        )
        return kwargs

    def _link_flat_state(self) -> None:
        """Re-point region matrices into one flat per-line buffer.

        Lines of all partitions live in a single tags/stamp (and, for the
        RRIP family, RRPV) buffer, each partition owning the slice
        described by the region geometry arrays — the layout the
        interleaved ``part_*_run`` kernels replay in one call.  The region
        objects keep views into the same memory, so the per-access Python
        path and the kernels stay interchangeable.

        Existing region state is *copied* into the (re-)built flat buffer,
        so re-linking after a warm :meth:`reallocate` preserves resident
        lines, recency and RRPVs; at construction the regions are freshly
        initialized, making the copy equivalent to the initial fill.
        """
        self._flat_ready = self.policy in _PART_KERNEL_POLICIES
        geoms = self._region_geometries()
        self._region_sets = np.array([g[0] for g in geoms], dtype=np.int64)
        self._region_ways = np.array([g[1] for g in geoms], dtype=np.int64)
        lengths = self._region_sets * self._region_ways
        self._region_off = np.zeros(self.num_partitions, dtype=np.int64)
        np.cumsum(lengths[:-1], out=self._region_off[1:])
        if not self._flat_ready:
            return
        total = int(lengths.sum())
        self._flat_tags = np.full(total, _EMPTY, dtype=np.int64)
        self._flat_stamp = np.zeros(total, dtype=np.int64)
        rrip = self.policy == "SRRIP"
        max_rrpv = 3
        self._flat_rrpv = None
        if rrip:
            for region in self._regions:
                if region is not None:
                    max_rrpv = region.max_rrpv
                    break
            self._flat_rrpv = np.full(total, max_rrpv, dtype=np.int64)
        self._max_rrpv = max_rrpv
        counter = int(getattr(self, "_shared_counter", np.zeros(1))[0])
        self._shared_counter = np.array([counter], dtype=np.int64)
        for p, region in enumerate(self._regions):
            if region is None:
                continue
            start = int(self._region_off[p])
            end = start + int(lengths[p])
            shape = (region.num_sets, region.ways)
            self._flat_tags[start:end] = region.tags.ravel()
            self._flat_stamp[start:end] = region.stamp.ravel()
            region.tags = self._flat_tags[start:end].reshape(shape)
            region.stamp = self._flat_stamp[start:end].reshape(shape)
            if rrip:
                self._flat_rrpv[start:end] = region.rrpv.ravel()
                region.rrpv = self._flat_rrpv[start:end].reshape(shape)
            region._counter = self._shared_counter

    # ------------------------------------------------------------------ #
    # PartitionedCache interface
    # ------------------------------------------------------------------ #
    def set_allocations(self, sizes: Sequence[float]) -> list[int]:
        return self.reallocate(sizes)

    def reallocate(self, sizes: Sequence[float]) -> list[int]:
        """Apply new capacity targets to *warm* partitions, in place.

        The warm-reallocation entry point of the resumable runtime (the
        object schemes' ``set_allocations`` semantics): shrinking a
        partition evicts its policy's victims (repeated ``evict_one``
        order — see :meth:`ArraySetAssociativeCache.resize_ways` /
        :meth:`~repro.cache.arraycache.ArraySetAssociativeCache.resize_sets`),
        growing adds empty capacity, and surviving lines never move between
        partitions.  Partitions resized to zero keep their region object
        (and its capacity-independent side state, e.g. PDP's reuse
        sampler), again matching the object model's zero-capacity regions.

        Returns the granted allocations, rounded with the same helpers the
        object schemes use.
        """
        sizes = self._check_requests(sizes)
        if self.scheme == "way":
            new = round_to_ways(sizes, self.num_sets, self.ways, self.min_ways)
            current = self._way_alloc
        elif self.scheme == "set":
            new = round_to_sets(sizes, self.num_sets, self.ways)
            current = self._set_alloc
        else:
            new = trim_line_allocations(sizes, self.capacity_lines)
            current = self._line_alloc
        if new == current:
            return self.granted_allocations()
        if self.scheme == "ideal":
            for p, lines in enumerate(new):
                region = self._regions[p]
                if region is None:
                    self._regions[p] = self._make_ideal_region(p, lines)
                elif isinstance(region, _FastIdealLRURegion):
                    region.set_capacity(lines)
                else:
                    region.resize_ways(lines)
            self._line_alloc = new
            return self.granted_allocations()
        for p, region in enumerate(self._regions):
            if region is None:
                if new[p] <= 0:
                    continue
                geometry = ((self.num_sets, new[p]) if self.scheme == "way"
                            else (new[p], self.ways))
                kwargs = self._region_policy_kwargs(p, geometry[1])
                self._regions[p] = ArraySetAssociativeCache(
                    geometry[0], geometry[1], policy=self.policy,
                    hashed_index=self.hashed_index,
                    index_seed=self.index_seed, **kwargs)
            elif self.scheme == "way":
                region.resize_ways(new[p])
            else:
                region.resize_sets(new[p])
        if self.scheme == "way":
            self._way_alloc = new
        else:
            self._set_alloc = new
        self._link_flat_state()
        return self.granted_allocations()

    def granted_allocations(self) -> list[int]:
        if self.scheme == "way":
            return [w * self.num_sets for w in self._way_alloc]
        if self.scheme == "set":
            return [s * self.ways for s in self._set_alloc]
        return list(self._line_alloc)

    def access(self, address: int, partition: int) -> bool:
        self._check_partition(partition)
        region = self._regions[partition]
        if region is None:
            self.record(partition, False)
            return False
        hit = region.access(address)
        self.record(partition, hit)
        return hit

    def partition_occupancy(self, partition: int) -> int:
        self._check_partition(partition)
        region = self._regions[partition]
        return 0 if region is None else region.occupancy()

    # ------------------------------------------------------------------ #
    # Batched replay
    # ------------------------------------------------------------------ #
    def run_partitioned(self, trace, parts) -> tuple[np.ndarray, np.ndarray]:
        """Replay a trace with per-access partition ids in one batch.

        Parameters
        ----------
        trace:
            Addresses (any form :func:`materialize_addresses` accepts).
        parts:
            Partition id of each access (int array, same length).

        Returns
        -------
        (accesses, misses):
            Per-partition int64 access and miss counts of this replay.
            Per-partition statistics are updated as the per-access path
            would (counts are order-independent, so both paths agree).
        """
        addrs = materialize_addresses(trace)
        parts = np.ascontiguousarray(np.asarray(parts, dtype=np.int64))
        if addrs.shape != parts.shape or addrs.ndim != 1:
            raise ValueError("trace and parts must be 1-D and equally long")
        accesses = np.zeros(self.num_partitions, dtype=np.int64)
        misses = np.zeros(self.num_partitions, dtype=np.int64)
        if addrs.size == 0:
            return accesses, misses
        if int(parts.min()) < 0 or int(parts.max()) >= self.num_partitions:
            raise ValueError(
                f"partition ids must be in [0, {self.num_partitions})")
        accesses += np.bincount(parts, minlength=self.num_partitions)
        kernel = get_kernel()
        if self._flat_ready and kernel is not None:
            if bool(np.any(addrs == _EMPTY)):
                raise ValueError("address -1 is reserved as the empty-way "
                                 "sentinel; the array backend cannot cache it")
            self._run_part_kernel(kernel, addrs, parts, accesses, misses)
        else:
            for p in range(self.num_partitions):
                if accesses[p] == 0:
                    continue
                sub = addrs[parts == p]
                region = self._regions[p]
                if region is None:
                    misses[p] = sub.size
                elif isinstance(region, _FastIdealLRURegion):
                    misses[p] = region.run_batch(sub)
                else:
                    before = region.stats.misses
                    region.run(sub)
                    misses[p] = region.stats.misses - before
        for p in range(self.num_partitions):
            stats = self.partition_stats[p]
            a, m = int(accesses[p]), int(misses[p])
            stats.accesses += a
            stats.misses += m
            stats.hits += a - m
        return accesses, misses

    def run_chunk(self, trace, parts) -> tuple[np.ndarray, np.ndarray]:
        """Replay one chunk of a partition-tagged trace.

        The chunked entry point of the resumable runtime: identical to
        :meth:`run_partitioned` (state carries across calls, so chunked
        and one-shot replays are bit-identical at any boundary), named to
        make call sites that interleave replay chunks with
        :meth:`reallocate` read naturally.
        """
        return self.run_partitioned(trace, parts)

    def _run_part_kernel(self, kernel, addrs: np.ndarray, parts: np.ndarray,
                         accesses: np.ndarray, miss_out: np.ndarray) -> None:
        hashed = 1 if self.hashed_index else 0
        if self.policy == "SRRIP":
            result = kernel.part_srrip_run(
                addrs, parts, self.num_partitions, self._region_sets,
                self._region_ways, self._region_off, self._flat_tags,
                self._flat_rrpv, self._flat_stamp, self._shared_counter,
                self._max_rrpv, miss_out, hashed, self.index_seed)
        else:
            result = kernel.part_lru_run(
                addrs, parts, self.num_partitions, self._region_sets,
                self._region_ways, self._region_off, self._flat_tags,
                self._flat_stamp, self._shared_counter,
                1 if self.policy == "LIP" else 0, miss_out, hashed,
                self.index_seed)
        if result < 0:
            raise RuntimeError("native partitioned replay rejected the input")
        # Keep the per-region counters coherent with the split path.
        for p, region in enumerate(self._regions):
            if region is None:
                continue
            sub_accesses = int(accesses[p])
            sub_misses = int(miss_out[p])
            region.stats.accesses += sub_accesses
            region.stats.misses += sub_misses
            region.stats.hits += sub_accesses - sub_misses

    def replay_task(self, trace, parts):
        """One batchable :class:`~repro.cache.threadbatch.ReplayTask`
        replaying a partition-tagged trace (the threaded twin of
        :meth:`run_partitioned`; per-partition misses land in the task's
        ``misses`` array on both paths)."""
        from .._native import KIND_PART_LRU, KIND_PART_SRRIP
        from ..threadbatch import ReplayTask, i64_ptr
        addrs = materialize_addresses(trace)
        parts = np.ascontiguousarray(np.asarray(parts, dtype=np.int64))
        if addrs.shape != parts.shape or addrs.ndim != 1:
            raise ValueError("trace and parts must be 1-D and equally long")
        miss_out = np.zeros(self.num_partitions, dtype=np.int64)
        if addrs.size:
            if int(parts.min()) < 0 or int(parts.max()) >= self.num_partitions:
                raise ValueError(
                    f"partition ids must be in [0, {self.num_partitions})")
        accesses = np.bincount(parts, minlength=self.num_partitions) \
            .astype(np.int64)
        kernel = get_kernel()
        if (not self._flat_ready or kernel is None or not kernel.has_batch
                or addrs.size == 0):
            def fallback() -> None:
                _, misses = self.run_partitioned(addrs, parts)
                miss_out[:] += np.asarray(misses, dtype=np.int64)
            return ReplayTask(fallback=fallback, misses=miss_out)
        if bool(np.any(addrs == _EMPTY)):
            raise ValueError("address -1 is reserved as the empty-way "
                             "sentinel; the array backend cannot cache it")
        fields = {
            "kind": (KIND_PART_SRRIP if self.policy == "SRRIP"
                     else KIND_PART_LRU),
            "addrs": i64_ptr(addrs), "n": int(addrs.size),
            "parts": i64_ptr(parts),
            "num_regions": self.num_partitions,
            "region_sets": i64_ptr(self._region_sets),
            "region_ways": i64_ptr(self._region_ways),
            "region_off": i64_ptr(self._region_off),
            "tags": i64_ptr(self._flat_tags),
            "stamp": i64_ptr(self._flat_stamp),
            "counter": i64_ptr(self._shared_counter),
            "miss_out": i64_ptr(miss_out),
            "hashed": 1 if self.hashed_index else 0,
            "index_seed": self.index_seed,
        }
        if self.policy == "SRRIP":
            fields.update(rrpv=i64_ptr(self._flat_rrpv),
                          max_rrpv=self._max_rrpv)
        else:
            fields.update(lip=1 if self.policy == "LIP" else 0)

        def commit(_total: int) -> None:
            # The same two folds run_partitioned performs around
            # _run_part_kernel: per-region stats, then partition stats.
            for p, region in enumerate(self._regions):
                if region is None:
                    continue
                a, m = int(accesses[p]), int(miss_out[p])
                region.stats.accesses += a
                region.stats.misses += m
                region.stats.hits += a - m
            for p in range(self.num_partitions):
                stats = self.partition_stats[p]
                a, m = int(accesses[p]), int(miss_out[p])
                stats.accesses += a
                stats.misses += m
                stats.hits += a - m

        return ReplayTask(fields=fields, refs=(addrs, parts, miss_out),
                          commit=commit, misses=miss_out)

    # ------------------------------------------------------------------ #
    def reset_stats(self) -> None:
        super().reset_stats()
        for region in self._regions:
            if isinstance(region, ArraySetAssociativeCache):
                region.reset_stats()

    def snapshot(self, position: int = 0, meta: dict | None = None):
        """Capture the warm state as a picklable, content-hashable
        :class:`~repro.sampling.checkpoint.CacheCheckpoint`."""
        from ...sampling.checkpoint import snapshot
        return snapshot(self, position=position, meta=meta)

    def restore(self, checkpoint) -> None:
        """Rewind this cache to ``checkpoint``'s state, in place."""
        from ...sampling.checkpoint import restore_into
        restore_into(self, checkpoint)

    def to_spec(self):
        """A :class:`~repro.cache.spec.PartitionSpec` rebuilding this cache."""
        from ..spec import PartitionSpec
        return PartitionSpec(
            scheme=self.scheme,
            capacity_lines=self.capacity_lines,
            num_partitions=self.num_partitions,
            policy=self.policy,
            ways=self.ways,
            backend="array",
            hashed_index=self.hashed_index,
            index_seed=self.index_seed,
            targets=tuple(float(g) for g in self.granted_allocations()),
            policy_kwargs=tuple(sorted(self._policy_kwargs.items())),
            scheme_kwargs=self._spec_scheme_kwargs(),
        )

    def _spec_scheme_kwargs(self) -> tuple:
        if self.scheme == "way" and self.min_ways != 1:
            return (("min_ways_per_partition", self.min_ways),)
        return ()

    def __repr__(self) -> str:
        return (f"ArrayPartitionedCache(scheme={self.scheme!r}, "
                f"capacity={self.capacity_lines} lines, "
                f"partitions={self.num_partitions}, policy={self.policy!r})")


class ArrayVantageCache(PartitionedCache):
    """Vantage partitioning with caller-owned array state and native replay.

    The object model (:class:`~repro.cache.partition.vantage.
    VantagePartitionedCache`) couples its partitions through a shared
    *unmanaged* victim region, which is why Vantage could not ride the
    independent-region machinery of :class:`ArrayPartitionedCache`.  This
    organization instead keeps the whole cache — per-partition
    fully-associative LRU lists over the managed ~90 % plus the shared
    insertion-ordered unmanaged region — as an intrusive doubly-linked
    node pool and one open-addressing hash table, all in caller-owned
    numpy arrays:

    * ``node_tag``/``node_prev``/``node_next`` — the node pool
      (``capacity + 1`` entries; free nodes chained through ``node_next``);
    * ``head``/``tail``/``occ`` — per-region list anchors (region
      ``num_partitions`` is the unmanaged region); head is the LRU/oldest
      end;
    * ``ht_tag``/``ht_reg``/``ht_node`` — a linear-probing table keyed by
      ``(tag, region)`` with backward-shift deletion (the same tag may be
      resident in several regions at once, as with per-region dicts).

    Managed regions run any replacement policy of the array family (the
    object model's ``policy_factory``): the per-node side state — RRPV
    bucket + bucket-entrant stamp for the RRIP family, protection
    deadline for PDP — lives in two pool-parallel arrays
    (``node_aux``/``node_stamp``), and the per-region PDP
    clock/distance/reuse-sampler state in per-partition rows.  The
    deterministic policies (LRU, LIP, SRRIP, PDP) are **bit-identical**
    to the object model; BIP/DIP/BRRIP/DRRIP/TA-DRRIP/Random are
    seeded-deterministic, drawing from one shared splitmix64 stream with
    per-region duel roles (TA-DRRIP duels per partition: in a
    partitioned cache the partition *is* the thread).  Belady is offline
    and has no partitioned organization.

    A whole partition-tagged trace is replayed by one ``vantage_run``
    kernel call (:meth:`run_partitioned`); without a compiler the same
    algorithm runs in pure Python over the same arrays, so the two paths
    are interchangeable mid-stream.  Warm reallocation
    (:meth:`reallocate` / ``set_allocations``) trims regions in place
    through ``vantage_realloc``, demoting each region's per-policy
    victims into the unmanaged region exactly as the object scheme does
    — which is what puts the default ``scheme="vantage"``
    reconfiguration loops on the fast path.
    """

    scheme_name = "vantage"

    def __init__(self, capacity_lines: int, num_partitions: int,
                 policy: str = "LRU", unmanaged_fraction: float = 0.10,
                 m_bits: int = 2, epsilon: float = 1.0 / 32.0,
                 seed: int = 0, recompute_interval: int | None = None,
                 max_distance_factor: float = 3.0,
                 initial_distance: int | None = None):
        if policy == "Belady":
            raise ValueError(
                "Belady is offline and replays one attached trace; it has "
                "no partitioned organization — supported Vantage region "
                f"policies: {tuple(_VPOL)}")
        if policy not in _VPOL:
            raise ValueError(
                f"array-backed Vantage partitioning does not implement "
                f"{policy!r}; supported region policies: {tuple(_VPOL)}")
        if not 0.0 <= unmanaged_fraction < 1.0:
            raise ValueError("unmanaged_fraction must be in [0, 1)")
        if m_bits < 1 or m_bits > 8:
            raise ValueError("m_bits must be in [1, 8]")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        super().__init__(capacity_lines, num_partitions)
        self.policy = policy
        self._pol = _VPOL[policy]
        self.m_bits = m_bits
        self.max_rrpv = (1 << m_bits) - 1
        self.epsilon = float(epsilon)
        self.seed = seed
        self.unmanaged_fraction = float(unmanaged_fraction)
        pk = {}
        if m_bits != 2:
            pk["m_bits"] = m_bits
        if epsilon != 1.0 / 32.0:
            pk["epsilon"] = float(epsilon)
        if seed != 0:
            pk["seed"] = seed
        if recompute_interval is not None:
            pk["recompute_interval"] = recompute_interval
        if max_distance_factor != 3.0:
            pk["max_distance_factor"] = max_distance_factor
        if initial_distance is not None:
            pk["initial_distance"] = initial_distance
        self._policy_kwargs = pk
        self._managed = vantage_managed_lines(capacity_lines,
                                              unmanaged_fraction)
        self._unm_cap = capacity_lines - self._managed
        base = self._managed // num_partitions
        self._caps = np.full(num_partitions, base, dtype=np.int64)
        # Node pool: capacity + 1 entries (one spare absorbs the transient
        # overshoot of insert-then-trim demotion into the unmanaged region).
        pool = capacity_lines + 1
        self._node_tag = np.zeros(pool, dtype=np.int64)
        self._node_prev = np.full(pool, -1, dtype=np.int64)
        nxt = np.arange(1, pool + 1, dtype=np.int64)
        nxt[-1] = -1
        self._node_next = nxt
        self._head = np.full(num_partitions + 1, -1, dtype=np.int64)
        self._tail = np.full(num_partitions + 1, -1, dtype=np.int64)
        self._occ = np.zeros(num_partitions + 1, dtype=np.int64)
        self._free = np.zeros(1, dtype=np.int64)
        tsize = 64
        while tsize < 2 * pool:
            tsize <<= 1
        self._ht_tag = np.zeros(tsize, dtype=np.int64)
        self._ht_reg = np.zeros(tsize, dtype=np.int64)
        self._ht_node = np.full(tsize, -1, dtype=np.int64)
        # Per-policy side state.  node_aux/node_stamp parallel the node
        # pool (RRPV + bucket-entrant stamp for the RRIP family, the
        # protection deadline for PDP); the RNG/PSEL/roles state mirrors
        # ArraySetAssociativeCache with one region per partition.
        self._counter = np.zeros(1, dtype=np.int64)
        self._rng_state = np.array([mix64(seed)], dtype=np.uint64)
        self._psel_max = (1 << 10) - 1
        if policy == "TA-DRRIP":
            # Thread-aware dueling: each partition is a thread, so PSEL
            # counters are per partition with address-hash constituencies.
            self._psel = np.full(num_partitions, self._psel_max // 2,
                                 dtype=np.int64)
            self._leader_levels = max(1, int(round(1024 / 32.0)))
        else:
            self._psel = np.array([self._psel_max // 2], dtype=np.int64)
            self._leader_levels = max(1, int(round(1024 / 16.0)))
        self._roles = (_dueling_roles(num_partitions)
                       if policy in ("DIP", "DRRIP")
                       else np.zeros(num_partitions, dtype=np.int64))
        need_nodes = policy in _VT_RRIP or policy == "PDP"
        aux_len = pool if need_nodes else 1
        self._node_aux = np.zeros(aux_len, dtype=np.int64)
        self._node_stamp = np.zeros(aux_len, dtype=np.int64)
        if policy == "PDP":
            self._init_pdp_state(base, recompute_interval,
                                 max_distance_factor, initial_distance)
        elif (recompute_interval is not None or max_distance_factor != 3.0
              or initial_distance is not None):
            raise ValueError("recompute_interval/max_distance_factor/"
                             "initial_distance apply to PDP only")
        else:
            # Unused policy side state still crosses the ctypes boundary
            # (ndpointer arguments reject None), as size-1 dummies the
            # kernel never dereferences for this policy.
            self._hist_stride = 1
            self._ls_size = 1
            self._pdp_clock = np.zeros(1, dtype=np.int64)
            self._pdp_dp = np.zeros(1, dtype=np.int64)
            self._pdp_samples = np.zeros(1, dtype=np.int64)
            self._pdp_hist = np.zeros(1, dtype=np.int64)
            self._vp_maxdp = np.zeros(1, dtype=np.int64)
            self._vp_interval = np.ones(1, dtype=np.int64)
            self._vp_clear = np.zeros(1, dtype=np.int64)
            self._ls_tags = np.full(1, _EMPTY, dtype=np.int64)
            self._ls_clocks = np.zeros(1, dtype=np.int64)
            self._ls_count = np.zeros(1, dtype=np.int64)

    def _init_pdp_state(self, base: int, recompute_interval: int | None,
                        max_distance_factor: float,
                        initial_distance: int | None) -> None:
        """Per-region PDP state, tuned at the construction-time equal
        split (``base`` lines per partition) exactly as the object model
        freezes :class:`~repro.cache.replacement.pdp.PDPPolicy`'s
        capacity-derived parameters."""
        cap0 = max(int(base), 1)
        if recompute_interval is None:
            recompute_interval = max(128, 16 * cap0)
        if recompute_interval < 16:
            raise ValueError("recompute_interval must be >= 16")
        if max_distance_factor <= 0:
            raise ValueError("max_distance_factor must be positive")
        max_dp = max(1, int(max_distance_factor * cap0))
        initial_dp = (initial_distance if initial_distance
                      else max(1, int(base)))
        clear = 8 * max(int(base), 64)
        n = self.num_partitions
        self._hist_stride = max_dp + 1
        self._ls_size = _next_pow2(2 * (clear + recompute_interval + 1))
        self._pdp_clock = np.zeros(n, dtype=np.int64)
        self._pdp_dp = np.full(n, initial_dp, dtype=np.int64)
        self._pdp_samples = np.zeros(n, dtype=np.int64)
        self._pdp_hist = np.zeros((n, self._hist_stride), dtype=np.int64)
        self._vp_maxdp = np.full(n, max_dp, dtype=np.int64)
        self._vp_interval = np.full(n, recompute_interval, dtype=np.int64)
        self._vp_clear = np.full(n, clear, dtype=np.int64)
        self._ls_tags = np.full((n, self._ls_size), _EMPTY, dtype=np.int64)
        self._ls_clocks = np.zeros((n, self._ls_size), dtype=np.int64)
        self._ls_count = np.zeros(n, dtype=np.int64)

    # ------------------------------------------------------------------ #
    @property
    def partitionable_lines(self) -> int:
        return self._managed

    @property
    def unmanaged_capacity(self) -> int:
        """Capacity of the unmanaged region in lines."""
        return self._unm_cap

    def unmanaged_occupancy(self) -> int:
        """Number of lines currently resident in the unmanaged region."""
        return int(self._occ[self.num_partitions])

    def partition_occupancy(self, partition: int) -> int:
        self._check_partition(partition)
        return int(self._occ[partition])

    def granted_allocations(self) -> list[int]:
        return [int(c) for c in self._caps]

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #
    def set_allocations(self, sizes: Sequence[float]) -> list[int]:
        return self.reallocate(sizes)

    def reallocate(self, sizes: Sequence[float]) -> list[int]:
        """Apply new managed-region targets to the *warm* cache, in place.

        Shrinking a partition demotes its LRU victims (in eviction order)
        into the unmanaged region — the object scheme's
        ``set_capacity``-then-demote semantics — and growing only raises
        the budget; resident lines never move between managed partitions.
        """
        sizes = self._check_requests(sizes)
        granted = trim_line_allocations(sizes, self._managed)
        new_caps = np.asarray(granted, dtype=np.int64)
        kernel = get_kernel()
        if kernel is not None:
            result = kernel.vantage_realloc(
                self.num_partitions, new_caps, self._unm_cap, self._pol,
                self.max_rrpv, self._rng_state, self._node_aux,
                self._node_stamp, self._pdp_clock, self._pdp_dp,
                self._ht_tag, self._ht_reg, self._ht_node, self._node_tag,
                self._node_prev, self._node_next, self._head, self._tail,
                self._occ, self._free)
            if result < 0:
                raise RuntimeError("native Vantage reallocation failed")
        else:
            self._realloc_python(granted)
        self._caps = new_caps
        return list(granted)

    # ------------------------------------------------------------------ #
    # Access paths
    # ------------------------------------------------------------------ #
    def access(self, address: int, partition: int) -> bool:
        self._check_partition(partition)
        accesses, misses = self._replay(
            np.asarray([address], dtype=np.int64),
            np.asarray([partition], dtype=np.int64))
        hit = int(misses[partition]) == 0
        self.record(partition, hit)
        return hit

    def run_partitioned(self, trace, parts) -> tuple[np.ndarray, np.ndarray]:
        """Replay a partition-tagged trace in one batch (see
        :meth:`ArrayPartitionedCache.run_partitioned`)."""
        addrs = materialize_addresses(trace)
        parts = np.ascontiguousarray(np.asarray(parts, dtype=np.int64))
        if addrs.shape != parts.shape or addrs.ndim != 1:
            raise ValueError("trace and parts must be 1-D and equally long")
        if addrs.size and (int(parts.min()) < 0
                           or int(parts.max()) >= self.num_partitions):
            raise ValueError(
                f"partition ids must be in [0, {self.num_partitions})")
        accesses, misses = self._replay(addrs, parts)
        for p in range(self.num_partitions):
            stats = self.partition_stats[p]
            a, m = int(accesses[p]), int(misses[p])
            stats.accesses += a
            stats.misses += m
            stats.hits += a - m
        return accesses, misses

    def run_chunk(self, trace, parts) -> tuple[np.ndarray, np.ndarray]:
        """Replay one chunk (state carries across calls; chunked and
        one-shot replays are bit-identical at any boundary)."""
        return self.run_partitioned(trace, parts)

    def replay_task(self, trace, parts):
        """One batchable :class:`~repro.cache.threadbatch.ReplayTask`
        replaying a partition-tagged trace through the Vantage kernel
        (threaded twin of :meth:`run_partitioned`)."""
        from .._native import KIND_VANTAGE
        from ..threadbatch import ReplayTask, i64_ptr, u64_ptr
        addrs = materialize_addresses(trace)
        parts = np.ascontiguousarray(np.asarray(parts, dtype=np.int64))
        if addrs.shape != parts.shape or addrs.ndim != 1:
            raise ValueError("trace and parts must be 1-D and equally long")
        if addrs.size and (int(parts.min()) < 0
                           or int(parts.max()) >= self.num_partitions):
            raise ValueError(
                f"partition ids must be in [0, {self.num_partitions})")
        miss_out = np.zeros(self.num_partitions, dtype=np.int64)
        accesses = np.bincount(parts, minlength=self.num_partitions) \
            .astype(np.int64)
        kernel = get_kernel()
        if kernel is None or not kernel.has_batch or addrs.size == 0:
            def fallback() -> None:
                _, misses = self.run_partitioned(addrs, parts)
                miss_out[:] += np.asarray(misses, dtype=np.int64)
            return ReplayTask(fallback=fallback, misses=miss_out)
        fields = {
            "kind": KIND_VANTAGE,
            "addrs": i64_ptr(addrs), "n": int(addrs.size),
            "parts": i64_ptr(parts),
            "num_regions": self.num_partitions,
            "caps": i64_ptr(self._caps), "unm_cap": self._unm_cap,
            "mode": self._pol, "max_rrpv": self.max_rrpv,
            "epsilon": self.epsilon,
            "counter": i64_ptr(self._counter),
            "rng_state": u64_ptr(self._rng_state),
            "roles": i64_ptr(self._roles), "psel": i64_ptr(self._psel),
            "psel_max": self._psel_max,
            "leader_levels": self._leader_levels,
            "node_aux": i64_ptr(self._node_aux),
            "node_stamp": i64_ptr(self._node_stamp),
            "clock": i64_ptr(self._pdp_clock), "dp": i64_ptr(self._pdp_dp),
            "sample_count": i64_ptr(self._pdp_samples),
            "hist": i64_ptr(self._pdp_hist),
            "hist_stride": self._hist_stride,
            "vp_maxdp": i64_ptr(self._vp_maxdp),
            "vp_interval": i64_ptr(self._vp_interval),
            "vp_clear": i64_ptr(self._vp_clear),
            "ls_tags": i64_ptr(self._ls_tags),
            "ls_clocks": i64_ptr(self._ls_clocks),
            "ls_count": i64_ptr(self._ls_count),
            "ls_size": self._ls_size,
            "ht_tag": i64_ptr(self._ht_tag),
            "ht_reg": i64_ptr(self._ht_reg),
            "ht_node": i64_ptr(self._ht_node),
            "tsize": int(self._ht_tag.size),
            "node_tag": i64_ptr(self._node_tag),
            "node_prev": i64_ptr(self._node_prev),
            "node_next": i64_ptr(self._node_next),
            "head": i64_ptr(self._head), "tail": i64_ptr(self._tail),
            "occ": i64_ptr(self._occ), "free_io": i64_ptr(self._free),
            "miss_out": i64_ptr(miss_out),
        }

        def commit(_total: int) -> None:
            for p in range(self.num_partitions):
                stats = self.partition_stats[p]
                a, m = int(accesses[p]), int(miss_out[p])
                stats.accesses += a
                stats.misses += m
                stats.hits += a - m

        return ReplayTask(fields=fields, refs=(addrs, parts, miss_out),
                          commit=commit, misses=miss_out)

    def _replay(self, addrs: np.ndarray,
                parts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Advance the state by a validated batch; returns per-partition
        (accesses, misses) of this batch without touching the stats."""
        accesses = np.zeros(self.num_partitions, dtype=np.int64)
        misses = np.zeros(self.num_partitions, dtype=np.int64)
        if addrs.size == 0:
            return accesses, misses
        accesses += np.bincount(parts, minlength=self.num_partitions)
        kernel = get_kernel()
        if kernel is not None:
            result = kernel.vantage_run(
                addrs, parts, self.num_partitions, self._caps, self._unm_cap,
                self._pol, self.max_rrpv, self.epsilon, self._counter,
                self._rng_state, self._roles, self._psel, self._psel_max,
                self._leader_levels, self._node_aux, self._node_stamp,
                self._pdp_clock, self._pdp_dp, self._pdp_samples,
                self._pdp_hist, self._hist_stride, self._vp_maxdp,
                self._vp_interval, self._vp_clear, self._ls_tags,
                self._ls_clocks, self._ls_count, self._ls_size,
                self._ht_tag, self._ht_reg, self._ht_node, self._node_tag,
                self._node_prev, self._node_next, self._head, self._tail,
                self._occ, self._free, misses)
            if result < 0:
                raise RuntimeError("native Vantage replay rejected the input")
        else:
            self._replay_python(addrs, parts, misses)
        return accesses, misses

    # ------------------------------------------------------------------ #
    # Pure-Python twin of the kernel (same arrays, same algorithm)
    # ------------------------------------------------------------------ #
    def _state_lists(self):
        """The array state as plain lists (fast pure-Python mutation)."""
        return (self._ht_tag.tolist(), self._ht_reg.tolist(),
                self._ht_node.tolist(), self._node_tag.tolist(),
                self._node_prev.tolist(), self._node_next.tolist(),
                self._head.tolist(), self._tail.tolist(), self._occ.tolist(),
                self._node_aux.tolist(), self._node_stamp.tolist())

    def _write_back(self, state) -> None:
        (ht_tag, ht_reg, ht_node, node_tag, node_prev, node_next,
         head, tail, occ, node_aux, node_stamp) = state
        self._ht_tag[:] = ht_tag
        self._ht_reg[:] = ht_reg
        self._ht_node[:] = ht_node
        self._node_tag[:] = node_tag
        self._node_prev[:] = node_prev
        self._node_next[:] = node_next
        self._head[:] = head
        self._tail[:] = tail
        self._occ[:] = occ
        self._node_aux[:] = node_aux
        self._node_stamp[:] = node_stamp

    def _pdp_recompute(self, p: int) -> None:
        """Mirror PDPPolicy._recompute_dp / select_protecting_distance
        for managed region ``p`` (same arithmetic as the kernel's
        ``pdp_recompute``)."""
        hist = self._pdp_hist[p]
        max_dp = int(self._vp_maxdp[p])
        total = int(self._pdp_samples[p])
        if np.any(hist[1:] != 0) and total > 0:
            best_dp, best_score = max_dp, -1.0
            hits = weighted = 0
            for dp in range(1, max_dp + 1):
                hits += int(hist[dp])
                weighted += dp * int(hist[dp])
                misses = total - hits
                occupancy = weighted + dp * misses
                if occupancy <= 0:
                    continue
                score = hits / occupancy
                if score > best_score:
                    best_score = score
                    best_dp = dp
            self._pdp_dp[p] = best_dp
        # Decay the sample so the policy adapts to phase changes.
        decayed = np.where(hist > 1, (hist + 1) // 2, 0)
        decayed[0] = 0
        self._pdp_hist[p] = decayed
        if self._ls_count[p] > int(self._vp_clear[p]):
            self._ls_tags[p].fill(_EMPTY)
            self._ls_count[p] = 0

    def _make_ops(self, state, free_box):
        """Closure bundle mirroring the C helpers over list state.

        The list/hash-table structure lives in plain lists (``state``);
        the small policy side state (RNG, PSEL, PDP rows, shared stamp
        counter) is mutated on the numpy arrays directly, exactly as the
        kernel does.
        """
        (ht_tag, ht_reg, ht_node, node_tag, node_prev, node_next,
         head, tail, occ, node_aux, node_stamp) = state
        tmask = len(ht_node) - 1
        unm = self.num_partitions
        unm_cap = self._unm_cap
        pol = self.policy
        max_rrpv = self.max_rrpv
        epsilon = self.epsilon
        rng = self._rng_state
        psel = self._psel
        psel_max = self._psel_max
        roles = self._roles
        leader_levels = self._leader_levels
        counter = self._counter

        def home(tag, region):
            return mix64((tag & _MASK64) ^ seed_mix(region + 1)) & tmask

        def lookup(tag, region):
            slot = home(tag, region)
            while ht_node[slot] >= 0:
                if ht_tag[slot] == tag and ht_reg[slot] == region:
                    return slot
                slot = (slot + 1) & tmask
            return -1

        def insert(tag, region, node):
            slot = home(tag, region)
            while ht_node[slot] >= 0:
                slot = (slot + 1) & tmask
            ht_tag[slot] = tag
            ht_reg[slot] = region
            ht_node[slot] = node

        def delete(slot):
            ht_node[slot] = -1
            hole = slot
            i = (slot + 1) & tmask
            while ht_node[i] >= 0:
                h = home(ht_tag[i], ht_reg[i])
                if ((i - h) & tmask) >= ((i - hole) & tmask):
                    ht_tag[hole] = ht_tag[i]
                    ht_reg[hole] = ht_reg[i]
                    ht_node[hole] = ht_node[i]
                    ht_node[i] = -1
                    hole = i
                i = (i + 1) & tmask

        def list_remove(node, region):
            prev, nxt = node_prev[node], node_next[node]
            if prev >= 0:
                node_next[prev] = nxt
            else:
                head[region] = nxt
            if nxt >= 0:
                node_prev[nxt] = prev
            else:
                tail[region] = prev
            occ[region] -= 1

        def list_push(node, region):
            last = tail[region]
            node_prev[node] = last
            node_next[node] = -1
            if last >= 0:
                node_next[last] = node
            else:
                head[region] = node
            tail[region] = node
            occ[region] += 1

        def list_push_front(node, region):
            first = head[region]
            node_next[node] = first
            node_prev[node] = -1
            if first >= 0:
                node_prev[first] = node
            else:
                tail[region] = node
            head[region] = node
            occ[region] += 1

        def pdp_record(p, a):
            # vt_pdp_record: advance region p's clock, sample the bounded
            # reuse distance, periodically recompute dp.
            self._pdp_clock[p] += 1
            clk = int(self._pdp_clock[p])
            tags = self._ls_tags[p]
            clocks = self._ls_clocks[p]
            lmask = self._ls_size - 1
            slot = mix64(a) & lmask
            while tags[slot] != _EMPTY and tags[slot] != a:
                slot = (slot + 1) & lmask
            if tags[slot] == a:
                d = clk - int(clocks[slot])
                if d <= int(self._vp_maxdp[p]):
                    self._pdp_hist[p, d] += 1
            else:
                tags[slot] = a
                self._ls_count[p] += 1
            clocks[slot] = clk
            self._pdp_samples[p] += 1
            if self._pdp_samples[p] % int(self._vp_interval[p]) == 0:
                self._pdp_recompute(p)

        def duel(role, idx):
            # Saturating PSEL update shared by DIP/DRRIP/TA-DRRIP.
            if role == _ROLE_LEADER_SRRIP and psel[idx] < psel_max:
                psel[idx] += 1
            elif role == _ROLE_LEADER_BRRIP and psel[idx] > 0:
                psel[idx] -= 1

        def evict_one(p):
            # vt_evict_one: select (and for RRIP, age) but do not unlink.
            if occ[p] <= 0:
                return -1
            if pol in _VT_RRIP:
                maxp = -1
                m = head[p]
                while m >= 0:
                    if node_aux[m] > maxp:
                        maxp = node_aux[m]
                    m = node_next[m]
                victim, best = -1, None
                m = head[p]
                while m >= 0:
                    if node_aux[m] == maxp and (best is None
                                                or node_stamp[m] < best):
                        best = node_stamp[m]
                        victim = m
                    m = node_next[m]
                d = max_rrpv - maxp
                if d > 0:
                    m = head[p]
                    while m >= 0:
                        node_aux[m] += d
                        m = node_next[m]
                return victim
            if pol == "PDP":
                # Oldest unprotected line, else the oldest line (no clock
                # advance here).
                clk = int(self._pdp_clock[p])
                m = head[p]
                while m >= 0:
                    if node_aux[m] <= clk:
                        return m
                    m = node_next[m]
                return head[p]
            if pol == "Random":
                k = _splitmix64(rng) % occ[p]
                m = head[p]
                while k:
                    m = node_next[m]
                    k -= 1
                return m
            # Recency family: the list head is the LRU line.
            return head[p]

        def policy_hit(p, node, a):
            # vt_policy_hit: region.access(tag) on a resident line.
            if pol in _VT_RRIP:
                node_aux[node] = 0
                counter[0] += 1
                node_stamp[node] = int(counter[0])
            elif pol == "PDP":
                pdp_record(p, a)
                node_aux[node] = int(self._pdp_clock[p] + self._pdp_dp[p])
                list_remove(node, p)
                list_push(node, p)
            elif pol == "Random":
                pass
            else:
                list_remove(node, p)
                list_push(node, p)

        def policy_insert(p, node, a):
            # vt_policy_insert: metadata, duel bookkeeping, insert position.
            if pol == "LIP":
                list_push_front(node, p)
            elif pol == "BIP":
                if _uniform01(rng) >= epsilon:
                    list_push_front(node, p)
                else:
                    list_push(node, p)
            elif pol == "DIP":
                role = int(roles[p])
                duel(role, 0)
                bip = (role == _ROLE_LEADER_BRRIP
                       or (role == _ROLE_FOLLOWER
                           and int(psel[0]) > psel_max // 2))
                if bip and _uniform01(rng) >= epsilon:
                    list_push_front(node, p)
                else:
                    list_push(node, p)
            elif pol in _VT_RRIP:
                ins = max_rrpv - 1
                bimodal = False
                if pol == "BRRIP":
                    bimodal = True
                elif pol == "DRRIP":
                    role = int(roles[p])
                    duel(role, 0)
                    bimodal = (role == _ROLE_LEADER_BRRIP
                               or (role == _ROLE_FOLLOWER
                                   and int(psel[0]) > psel_max // 2))
                elif pol == "TA-DRRIP":
                    bucket = (a * GOLDEN64) & 1023
                    if bucket < leader_levels:
                        role = _ROLE_LEADER_SRRIP
                    elif bucket < 2 * leader_levels:
                        role = _ROLE_LEADER_BRRIP
                    else:
                        role = _ROLE_FOLLOWER
                    duel(role, p)
                    bimodal = (role == _ROLE_LEADER_BRRIP
                               or (role == _ROLE_FOLLOWER
                                   and int(psel[p]) > psel_max // 2))
                if bimodal and _uniform01(rng) >= epsilon:
                    ins = max_rrpv
                node_aux[node] = ins
                counter[0] += 1
                node_stamp[node] = int(counter[0])
                list_push(node, p)
            elif pol == "PDP":
                pdp_record(p, a)
                node_aux[node] = int(self._pdp_clock[p] + self._pdp_dp[p])
                list_push(node, p)
            else:
                # LRU / Random: MRU (insertion-order) end.
                list_push(node, p)

        def release(node):
            node_next[node] = free_box[0]
            free_box[0] = node

        def demote(tag):
            if unm_cap == 0:
                return
            slot = lookup(tag, unm)
            if slot >= 0:
                node = ht_node[slot]
                list_remove(node, unm)
                list_push(node, unm)
            else:
                node = free_box[0]
                free_box[0] = node_next[node]
                node_tag[node] = tag
                list_push(node, unm)
                insert(tag, unm, node)
            while occ[unm] > unm_cap:
                victim = head[unm]
                delete(lookup(node_tag[victim], unm))
                list_remove(victim, unm)
                release(victim)

        def evict_and_demote(p):
            # vt_evict_and_demote: unlink the chosen victim, demote it.
            victim = evict_one(p)
            if victim < 0:
                return
            vtag = node_tag[victim]
            delete(lookup(vtag, p))
            list_remove(victim, p)
            release(victim)
            demote(vtag)

        def insert_managed(a, p, cap):
            if cap == 0:
                demote(a)
                return
            if occ[p] >= cap:
                evict_and_demote(p)
            node = free_box[0]
            free_box[0] = node_next[node]
            node_tag[node] = a
            insert(a, p, node)
            policy_insert(p, node, a)

        return (lookup, delete, list_remove, list_push, release, demote,
                insert_managed, evict_and_demote, policy_hit, ht_node)

    def _replay_python(self, addrs: np.ndarray, parts: np.ndarray,
                       miss_out: np.ndarray) -> None:
        state = self._state_lists()
        free_box = [int(self._free[0])]
        (lookup, delete, list_remove, list_push, release, demote,
         insert_managed, evict_and_demote, policy_hit,
         ht_node) = self._make_ops(state, free_box)
        caps = self._caps.tolist()
        unm = self.num_partitions
        misses = [0] * self.num_partitions
        for a, p in zip(addrs.tolist(), parts.tolist()):
            slot = lookup(a, p)
            if slot >= 0:
                policy_hit(p, ht_node[slot], a)
                continue
            uslot = lookup(a, unm)
            if uslot >= 0:
                node = ht_node[uslot]
                list_remove(node, unm)
                delete(uslot)
                release(node)
                insert_managed(a, p, caps[p])
                continue
            misses[p] += 1
            insert_managed(a, p, caps[p])
        self._write_back(state)
        self._free[0] = free_box[0]
        miss_out += np.asarray(misses, dtype=np.int64)

    def _realloc_python(self, new_caps: Sequence[int]) -> None:
        state = self._state_lists()
        free_box = [int(self._free[0])]
        ops = self._make_ops(state, free_box)
        evict_and_demote = ops[7]
        occ = state[8]
        for p in range(self.num_partitions):
            while occ[p] > new_caps[p]:
                evict_and_demote(p)
        self._write_back(state)
        self._free[0] = free_box[0]

    # ------------------------------------------------------------------ #
    def snapshot(self, position: int = 0, meta: dict | None = None):
        """Capture the warm state as a picklable, content-hashable
        :class:`~repro.sampling.checkpoint.CacheCheckpoint`."""
        from ...sampling.checkpoint import snapshot
        return snapshot(self, position=position, meta=meta)

    def restore(self, checkpoint) -> None:
        """Rewind this cache to ``checkpoint``'s state, in place."""
        from ...sampling.checkpoint import restore_into
        restore_into(self, checkpoint)

    def to_spec(self):
        """A :class:`~repro.cache.spec.PartitionSpec` rebuilding this cache."""
        from ..spec import PartitionSpec
        return PartitionSpec(
            scheme="vantage",
            capacity_lines=self.capacity_lines,
            num_partitions=self.num_partitions,
            policy=self.policy,
            backend="array",
            targets=tuple(float(g) for g in self.granted_allocations()),
            policy_kwargs=tuple(sorted(self._policy_kwargs.items())),
            scheme_kwargs=self._spec_scheme_kwargs(),
        )

    def _spec_scheme_kwargs(self) -> tuple:
        if self.unmanaged_fraction != 0.10:
            return (("unmanaged_fraction", self.unmanaged_fraction),)
        return ()

    def __repr__(self) -> str:
        return (f"ArrayVantageCache(capacity={self.capacity_lines} lines, "
                f"partitions={self.num_partitions}, "
                f"unmanaged={self._unm_cap} lines)")
