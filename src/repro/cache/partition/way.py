"""Way partitioning: each partition owns an integer number of ways per set.

Way partitioning is the simplest and most widely deployed scheme (e.g. Intel
CAT), but it is coarse: allocations are multiples of ``num_sets`` lines, and
small partitions lose associativity.  The paper notes (Sec. VI-B) that this
coarseness can violate Assumption 2, which is why Talus recomputes its
sampling rate from the *granted* (coarsened) allocation — behaviour our
:class:`~repro.cache.talus_cache.TalusCache` reproduces via
:meth:`granted_allocations`.
"""

from __future__ import annotations

from typing import Sequence

from ..cache import lru_factory
from ..hashing import mix64
from ..replacement.base import EvictionPolicy, PolicyFactory
from .base import PartitionedCache

__all__ = ["WayPartitionedCache", "round_to_ways"]


def round_to_ways(sizes: Sequence[float], num_sets: int, ways: int,
                  min_ways: int = 1) -> list[int]:
    """Convert per-partition line requests to integer ways (sum <= ways).

    Partitions with a nonzero request get at least ``min_ways``; leftover
    ways go to the largest fractional remainders.  Shared by the object and
    array backends so both grant identical way allocations.
    """
    requested_ways = [s / num_sets for s in sizes]
    granted = [int(w) for w in requested_ways]
    for i, req in enumerate(requested_ways):
        if req > 0 and granted[i] < min_ways:
            granted[i] = min_ways
    # Distribute leftover ways by largest fractional remainder.
    remainders = sorted(range(len(sizes)),
                        key=lambda i: requested_ways[i] - int(requested_ways[i]),
                        reverse=True)
    spare = ways - sum(granted)
    idx = 0
    while spare > 0 and remainders:
        granted[remainders[idx % len(remainders)]] += 1
        spare -= 1
        idx += 1
    while sum(granted) > ways:
        # Shrink the largest allocation (never below min_ways if nonzero).
        order = sorted(range(len(granted)), key=lambda i: granted[i],
                       reverse=True)
        for i in order:
            if granted[i] > min_ways or (granted[i] > 0 and sum(granted) - granted[i] >= ways):
                granted[i] -= 1
                break
        else:
            granted[order[0]] -= 1
    return granted


class WayPartitionedCache(PartitionedCache):
    """A set-associative cache whose ways are divided among partitions.

    Each (set, partition) pair is an independent region with capacity equal
    to the partition's way allocation; this models strict way partitioning
    with no way sharing.

    Parameters
    ----------
    num_sets, ways:
        Geometry of the underlying cache (capacity = ``num_sets * ways``).
    num_partitions:
        Number of software-visible partitions.
    policy_factory:
        ``(region_index, capacity) -> EvictionPolicy``; default LRU.
    min_ways_per_partition:
        Partitions with a nonzero request are granted at least this many
        ways (real systems cannot give a core zero ways without effectively
        disabling its cache).
    """

    scheme_name = "way"

    def __init__(self, num_sets: int, ways: int, num_partitions: int,
                 policy_factory: PolicyFactory = lru_factory,
                 index_seed: int = 0,
                 min_ways_per_partition: int = 1,
                 hashed_index: bool = False):
        if num_sets <= 0 or ways <= 0:
            raise ValueError("num_sets and ways must be positive")
        if num_partitions > ways:
            raise ValueError(
                f"cannot way-partition {ways} ways into {num_partitions} partitions")
        super().__init__(num_sets * ways, num_partitions)
        self.num_sets = num_sets
        self.ways = ways
        self.index_seed = index_seed
        self.hashed_index = hashed_index
        self.min_ways = min_ways_per_partition
        self._policy_factory = policy_factory
        start_ways = self._round_to_ways([self.capacity_lines / num_partitions]
                                         * num_partitions)
        self._way_alloc = start_ways
        # regions[partition][set]
        self._regions: list[list[EvictionPolicy]] = [
            [policy_factory(p * num_sets + s, start_ways[p])
             for s in range(num_sets)]
            for p in range(num_partitions)
        ]

    # ------------------------------------------------------------------ #
    def _round_to_ways(self, sizes: Sequence[float]) -> list[int]:
        """Convert line requests to integer ways per partition (sum <= ways)."""
        return round_to_ways(sizes, self.num_sets, self.ways, self.min_ways)

    def set_allocations(self, sizes: Sequence[float]) -> list[int]:
        sizes = self._check_requests(sizes)
        way_alloc = self._round_to_ways(sizes)
        for p, ways_p in enumerate(way_alloc):
            for region in self._regions[p]:
                region.set_capacity(ways_p)
        self._way_alloc = way_alloc
        return self.granted_allocations()

    def granted_allocations(self) -> list[int]:
        return [w * self.num_sets for w in self._way_alloc]

    def way_allocations(self) -> list[int]:
        """Current per-partition way counts."""
        return list(self._way_alloc)

    def set_index(self, address: int) -> int:
        """Set index of a line address (modulo by default, hashed if requested)."""
        if self.num_sets == 1:
            return 0
        if self.hashed_index:
            return mix64(address ^ (self.index_seed * 0x9E3779B97F4A7C15)) % self.num_sets
        return address % self.num_sets

    def access(self, address: int, partition: int) -> bool:
        self._check_partition(partition)
        region = self._regions[partition][self.set_index(address)]
        hit = region.access(address)
        self.record(partition, hit)
        return hit

    def partition_occupancy(self, partition: int) -> int:
        self._check_partition(partition)
        return sum(len(region) for region in self._regions[partition])

    def _first_policy(self):
        return self._regions[0][0] if self._regions and self._regions[0] else None

    def _spec_scheme_kwargs(self) -> tuple:
        if self.min_ways != 1:
            return (("min_ways_per_partition", self.min_ways),)
        return ()
