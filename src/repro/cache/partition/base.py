"""Partitioned-cache interface.

A partitioned cache exposes ``num_partitions`` software-visible partitions,
each with a capacity allocation expressed in lines.  Accesses are tagged with
the partition they belong to (in the paper: the core, thread, or — for Talus
— the shadow partition chosen by the sampling function).

Concrete schemes differ in how strictly and at what granularity they enforce
allocations:

* :class:`~repro.cache.partition.ideal.IdealPartitionedCache` — exact line
  granularity, fully associative (the paper's "idealized partitioning").
* :class:`~repro.cache.partition.way.WayPartitionedCache` — allocations
  rounded to whole ways per set.
* :class:`~repro.cache.partition.setpart.SetPartitionedCache` — allocations
  rounded to whole sets.
* :class:`~repro.cache.partition.vantage.VantagePartitionedCache` — line
  granularity over 90 % of the cache, with a shared unmanaged region.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from ..cache import CacheStats

__all__ = ["PartitionedCache"]


class PartitionedCache(ABC):
    """Abstract base class for partitioned cache organizations."""

    def __init__(self, capacity_lines: int, num_partitions: int):
        if capacity_lines <= 0:
            raise ValueError("capacity_lines must be positive")
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.capacity_lines = int(capacity_lines)
        self.num_partitions = int(num_partitions)
        self.partition_stats = [CacheStats() for _ in range(num_partitions)]

    # ------------------------------------------------------------------ #
    # Mandatory interface
    # ------------------------------------------------------------------ #
    @abstractmethod
    def set_allocations(self, sizes: Sequence[float]) -> list[int]:
        """Set per-partition capacity targets (in lines).

        ``sizes`` may be fractional (planners work in real numbers); the
        scheme rounds them to whatever granularity it supports and returns
        the *granted* allocations in lines.  The sum of requests must not
        exceed the scheme's partitionable capacity.
        """

    @abstractmethod
    def access(self, address: int, partition: int) -> bool:
        """Perform one access on behalf of ``partition``; True on a hit."""

    @abstractmethod
    def granted_allocations(self) -> list[int]:
        """Current per-partition allocations in lines (post-rounding)."""

    @abstractmethod
    def partition_occupancy(self, partition: int) -> int:
        """Number of lines currently resident for ``partition``."""

    # ------------------------------------------------------------------ #
    # Shared behaviour
    # ------------------------------------------------------------------ #
    @property
    def partitionable_lines(self) -> int:
        """Lines the scheme can actually divide among partitions.

        Equal to the full capacity except for schemes with an unmanaged
        region (Vantage).
        """
        return self.capacity_lines

    def _check_partition(self, partition: int) -> None:
        if not 0 <= partition < self.num_partitions:
            raise ValueError(
                f"partition must be in [0, {self.num_partitions}), got {partition}")

    def _check_requests(self, sizes: Sequence[float]) -> list[float]:
        sizes = [float(s) for s in sizes]
        if len(sizes) != self.num_partitions:
            raise ValueError(
                f"expected {self.num_partitions} sizes, got {len(sizes)}")
        if any(s < 0 for s in sizes):
            raise ValueError("allocations must be non-negative")
        total = sum(sizes)
        if total > self.partitionable_lines * (1 + 1e-9):
            raise ValueError(
                f"requested {total} lines exceeds partitionable capacity "
                f"{self.partitionable_lines}")
        return sizes

    def record(self, partition: int, hit: bool) -> None:
        """Update the per-partition statistics."""
        self.partition_stats[partition].record(hit)

    def total_stats(self) -> CacheStats:
        """Aggregate statistics across all partitions."""
        total = CacheStats()
        for stats in self.partition_stats:
            total = total.merge(stats)
        return total

    def reset_stats(self) -> None:
        """Zero all per-partition statistics."""
        self.partition_stats = [CacheStats() for _ in range(self.num_partitions)]

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(capacity={self.capacity_lines} lines, "
                f"partitions={self.num_partitions})")
