"""Partitioned-cache interface.

A partitioned cache exposes ``num_partitions`` software-visible partitions,
each with a capacity allocation expressed in lines.  Accesses are tagged with
the partition they belong to (in the paper: the core, thread, or — for Talus
— the shadow partition chosen by the sampling function).

Concrete schemes differ in how strictly and at what granularity they enforce
allocations:

* :class:`~repro.cache.partition.ideal.IdealPartitionedCache` — exact line
  granularity, fully associative (the paper's "idealized partitioning").
* :class:`~repro.cache.partition.way.WayPartitionedCache` — allocations
  rounded to whole ways per set.
* :class:`~repro.cache.partition.setpart.SetPartitionedCache` — allocations
  rounded to whole sets.
* :class:`~repro.cache.partition.vantage.VantagePartitionedCache` — line
  granularity over 90 % of the cache, with a shared unmanaged region.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from ..cache import CacheStats

__all__ = ["PartitionedCache", "trim_line_allocations"]


def trim_line_allocations(sizes: Sequence[float], capacity: int) -> list[int]:
    """Round fractional line requests and trim the total back to ``capacity``.

    Rounding can push the total one or two lines above capacity; the largest
    allocations are decremented until it fits.  This is the line-granularity
    rounding rule shared by every scheme without coarser quantization (ideal,
    Vantage's managed region, futility scaling) and by their array-backend
    counterparts — keeping it in one place is what makes the backends grant
    identical allocations.
    """
    granted = [int(round(s)) for s in sizes]
    while sum(granted) > capacity:
        granted[granted.index(max(granted))] -= 1
    return granted


class PartitionedCache(ABC):
    """Abstract base class for partitioned cache organizations."""

    #: Scheme name under which :func:`repro.cache.spec.build` rebuilds this
    #: organization (set by each concrete subclass).
    scheme_name: str = ""

    def __init__(self, capacity_lines: int, num_partitions: int):
        if capacity_lines <= 0:
            raise ValueError("capacity_lines must be positive")
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.capacity_lines = int(capacity_lines)
        self.num_partitions = int(num_partitions)
        self.partition_stats = [CacheStats() for _ in range(num_partitions)]

    # ------------------------------------------------------------------ #
    # Mandatory interface
    # ------------------------------------------------------------------ #
    @abstractmethod
    def set_allocations(self, sizes: Sequence[float]) -> list[int]:
        """Set per-partition capacity targets (in lines).

        ``sizes`` may be fractional (planners work in real numbers); the
        scheme rounds them to whatever granularity it supports and returns
        the *granted* allocations in lines.  The sum of requests must not
        exceed the scheme's partitionable capacity.
        """

    @abstractmethod
    def access(self, address: int, partition: int) -> bool:
        """Perform one access on behalf of ``partition``; True on a hit."""

    @abstractmethod
    def granted_allocations(self) -> list[int]:
        """Current per-partition allocations in lines (post-rounding)."""

    @abstractmethod
    def partition_occupancy(self, partition: int) -> int:
        """Number of lines currently resident for ``partition``."""

    # ------------------------------------------------------------------ #
    # Shared behaviour
    # ------------------------------------------------------------------ #
    @property
    def partitionable_lines(self) -> int:
        """Lines the scheme can actually divide among partitions.

        Equal to the full capacity except for schemes with an unmanaged
        region (Vantage).
        """
        return self.capacity_lines

    def _check_partition(self, partition: int) -> None:
        if not 0 <= partition < self.num_partitions:
            raise ValueError(
                f"partition must be in [0, {self.num_partitions}), got {partition}")

    def _check_requests(self, sizes: Sequence[float]) -> list[float]:
        sizes = [float(s) for s in sizes]
        if len(sizes) != self.num_partitions:
            raise ValueError(
                f"expected {self.num_partitions} sizes, got {len(sizes)}")
        if any(s < 0 for s in sizes):
            raise ValueError("allocations must be non-negative")
        total = sum(sizes)
        if total > self.partitionable_lines * (1 + 1e-9):
            raise ValueError(
                f"requested {total} lines exceeds partitionable capacity "
                f"{self.partitionable_lines}")
        return sizes

    # ------------------------------------------------------------------ #
    # Declarative-spec round-tripping
    # ------------------------------------------------------------------ #
    def _first_policy(self):
        """The first region's policy instance (None when unavailable).

        Used by :meth:`to_spec` to recover the policy name; subclasses with
        non-trivial region containers override it.
        """
        regions = getattr(self, "_regions", None)
        return regions[0] if regions else None

    def _spec_scheme_kwargs(self) -> tuple:
        """Non-default scheme parameters to record in the spec."""
        return ()

    def to_spec(self):
        """A :class:`~repro.cache.spec.PartitionSpec` rebuilding this cache.

        Best effort: the policy name is recovered from the first region's
        policy instance (constructor keyword arguments of custom policy
        factories are not recoverable), and the current granted allocations
        become the spec's targets.  ``build(cache.to_spec())`` therefore
        reproduces this organization as configured *now*, not its access
        history.
        """
        from ..spec import PartitionSpec
        policy = self._first_policy()
        return PartitionSpec(
            scheme=self.scheme_name,
            capacity_lines=self.capacity_lines,
            num_partitions=self.num_partitions,
            policy=policy.name if policy is not None else "LRU",
            ways=getattr(self, "ways", 16),
            backend="object",
            hashed_index=getattr(self, "hashed_index", False),
            index_seed=getattr(self, "index_seed", 0),
            targets=tuple(float(g) for g in self.granted_allocations()),
            scheme_kwargs=self._spec_scheme_kwargs(),
        )

    @classmethod
    def from_spec(cls, spec) -> "PartitionedCache":
        """Build a partitioned cache from a :class:`PartitionSpec`.

        The concrete class is chosen by the spec's scheme and backend, so
        the result is not necessarily an instance of ``cls``.
        """
        from ..spec import build
        return build(spec)

    def record(self, partition: int, hit: bool) -> None:
        """Update the per-partition statistics."""
        self.partition_stats[partition].record(hit)

    def total_stats(self) -> CacheStats:
        """Aggregate statistics across all partitions."""
        total = CacheStats()
        for stats in self.partition_stats:
            total = total.merge(stats)
        return total

    def reset_stats(self) -> None:
        """Zero all per-partition statistics."""
        self.partition_stats = [CacheStats() for _ in range(self.num_partitions)]

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(capacity={self.capacity_lines} lines, "
                f"partitions={self.num_partitions})")
