"""Cache partitioning schemes (hardware enforcement of capacity allocations)."""

from .base import PartitionedCache
from .futility import FutilityScalingCache
from .ideal import IdealPartitionedCache
from .setpart import SetPartitionedCache
from .vantage import VantagePartitionedCache
from .way import WayPartitionedCache

__all__ = [
    "PartitionedCache",
    "IdealPartitionedCache",
    "WayPartitionedCache",
    "SetPartitionedCache",
    "VantagePartitionedCache",
    "FutilityScalingCache",
    "SCHEME_REGISTRY",
    "make_partitioned_cache",
]

#: Registry of partitioning schemes by the short names used in the paper's
#: figures: V (Vantage), W (way), S (set), I (ideal), F (Futility Scaling).
SCHEME_REGISTRY = {
    "ideal": "I",
    "way": "W",
    "set": "S",
    "vantage": "V",
    "futility": "F",
}


def make_partitioned_cache(scheme: str, capacity_lines: int, num_partitions: int,
                           policy_factory=None, ways: int = 16,
                           **kwargs) -> PartitionedCache:
    """Construct a partitioned cache by scheme name.

    Parameters
    ----------
    scheme:
        One of ``"ideal"``, ``"way"``, ``"set"``, ``"vantage"``.
    capacity_lines:
        Total capacity in lines.
    num_partitions:
        Number of partitions.
    policy_factory:
        Optional replacement-policy factory (default per-scheme LRU).
    ways:
        Associativity used by the way/set-partitioned organizations.
    """
    from ..cache import lru_factory
    factory = policy_factory if policy_factory is not None else lru_factory
    scheme = scheme.lower()
    if scheme == "ideal":
        return IdealPartitionedCache(capacity_lines, num_partitions, factory, **kwargs)
    if scheme == "vantage":
        return VantagePartitionedCache(capacity_lines, num_partitions, factory, **kwargs)
    if scheme == "futility":
        return FutilityScalingCache(capacity_lines, num_partitions, factory, **kwargs)
    if scheme == "way":
        num_sets = max(1, capacity_lines // ways)
        return WayPartitionedCache(num_sets, ways, num_partitions, factory, **kwargs)
    if scheme == "set":
        num_sets = max(num_partitions, capacity_lines // ways)
        return SetPartitionedCache(num_sets, ways, num_partitions, factory, **kwargs)
    raise ValueError(f"unknown partitioning scheme {scheme!r}; "
                     f"known: {sorted(SCHEME_REGISTRY)}")
