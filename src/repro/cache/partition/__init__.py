"""Cache partitioning schemes (hardware enforcement of capacity allocations)."""

from .array import ARRAY_SCHEMES, ArrayPartitionedCache, ArrayVantageCache
from .base import PartitionedCache
from .futility import FutilityScalingCache
from .ideal import IdealPartitionedCache
from .setpart import SetPartitionedCache
from .vantage import VantagePartitionedCache, vantage_managed_lines
from .way import WayPartitionedCache

__all__ = [
    "PartitionedCache",
    "IdealPartitionedCache",
    "WayPartitionedCache",
    "SetPartitionedCache",
    "VantagePartitionedCache",
    "FutilityScalingCache",
    "ArrayPartitionedCache",
    "ArrayVantageCache",
    "ARRAY_SCHEMES",
    "SCHEME_REGISTRY",
    "make_partitioned_cache",
    "partitionable_lines_for",
]

#: Registry of partitioning schemes by the short names used in the paper's
#: figures: V (Vantage), W (way), S (set), I (ideal), F (Futility Scaling).
SCHEME_REGISTRY = {
    "ideal": "I",
    "way": "W",
    "set": "S",
    "vantage": "V",
    "futility": "F",
}


def partitionable_lines_for(scheme: str, capacity_lines: int,
                            num_partitions: int, ways: int = 16,
                            scheme_kwargs: dict | None = None) -> int:
    """Partitionable capacity of a scheme configuration, without building it.

    Matches ``make_partitioned_cache(...).partitionable_lines`` exactly —
    including the way/set geometry truncation (capacity rounds down to
    whole sets) and Vantage's unmanaged region — so planners
    (:func:`repro.sim.engine.talus_sweep_configs`, the spec layer) can
    plan allocations from a declarative description alone.
    """
    scheme = scheme.lower()
    kwargs = scheme_kwargs or {}
    if scheme in ("ideal", "futility"):
        return capacity_lines
    if scheme == "vantage":
        return vantage_managed_lines(
            capacity_lines, kwargs.get("unmanaged_fraction", 0.10))
    if scheme == "way":
        return max(1, capacity_lines // ways) * ways
    if scheme == "set":
        return max(num_partitions, capacity_lines // ways) * ways
    raise ValueError(f"unknown partitioning scheme {scheme!r}; "
                     f"known: {sorted(SCHEME_REGISTRY)}")


def make_partitioned_cache(scheme: str, capacity_lines: int, num_partitions: int,
                           policy_factory=None, ways: int = 16,
                           **kwargs) -> PartitionedCache:
    """Construct an object-model partitioned cache by scheme name.

    This is the reference (object-backend) factory; the declarative
    entry point :func:`repro.cache.spec.build` routes
    :class:`~repro.cache.spec.PartitionSpec` objects here or to the
    array-backend :class:`ArrayPartitionedCache` fast path.

    Parameters
    ----------
    scheme:
        One of ``"ideal"``, ``"way"``, ``"set"``, ``"vantage"``,
        ``"futility"``.
    capacity_lines:
        Total capacity in lines.
    num_partitions:
        Number of partitions.
    policy_factory:
        Optional replacement-policy factory (default per-scheme LRU).
    ways:
        Associativity used by the way/set-partitioned organizations.
    """
    from ..cache import lru_factory
    factory = policy_factory if policy_factory is not None else lru_factory
    scheme = scheme.lower()
    if scheme == "ideal":
        return IdealPartitionedCache(capacity_lines, num_partitions, factory, **kwargs)
    if scheme == "vantage":
        return VantagePartitionedCache(capacity_lines, num_partitions, factory, **kwargs)
    if scheme == "futility":
        return FutilityScalingCache(capacity_lines, num_partitions, factory, **kwargs)
    if scheme == "way":
        num_sets = max(1, capacity_lines // ways)
        return WayPartitionedCache(num_sets, ways, num_partitions, factory, **kwargs)
    if scheme == "set":
        num_sets = max(num_partitions, capacity_lines // ways)
        return SetPartitionedCache(num_sets, ways, num_partitions, factory, **kwargs)
    raise ValueError(f"unknown partitioning scheme {scheme!r}; "
                     f"known: {sorted(SCHEME_REGISTRY)}")
