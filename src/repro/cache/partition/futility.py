"""Futility-Scaling-like fine-grained partitioning (Wang & Chen, MICRO 2014).

The paper notes (Sec. VI-B) that using Futility Scaling instead of Vantage
would avoid the unmanaged-region complication: Futility Scaling enforces
per-partition sizes at line granularity over the *whole* cache by scaling
each partition's "futility" (eviction priority) so that its occupancy tracks
its target.

This class is a functional stand-in with the same capacity semantics: every
line belongs to a partition, each partition has a target size, and evictions
are taken from whichever partition is most over its target (scaling its
eviction pressure), falling back to the requesting partition when none is
over target.  There is no unmanaged region, so the full capacity is
partitionable — which is exactly the property the paper points to.
"""

from __future__ import annotations

from typing import Sequence

from ..cache import lru_factory
from ..replacement.base import PolicyFactory
from .base import PartitionedCache

__all__ = ["FutilityScalingCache"]


class FutilityScalingCache(PartitionedCache):
    """Line-granularity partitioning over the full cache, no unmanaged region.

    Parameters
    ----------
    capacity_lines:
        Total cache capacity in lines.
    num_partitions:
        Number of software-visible partitions.
    policy_factory:
        Replacement policy per partition (default LRU); the policy orders
        evictions *within* a partition, while the futility-scaling logic
        decides *which* partition gives up a line.
    """

    scheme_name = "futility"

    def __init__(self, capacity_lines: int, num_partitions: int,
                 policy_factory: PolicyFactory = lru_factory):
        super().__init__(capacity_lines, num_partitions)
        base = capacity_lines // num_partitions
        self._regions = [policy_factory(i, capacity_lines)
                         for i in range(num_partitions)]
        # Targets are soft: regions are built with full-cache capacity and the
        # scaling logic below keeps their occupancy near the target.
        self._targets = [base] * num_partitions

    # ------------------------------------------------------------------ #
    def set_allocations(self, sizes: Sequence[float]) -> list[int]:
        sizes = self._check_requests(sizes)
        granted = [int(round(s)) for s in sizes]
        while sum(granted) > self.capacity_lines:
            granted[granted.index(max(granted))] -= 1
        self._targets = granted
        self._rebalance()
        return list(granted)

    def granted_allocations(self) -> list[int]:
        return list(self._targets)

    def partition_occupancy(self, partition: int) -> int:
        self._check_partition(partition)
        return len(self._regions[partition])

    # ------------------------------------------------------------------ #
    def _total_occupancy(self) -> int:
        return sum(len(region) for region in self._regions)

    def _most_over_target(self) -> int | None:
        """Partition with the largest occupancy excess over its target."""
        best = None
        best_excess = 0
        for index, (region, target) in enumerate(zip(self._regions, self._targets)):
            excess = len(region) - target
            if excess > best_excess:
                best_excess = excess
                best = index
        return best

    def _rebalance(self) -> None:
        """Evict from over-target partitions until the cache fits."""
        while self._total_occupancy() > self.capacity_lines:
            victim_partition = self._most_over_target()
            if victim_partition is None:
                victim_partition = max(range(self.num_partitions),
                                       key=lambda i: len(self._regions[i]))
            if self._regions[victim_partition].evict_one() is None:
                break

    def access(self, address: int, partition: int) -> bool:
        self._check_partition(partition)
        region = self._regions[partition]
        if address in region:
            hit = region.access(address)
            self.record(partition, hit)
            return hit
        # Miss: make room globally before inserting.  Evict from the most
        # over-target partition (scaled eviction pressure); if nobody is over
        # target, the requesting partition replaces within itself (or, if it
        # is empty, the largest partition gives up a line).
        if self._total_occupancy() >= self.capacity_lines:
            victim_partition = self._most_over_target()
            if victim_partition is None:
                victim_partition = partition if len(region) > 0 else max(
                    range(self.num_partitions),
                    key=lambda i: len(self._regions[i]))
            self._regions[victim_partition].evict_one()
        region.access(address)
        self.record(partition, False)
        return False
