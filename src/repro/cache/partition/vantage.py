"""Vantage-like fine-grained partitioning with an unmanaged region.

Vantage (Sanchez & Kozyrakis, ISCA 2011) partitions ~90 % of a
highly-associative cache at line granularity, leaving a ~10 % *unmanaged
region* it makes no capacity guarantees about: lines demoted from managed
partitions linger there until they age out.  The Talus paper runs its main
configuration ("Talus+V/LRU") on Vantage and explicitly models the
unmanaged region — at total capacity ``s``, Talus assumes a partitionable
capacity of ``0.9 s`` (Sec. VI-B), which is why Talus+V sits slightly above
the convex hull in Fig. 8.

This class is a functional stand-in for Vantage: it enforces the same
capacity semantics (line-granularity budgets over the managed fraction, a
shared unmanaged victim area, demotion instead of immediate eviction)
without modelling the timestamp-based promotion/demotion microarchitecture.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from ..cache import lru_factory
from ..replacement.base import EvictionPolicy, PolicyFactory
from .base import PartitionedCache, trim_line_allocations

__all__ = ["VantagePartitionedCache", "vantage_managed_lines"]


def vantage_managed_lines(capacity_lines: int,
                          unmanaged_fraction: float = 0.10) -> int:
    """Lines of a Vantage cache that are partitionable (the managed region).

    Kept as a module function so planners can compute the partitionable
    capacity of a configuration without building the cache.
    """
    return capacity_lines - int(round(capacity_lines * unmanaged_fraction))


class VantagePartitionedCache(PartitionedCache):
    """Fine-grained partitioning over 90 % of capacity plus an unmanaged region.

    Parameters
    ----------
    capacity_lines:
        Total cache capacity in lines (managed + unmanaged).
    num_partitions:
        Number of software-visible partitions.
    policy_factory:
        Replacement policy per managed partition; default LRU.
    unmanaged_fraction:
        Fraction of capacity in the unmanaged region (paper: 0.10).
    """

    scheme_name = "vantage"

    def __init__(self, capacity_lines: int, num_partitions: int,
                 policy_factory: PolicyFactory = lru_factory,
                 unmanaged_fraction: float = 0.10):
        if not 0.0 <= unmanaged_fraction < 1.0:
            raise ValueError("unmanaged_fraction must be in [0, 1)")
        super().__init__(capacity_lines, num_partitions)
        self.unmanaged_fraction = unmanaged_fraction
        self._managed_capacity = vantage_managed_lines(capacity_lines,
                                                       unmanaged_fraction)
        self._unmanaged_capacity = capacity_lines - self._managed_capacity
        base = self._managed_capacity // num_partitions
        self._regions = [policy_factory(i, base) for i in range(num_partitions)]
        self._allocations = [base] * num_partitions
        # Unmanaged region: a shared LRU victim area.  Maps tag -> partition
        # it was demoted from (so a hit can be re-attributed).
        self._unmanaged: OrderedDict[int, int] = OrderedDict()

    # ------------------------------------------------------------------ #
    @property
    def partitionable_lines(self) -> int:
        return self._managed_capacity

    @property
    def unmanaged_capacity(self) -> int:
        """Capacity of the unmanaged region in lines."""
        return self._unmanaged_capacity

    def set_allocations(self, sizes: Sequence[float]) -> list[int]:
        sizes = self._check_requests(sizes)
        granted = trim_line_allocations(sizes, self._managed_capacity)
        for part, (region, lines) in enumerate(zip(self._regions, granted)):
            for victim in region.set_capacity(lines):
                self._demote(victim, part)
        self._allocations = granted
        return list(granted)

    def granted_allocations(self) -> list[int]:
        return list(self._allocations)

    # ------------------------------------------------------------------ #
    def _demote(self, tag: int, partition: int) -> None:
        """Move a line evicted from a managed partition to the unmanaged region."""
        if self._unmanaged_capacity == 0:
            return
        self._unmanaged[tag] = partition
        self._unmanaged.move_to_end(tag)
        while len(self._unmanaged) > self._unmanaged_capacity:
            self._unmanaged.popitem(last=False)

    def _insert_managed(self, address: int, partition: int) -> None:
        """Insert into a managed partition, demoting that partition's victim."""
        region = self._regions[partition]
        if region.capacity == 0:
            # Partition has no managed budget: the line lives (briefly) in
            # the unmanaged region only.
            self._demote(address, partition)
            return
        if len(region) >= region.capacity:
            victim = region.evict_one()
            if victim is not None:
                self._demote(victim, partition)
        region.access(address)

    def access(self, address: int, partition: int) -> bool:
        self._check_partition(partition)
        region = self._regions[partition]
        if address in region:
            hit = region.access(address)
            self.record(partition, hit)
            return hit
        if address in self._unmanaged:
            # Hit in the unmanaged region: promote back into the partition.
            del self._unmanaged[address]
            self._insert_managed(address, partition)
            self.record(partition, True)
            return True
        self._insert_managed(address, partition)
        self.record(partition, False)
        return False

    def partition_occupancy(self, partition: int) -> int:
        self._check_partition(partition)
        return len(self._regions[partition])

    def unmanaged_occupancy(self) -> int:
        """Number of lines currently resident in the unmanaged region."""
        return len(self._unmanaged)

    def _spec_scheme_kwargs(self) -> tuple:
        if self.unmanaged_fraction != 0.10:
            return (("unmanaged_fraction", self.unmanaged_fraction),)
        return ()
