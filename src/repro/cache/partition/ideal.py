"""Idealized partitioning: exact line-granularity, fully-associative partitions.

This corresponds to the "Talus+I" configuration of Fig. 8 in the paper — a
partitioning scheme with no rounding, no associativity conflicts and no
unmanaged region.  Each partition is simply an independent fully-associative
region managed by its own replacement-policy instance, with a capacity equal
to its allocation.
"""

from __future__ import annotations

from typing import Sequence

from ..cache import lru_factory
from ..replacement.base import PolicyFactory
from .base import PartitionedCache, trim_line_allocations

__all__ = ["IdealPartitionedCache"]


class IdealPartitionedCache(PartitionedCache):
    """Exact, fully-associative partitioning.

    Parameters
    ----------
    capacity_lines:
        Total cache capacity in lines.
    num_partitions:
        Number of software-visible partitions.
    policy_factory:
        ``(partition_index, capacity) -> EvictionPolicy``; default LRU.
        Called once per partition; capacities are later adjusted with
        :meth:`set_allocations`.
    """

    scheme_name = "ideal"

    def __init__(self, capacity_lines: int, num_partitions: int,
                 policy_factory: PolicyFactory = lru_factory):
        super().__init__(capacity_lines, num_partitions)
        base = capacity_lines // num_partitions
        self._regions = [policy_factory(i, base) for i in range(num_partitions)]
        self._allocations = [base] * num_partitions

    def set_allocations(self, sizes: Sequence[float]) -> list[int]:
        sizes = self._check_requests(sizes)
        granted = trim_line_allocations(sizes, self.capacity_lines)
        for region, lines in zip(self._regions, granted):
            region.set_capacity(lines)
        self._allocations = granted
        return list(granted)

    def access(self, address: int, partition: int) -> bool:
        self._check_partition(partition)
        hit = self._regions[partition].access(address)
        self.record(partition, hit)
        return hit

    def granted_allocations(self) -> list[int]:
        return list(self._allocations)

    def partition_occupancy(self, partition: int) -> int:
        self._check_partition(partition)
        return len(self._regions[partition])
