"""Set partitioning: partitions own whole sets (page-coloring style).

The worked example of Sec. III of the paper uses set partitioning: the cache
is split by sets in a given ratio, and Talus distributes accesses between
the two groups of sets in dis-proportion to their size.  Set partitioning
can be realized in hardware (reconfigurable caches) or in software via page
coloring; either way allocations are rounded to whole sets.
"""

from __future__ import annotations

from typing import Sequence

from ..cache import lru_factory
from ..hashing import mix64
from ..replacement.base import EvictionPolicy, PolicyFactory
from .base import PartitionedCache

__all__ = ["SetPartitionedCache", "round_to_sets"]


def round_to_sets(sizes: Sequence[float], num_sets: int, ways: int) -> list[int]:
    """Convert per-partition line requests to whole sets (sum <= num_sets).

    Nonzero requests get at least one set; the total is trimmed from the
    largest allocations.  Shared by the object and array backends.
    """
    requested_sets = [s / ways for s in sizes]
    granted = [max(1, int(round(r))) if r > 0 else 0 for r in requested_sets]
    while sum(granted) > num_sets:
        granted[granted.index(max(granted))] -= 1
    return granted


class SetPartitionedCache(PartitionedCache):
    """A set-associative cache whose sets are divided among partitions.

    Each partition owns ``sets_p`` sets of the full associativity; an access
    for partition ``p`` is hash-indexed *within that partition's sets*, so a
    partition with more sets behaves exactly like a larger cache — which is
    the property the Talus worked example relies on.
    """

    scheme_name = "set"

    def __init__(self, num_sets: int, ways: int, num_partitions: int,
                 policy_factory: PolicyFactory = lru_factory,
                 index_seed: int = 0, hashed_index: bool = False):
        if num_sets <= 0 or ways <= 0:
            raise ValueError("num_sets and ways must be positive")
        if num_partitions > num_sets:
            raise ValueError(
                f"cannot set-partition {num_sets} sets into {num_partitions} partitions")
        super().__init__(num_sets * ways, num_partitions)
        self.num_sets = num_sets
        self.ways = ways
        self.index_seed = index_seed
        self.hashed_index = hashed_index
        self._policy_factory = policy_factory
        base_sets = num_sets // num_partitions
        self._set_alloc = [base_sets] * num_partitions
        self._set_alloc[0] += num_sets - base_sets * num_partitions
        self._regions: list[list[EvictionPolicy]] = [
            [policy_factory(p * num_sets + s, ways) for s in range(self._set_alloc[p])]
            for p in range(num_partitions)
        ]

    def _round_to_sets(self, sizes: Sequence[float]) -> list[int]:
        return round_to_sets(sizes, self.num_sets, self.ways)

    def set_allocations(self, sizes: Sequence[float]) -> list[int]:
        sizes = self._check_requests(sizes)
        set_alloc = self._round_to_sets(sizes)
        for p, sets_p in enumerate(set_alloc):
            regions = self._regions[p]
            if sets_p > len(regions):
                regions.extend(self._policy_factory(p * self.num_sets + s, self.ways)
                               for s in range(len(regions), sets_p))
            elif sets_p < len(regions):
                del regions[sets_p:]
        self._set_alloc = set_alloc
        return self.granted_allocations()

    def granted_allocations(self) -> list[int]:
        return [s * self.ways for s in self._set_alloc]

    def set_allocations_in_sets(self) -> list[int]:
        """Current per-partition set counts."""
        return list(self._set_alloc)

    def access(self, address: int, partition: int) -> bool:
        self._check_partition(partition)
        regions = self._regions[partition]
        if not regions:
            # A partition with zero sets holds nothing: every access misses.
            self.record(partition, False)
            return False
        if self.hashed_index:
            index = mix64(address ^ (self.index_seed * 0x9E3779B97F4A7C15)) % len(regions)
        else:
            index = address % len(regions)
        hit = regions[index].access(address)
        self.record(partition, hit)
        return hit

    def partition_occupancy(self, partition: int) -> int:
        self._check_partition(partition)
        return sum(len(region) for region in self._regions[partition])

    def _first_policy(self):
        for regions in self._regions:
            if regions:
                return regions[0]
        return None
