"""Hash functions used by the cache substrate and by Talus's sampling logic.

Talus steers accesses between shadow partitions with an inexpensive H3 hash
(Carter & Wegman) of the line address compared against an 8-bit limit
register (Sec. VI-B of the paper).  The cache itself also hashes addresses
to set indices so that accesses spread evenly across sets (Assumption 3 —
"statistically self-similar" sampled streams — relies on good hashing).

Both hash families here are deterministic given a seed, so experiments are
reproducible.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["H3Hash", "SamplingFunction", "GOLDEN64", "mix64", "mix64_array",
           "seed_mix", "set_index", "derive_seed"]

_MASK64 = (1 << 64) - 1

#: The splitmix64 increment (2^64 / golden ratio).  Every seed premix and
#: constituency hash in the Python code AND the native kernel
#: (``_sweepkernel.c``'s ``GOLDEN``) must use this same constant, or the
#: scalar, vectorized and native paths stop selecting identical streams.
GOLDEN64 = 0x9E3779B97F4A7C15


def seed_mix(seed: int) -> int:
    """The 64-bit seed premix ``(seed * GOLDEN64) mod 2^64``.

    XORed into an address before :func:`mix64` to derive independent hash
    functions from one seed; shared so the scalar, numpy and C paths agree
    bit for bit.
    """
    return (seed * GOLDEN64) & _MASK64


def mix64(value: int) -> int:
    """A 64-bit finalizer (splitmix64) used for set-index hashing.

    Cheap, stateless and well-mixed; good enough to emulate the hashed
    indexing of a real LLC.
    """
    value &= _MASK64
    value = (value + GOLDEN64) & _MASK64
    z = value
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def derive_seed(base_seed: int, token: str) -> int:
    """Identity-derived deterministic seed for one unit of work.

    A stable function of ``(base_seed, token)`` — never of execution
    order, worker identity or batch composition — so a unit simulated
    alone, in a batched sweep, in a pooled worker or resumed from a
    result bank always draws the same random stream.  The sweep engine
    derives per-config seeds from ``"policy|size"`` tokens and the
    sampling driver per-window seeds from ``"sampling-window|start"``
    tokens through this one helper.
    """
    return mix64(mix64(base_seed) ^ zlib.crc32(token.encode())) & 0x7FFFFFFF


def mix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`mix64` over an array of addresses.

    Element-for-element identical to the scalar version (negative int64
    inputs wrap to their two's-complement uint64 value, exactly as the
    scalar's 64-bit masking does), so hash-sampled sub-streams selected
    with either form are the same.  This is what lets the monitors
    (:mod:`repro.monitor.umon`, :mod:`repro.monitor.multipoint`) replace
    one Python hash call per access with a single numpy pass.
    """
    v = np.asarray(values).astype(np.uint64)
    v = v + np.uint64(GOLDEN64)
    v = (v ^ (v >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    v = (v ^ (v >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return v ^ (v >> np.uint64(31))


def set_index(address: int, num_sets: int, seed: int = 0) -> int:
    """Map a line address to a set index using hashed indexing."""
    if num_sets <= 0:
        raise ValueError("num_sets must be positive")
    return mix64(address ^ seed_mix(seed)) % num_sets


class H3Hash:
    """An H3 universal hash: ``h(x) = XOR of rows of Q selected by bits of x``.

    This is the hardware-friendly hash family the paper uses for the shadow
    partition sampling function.  Each instance draws a random binary matrix
    ``Q`` (one row per input bit) from a seeded RNG; hashing XORs together
    the rows corresponding to the set bits of the input.

    Parameters
    ----------
    out_bits:
        Width of the hash output (the paper uses 8 bits).
    in_bits:
        Number of input address bits considered.
    seed:
        Seed for the matrix; different seeds give independent hash functions.
    """

    def __init__(self, out_bits: int = 8, in_bits: int = 48, seed: int = 1):
        if out_bits <= 0 or out_bits > 32:
            raise ValueError("out_bits must be in [1, 32]")
        if in_bits <= 0 or in_bits > 64:
            raise ValueError("in_bits must be in [1, 64]")
        self.out_bits = out_bits
        self.in_bits = in_bits
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._rows = [int(v) for v in
                      rng.integers(0, 1 << out_bits, size=in_bits, dtype=np.uint64)]
        self._mask = (1 << out_bits) - 1
        # Byte-sliced lookup tables: H3 is XOR-linear over GF(2), so the
        # hash of an address is the XOR of one table entry per input byte.
        # This turns the vectorized hash into a handful of table gathers
        # instead of one pass per input bit — the hot step of Talus's
        # batched shadow-pair steering.
        n_bytes = (in_bits + 7) // 8
        byte_values = np.arange(256, dtype=np.uint64)
        self._byte_luts = np.zeros((n_bytes, 256), dtype=np.uint64)
        for k in range(n_bytes):
            lut = self._byte_luts[k]
            for bit in range(8):
                global_bit = 8 * k + bit
                if global_bit >= in_bits:
                    break
                has_bit = (byte_values >> np.uint64(bit)) & np.uint64(1)
                lut ^= has_bit * np.uint64(self._rows[global_bit])

    def __call__(self, value: int) -> int:
        """Hash ``value`` to an integer in ``[0, 2**out_bits)``."""
        result = 0
        v = value & ((1 << self.in_bits) - 1)
        bit = 0
        while v:
            if v & 1:
                result ^= self._rows[bit]
            v >>= 1
            bit += 1
        return result & self._mask

    def hash_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorized hash of an array of addresses.

        Bit-identical to the scalar :meth:`__call__` (XOR-linearity makes
        the byte-sliced tables exact), element for element.
        """
        values = np.asarray(values, dtype=np.uint64)
        masked = values & np.uint64((1 << self.in_bits) - 1)
        result = self._byte_luts[0][masked & np.uint64(0xFF)]
        for k in range(1, self._byte_luts.shape[0]):
            chunk = (masked >> np.uint64(8 * k)) & np.uint64(0xFF)
            result = result ^ self._byte_luts[k][chunk]
        return result & np.uint64(self._mask)

    def __repr__(self) -> str:
        return f"H3Hash(out_bits={self.out_bits}, in_bits={self.in_bits}, seed={self.seed})"


class SamplingFunction:
    """Talus's hardware sampling function: H3 hash + limit register.

    Each incoming address is hashed to ``out_bits`` bits; if the hash value
    is below the limit register the access goes to the *alpha* shadow
    partition, otherwise to the *beta* shadow partition (Fig. 7b).

    The limit register quantizes the sampling rate ``rho`` to
    ``2**out_bits`` levels, exactly as the 8-bit register in the paper does.
    """

    def __init__(self, rho: float = 0.0, out_bits: int = 8, seed: int = 1):
        self.hash = H3Hash(out_bits=out_bits, seed=seed)
        self.out_bits = out_bits
        self._levels = 1 << out_bits
        self.limit = 0
        self.set_rate(rho)

    def set_rate(self, rho: float) -> None:
        """Program the limit register for a target sampling rate ``rho``."""
        if not 0.0 <= rho <= 1.0:
            raise ValueError(f"rho must be in [0, 1], got {rho}")
        self.limit = int(round(rho * self._levels))

    @property
    def rate(self) -> float:
        """The quantized sampling rate actually implemented by the register."""
        return self.limit / self._levels

    def goes_to_alpha(self, address: int) -> bool:
        """Whether ``address`` is steered to the alpha shadow partition."""
        return self.hash(address) < self.limit
