"""Belady's MIN: the optimal offline replacement policy.

MIN evicts the resident line whose next use is furthest in the future.  It
requires oracle knowledge of the trace, so it is implemented as an offline
policy: feed it the whole access trace up front, then replay accesses in
order.  The Talus paper uses MIN as the gold standard ("optimal replacement
does not suffer cliffs") and Corollary 7 proves MIN is convex — a property
the test suite checks against this implementation.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Iterable, Sequence

from .base import EvictionPolicy

__all__ = ["BeladyMINPolicy", "belady_miss_curve_points"]

_INFINITY = float("inf")


class BeladyMINPolicy(EvictionPolicy):
    """Optimal replacement for a known trace.

    Usage::

        policy = BeladyMINPolicy(capacity, trace)
        hits = sum(policy.access(tag) for tag in trace)

    Accesses must be replayed in exactly the order of the trace supplied at
    construction; the policy checks this and raises otherwise.
    """

    name = "MIN"

    def __init__(self, capacity: int, trace: Sequence[int]):
        super().__init__(capacity)
        self._trace = list(int(t) for t in trace)
        # For each tag, the queue of positions at which it is accessed.
        positions: dict[int, deque[int]] = {}
        for pos, tag in enumerate(self._trace):
            positions.setdefault(tag, deque()).append(pos)
        self._positions = positions
        self._cursor = 0
        self._resident: dict[int, float] = {}  # tag -> next use position
        # Max-heap of (-next_use, tag); entries are validated lazily.
        self._heap: list[tuple[float, int]] = []

    def _next_use(self, tag: int) -> float:
        queue = self._positions.get(tag)
        if queue:
            return float(queue[0])
        return _INFINITY

    def access(self, tag: int) -> bool:
        if self._cursor >= len(self._trace):
            raise RuntimeError("access beyond the end of the supplied trace")
        expected = self._trace[self._cursor]
        if tag != expected:
            raise ValueError(
                f"out-of-order replay: expected tag {expected} at position "
                f"{self._cursor}, got {tag}")
        # Consume this access's position from the tag's queue.
        self._positions[tag].popleft()
        self._cursor += 1

        hit = tag in self._resident
        if self.capacity == 0:
            return False
        next_use = self._next_use(tag)
        if hit:
            self._resident[tag] = next_use
            heapq.heappush(self._heap, (-next_use, tag))
            return True
        if len(self._resident) >= self.capacity:
            self._evict_furthest()
        self._resident[tag] = next_use
        heapq.heappush(self._heap, (-next_use, tag))
        return False

    def _evict_furthest(self) -> int | None:
        while self._heap:
            neg_next, tag = heapq.heappop(self._heap)
            current = self._resident.get(tag)
            if current is None:
                continue  # stale entry for an already-evicted line
            if current != -neg_next:
                continue  # stale entry superseded by a later access
            del self._resident[tag]
            return tag
        return None

    def resident(self) -> Iterable[int]:
        return list(self._resident.keys())

    def evict_one(self) -> int | None:
        return self._evict_furthest()

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, tag: int) -> bool:
        return tag in self._resident


def belady_miss_curve_points(trace: Sequence[int],
                             capacities: Iterable[int]) -> list[tuple[int, int]]:
    """Miss counts of Belady's MIN on ``trace`` at each capacity.

    Returns ``(capacity, misses)`` pairs suitable for
    :meth:`repro.core.MissCurve.from_points`.  Next-use positions are
    precomputed once with a vectorized two-pass scatter
    (:func:`repro.cache.arraycache.belady_next_use`) and shared by every
    capacity point; each point then replays through the native
    :class:`~repro.cache.arraycache.ArrayBeladyCache` kernel, whose miss
    counts are exact against this module's :class:`BeladyMINPolicy` (tie
    eviction among dead lines cannot change MIN's miss count).
    """
    from ..arraycache import ArrayBeladyCache, belady_next_use
    from ..cache import materialize_addresses
    addrs = materialize_addresses(trace)
    next_use = belady_next_use(addrs)
    points = []
    for capacity in capacities:
        cache = ArrayBeladyCache(int(capacity), addrs, next_use=next_use)
        cache.run(addrs)
        points.append((int(capacity), int(cache.stats.misses)))
    return points
