"""PDP: Protecting Distance based Policy (Duong et al., MICRO 2012).

PDP protects each inserted or promoted line for a *protecting distance*
``dp`` — a number of accesses to the region during which the line cannot be
evicted.  When no unprotected line exists, the incoming line is bypassed
(sent straight to memory), which is what makes PDP thrash resistant and
closely related to the optimal-bypassing analysis of Sec. V-C of the Talus
paper.

The protecting distance is recomputed periodically from a sampled
reuse-distance distribution by maximizing a hit-rate-per-occupancy objective
(the "cache efficacy" E(dp) of the PDP paper):

    E(dp) = hits(dp) / (sum_{d <= dp} d * N_d  +  dp * misses(dp))

where ``N_d`` counts accesses with reuse distance ``d``, ``hits(dp)`` counts
accesses with distance at most ``dp``, and ``misses(dp)`` the rest.  The
numerator is the hit count achieved if every line is protected for ``dp``
accesses; the denominator is the cache space-time those lines occupy.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from .base import EvictionPolicy

__all__ = ["PDPPolicy", "select_protecting_distance"]


def select_protecting_distance(reuse_histogram: dict[int, int],
                               max_distance: int,
                               total_accesses: int) -> int:
    """Choose the protecting distance maximizing the PDP efficacy objective.

    Parameters
    ----------
    reuse_histogram:
        Map from observed reuse distance (in accesses to the region) to the
        number of accesses with that distance.
    max_distance:
        Largest candidate protecting distance to consider (typically a small
        multiple of the region capacity).
    total_accesses:
        Total sampled accesses (so accesses that never reused count as
        misses at every candidate distance).

    Returns
    -------
    int
        The protecting distance with the highest efficacy; at least 1.
    """
    if max_distance < 1:
        raise ValueError("max_distance must be >= 1")
    if total_accesses <= 0:
        return max_distance
    distances = sorted(d for d in reuse_histogram if d <= max_distance)
    best_dp = max_distance
    best_score = -1.0
    hits = 0
    weighted = 0
    idx = 0
    for dp in range(1, max_distance + 1):
        while idx < len(distances) and distances[idx] <= dp:
            d = distances[idx]
            count = reuse_histogram[d]
            hits += count
            weighted += d * count
            idx += 1
        misses = total_accesses - hits
        occupancy = weighted + dp * misses
        if occupancy <= 0:
            continue
        score = hits / occupancy
        if score > best_score:
            best_score = score
            best_dp = dp
    return best_dp


class PDPPolicy(EvictionPolicy):
    """Protecting-distance policy with bypassing.

    Each resident line records the access count (local to this region) at
    which its protection expires.  On a miss with no unprotected victim the
    incoming line is bypassed.  The protecting distance is re-estimated every
    ``recompute_interval`` accesses from an online reuse-distance sample.
    """

    name = "PDP"

    def __init__(self, capacity: int,
                 recompute_interval: int | None = None,
                 max_distance_factor: float = 3.0,
                 initial_distance: int | None = None):
        super().__init__(capacity)
        if recompute_interval is None:
            # Scale the recompute interval with the region size so that
            # per-set regions (tens of lines) adapt after a few hundred
            # accesses while large fully-associative partitions do not churn.
            recompute_interval = max(128, 16 * max(capacity, 1))
        if recompute_interval < 16:
            raise ValueError("recompute_interval must be >= 16")
        if max_distance_factor <= 0:
            raise ValueError("max_distance_factor must be positive")
        self.recompute_interval = recompute_interval
        self.max_distance_factor = max_distance_factor
        #: Largest candidate protecting distance the selector considers.
        #: The reuse sampler saturates here, as the PDP paper's bounded RD
        #: sampler does: distances beyond it only contribute to the miss
        #: term, which is counted from the total sample count.  One
        #: deliberate behavioural consequence: a phase whose reuses are
        #: *all* beyond the candidate range now leaves ``dp`` unchanged,
        #: where the unbounded sampler degenerated it to 1 (every
        #: candidate scored zero and the shortest won) — protecting
        #: nothing exactly when protection is the only defence.
        self.max_candidate_distance = max(
            1, int(max_distance_factor * max(capacity, 1)))
        self._clock = 0
        self._dp = initial_distance if initial_distance else max(1, capacity)
        # tag -> access count at which protection expires
        self._expires: dict[int, int] = {}
        # LRU order among lines, used to break ties among unprotected lines.
        self._order: OrderedDict[int, None] = OrderedDict()
        # Reuse-distance sampling state.
        self._last_seen: dict[int, int] = {}
        self._reuse_hist: dict[int, int] = {}
        self._sample_count = 0

    @property
    def protecting_distance(self) -> int:
        """The current protecting distance ``dp``."""
        return self._dp

    # -- reuse-distance sampling ------------------------------------------ #
    def _record_reuse(self, tag: int) -> None:
        last = self._last_seen.get(tag)
        if last is not None:
            distance = self._clock - last
            if distance <= self.max_candidate_distance:
                self._reuse_hist[distance] = \
                    self._reuse_hist.get(distance, 0) + 1
        self._last_seen[tag] = self._clock
        self._sample_count += 1
        if self._sample_count % self.recompute_interval == 0:
            self._recompute_dp()

    def _recompute_dp(self) -> None:
        max_dp = self.max_candidate_distance
        if self._reuse_hist:
            self._dp = select_protecting_distance(
                self._reuse_hist, max_dp, self._sample_count)
        # Decay the sample so the policy adapts to phase changes.
        self._reuse_hist = {d: (c + 1) // 2 for d, c in self._reuse_hist.items() if c > 1}
        if len(self._last_seen) > 8 * max(self.capacity, 64):
            self._last_seen.clear()

    # -- policy ------------------------------------------------------------ #
    def _find_victim(self) -> int | None:
        """Oldest unprotected line, or None if every line is protected."""
        for tag in self._order:
            if self._expires[tag] <= self._clock:
                return tag
        return None

    def access(self, tag: int) -> bool:
        self._clock += 1
        self._record_reuse(tag)
        if tag in self._expires:
            # Hit: renew protection and recency.
            self._expires[tag] = self._clock + self._dp
            self._order.move_to_end(tag)
            return True
        if self.capacity == 0:
            return False
        if len(self._expires) >= self.capacity:
            victim = self._find_victim()
            if victim is None:
                # All lines protected: bypass the incoming line.
                return False
            del self._expires[victim]
            del self._order[victim]
        self._expires[tag] = self._clock + self._dp
        self._order[tag] = None
        return False

    def resident(self) -> Iterable[int]:
        return list(self._order.keys())

    def evict_one(self) -> int | None:
        if not self._order:
            return None
        victim = self._find_victim()
        if victim is None:
            victim = next(iter(self._order))
        del self._expires[victim]
        del self._order[victim]
        return victim

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, tag: int) -> bool:
        return tag in self._expires
