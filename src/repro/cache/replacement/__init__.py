"""Replacement policies for the cache substrate.

All policies implement :class:`~repro.cache.replacement.base.EvictionPolicy`
over a fully-associative region, so the same implementations back
set-associative caches (one region per set), partitioned caches (one region
per partition) and Talus shadow partitions.
"""

from .base import EvictionPolicy, PolicyFactory
from .belady import BeladyMINPolicy, belady_miss_curve_points
from .dip import DIPPolicy, dip_factory
from .lru import BIPPolicy, LIPPolicy, LRUPolicy, RandomPolicy
from .pdp import PDPPolicy, select_protecting_distance
from .rrip import (BRRIPPolicy, DRRIPPolicy, DuelingController, DuelRole,
                   SRRIPPolicy, drrip_factory)
from .tadrrip import TADRRIPPolicy

__all__ = [
    "EvictionPolicy",
    "PolicyFactory",
    "LRUPolicy",
    "LIPPolicy",
    "BIPPolicy",
    "RandomPolicy",
    "SRRIPPolicy",
    "BRRIPPolicy",
    "DRRIPPolicy",
    "TADRRIPPolicy",
    "DuelingController",
    "DuelRole",
    "drrip_factory",
    "DIPPolicy",
    "dip_factory",
    "PDPPolicy",
    "select_protecting_distance",
    "BeladyMINPolicy",
    "belady_miss_curve_points",
    "POLICY_REGISTRY",
    "make_policy",
]

#: Registry of single-region policy constructors by canonical name.  Policies
#: that need extra arguments (e.g. Belady needs the trace) are not listed.
POLICY_REGISTRY = {
    "LRU": LRUPolicy,
    "LIP": LIPPolicy,
    "BIP": BIPPolicy,
    "Random": RandomPolicy,
    "SRRIP": SRRIPPolicy,
    "BRRIP": BRRIPPolicy,
    "DRRIP": DRRIPPolicy,
    "DIP": DIPPolicy,
    "PDP": PDPPolicy,
    "TA-DRRIP": TADRRIPPolicy,
}


def make_policy(name: str, capacity: int, **kwargs) -> EvictionPolicy:
    """Construct a policy by name (see :data:`POLICY_REGISTRY`)."""
    try:
        cls = POLICY_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; known: {sorted(POLICY_REGISTRY)}") from None
    return cls(capacity, **kwargs)
