"""DIP: Dynamic Insertion Policy (Qureshi et al., ISCA 2007).

DIP set-duels plain LRU against BIP (bimodal LRU-insertion with
epsilon = 1/32) and uses the winner for follower sets.  It is the classic
thrash-resistant enhancement of LRU the paper discusses in Sec. II-A.

The implementation reuses the same :class:`DuelingController` as DRRIP
(the PSEL mechanism is identical; only the two competing insertion policies
differ).
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Iterable

from .base import EvictionPolicy, PolicyFactory
from .rrip import DuelRole, DuelingController

__all__ = ["DIPPolicy", "dip_factory"]


class DIPPolicy(EvictionPolicy):
    """LRU with dueled insertion: MRU insertion (LRU mode) vs BIP insertion."""

    name = "DIP"

    def __init__(self, capacity: int,
                 epsilon: float = 1.0 / 32.0,
                 controller: DuelingController | None = None,
                 role: DuelRole = DuelRole.ADDRESS_DUEL,
                 seed: int = 37,
                 leader_fraction: float = 1.0 / 16.0):
        super().__init__(capacity)
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.epsilon = epsilon
        self.controller = controller if controller is not None else DuelingController()
        self.role = role
        self._rng = random.Random(seed)
        self._lines: OrderedDict[int, None] = OrderedDict()
        self._leader_levels = max(1, int(round(leader_fraction * 1024)))

    # -- dueling --------------------------------------------------------- #
    def _address_role(self, tag: int) -> DuelRole:
        bucket = (tag * 0x9E3779B97F4A7C15) % 1024
        if bucket < self._leader_levels:
            return DuelRole.LEADER_SRRIP  # "policy A" constituency: plain LRU
        if bucket < 2 * self._leader_levels:
            return DuelRole.LEADER_BRRIP  # "policy B" constituency: BIP
        return DuelRole.FOLLOWER

    def _effective_role(self, tag: int) -> DuelRole:
        if self.role == DuelRole.ADDRESS_DUEL:
            return self._address_role(tag)
        return self.role

    def _use_bip(self, role: DuelRole) -> bool:
        if role == DuelRole.LEADER_SRRIP:
            return False
        if role == DuelRole.LEADER_BRRIP:
            return True
        return self.controller.prefer_bimodal()

    # -- policy ----------------------------------------------------------- #
    def access(self, tag: int) -> bool:
        lines = self._lines
        if tag in lines:
            lines.move_to_end(tag)
            return True
        role = self._effective_role(tag)
        self.controller.record_leader_miss(role)
        if self.capacity == 0:
            return False
        if len(lines) >= self.capacity:
            lines.popitem(last=False)
        lines[tag] = None
        if self._use_bip(role) and self._rng.random() >= self.epsilon:
            lines.move_to_end(tag, last=False)  # LRU-position insertion
        return False

    def resident(self) -> Iterable[int]:
        return self._lines.keys()

    def evict_one(self) -> int | None:
        if not self._lines:
            return None
        tag, _ = self._lines.popitem(last=False)
        return tag

    def __len__(self) -> int:
        return len(self._lines)

    def __contains__(self, tag: int) -> bool:
        return tag in self._lines


def dip_factory(num_regions: int, epsilon: float = 1.0 / 32.0,
                leader_regions_per_policy: int = 32,
                seed: int = 37) -> PolicyFactory:
    """Build a factory creating DIP regions with proper set dueling."""
    if num_regions <= 0:
        raise ValueError("num_regions must be positive")
    controller = DuelingController()
    leaders = min(leader_regions_per_policy, max(1, num_regions // 4))
    stride = max(1, num_regions // (2 * leaders))

    def factory(region_index: int, capacity: int) -> DIPPolicy:
        role = DuelRole.FOLLOWER
        if region_index % stride == 0:
            role = (DuelRole.LEADER_SRRIP
                    if (region_index // stride) % 2 == 0
                    else DuelRole.LEADER_BRRIP)
        return DIPPolicy(capacity, epsilon=epsilon, controller=controller,
                         role=role, seed=seed + region_index)

    return factory
