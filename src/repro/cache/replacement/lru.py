"""Recency-based policies: LRU, MRU-insertion variants (LIP/BIP) and Random.

LRU is the reference policy of the paper: its miss curve obeys the stack
property, can be monitored cheaply (UMONs), and is what Talus is primarily
applied to.  LIP and BIP are the thrash-resistant insertion variants that
DIP (``repro.cache.replacement.dip``) duels between.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Iterable

from .base import EvictionPolicy

__all__ = ["LRUPolicy", "LIPPolicy", "BIPPolicy", "RandomPolicy"]


class LRUPolicy(EvictionPolicy):
    """Least Recently Used.

    Lines are kept in an ordered map from least to most recently used; hits
    move the line to the MRU position; misses insert at MRU and evict the
    LRU line when full.
    """

    name = "LRU"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._lines: OrderedDict[int, None] = OrderedDict()

    def access(self, tag: int) -> bool:
        lines = self._lines
        if tag in lines:
            lines.move_to_end(tag)
            return True
        if self.capacity == 0:
            return False
        if len(lines) >= self.capacity:
            lines.popitem(last=False)
        lines[tag] = None
        return False

    def resident(self) -> Iterable[int]:
        return self._lines.keys()

    def evict_one(self) -> int | None:
        if not self._lines:
            return None
        tag, _ = self._lines.popitem(last=False)
        return tag

    def __len__(self) -> int:
        return len(self._lines)

    def __contains__(self, tag: int) -> bool:
        return tag in self._lines


class LIPPolicy(LRUPolicy):
    """LRU Insertion Policy: misses insert at the *LRU* position.

    A newly inserted line is promoted to MRU only if it is reused before
    being evicted.  This protects the resident working set against scanning
    (thrash resistance), at the cost of never adapting when the working set
    changes — which is why DIP duels it against plain LRU.
    """

    name = "LIP"

    def access(self, tag: int) -> bool:
        lines = self._lines
        if tag in lines:
            lines.move_to_end(tag)
            return True
        if self.capacity == 0:
            return False
        if len(lines) >= self.capacity:
            lines.popitem(last=False)
        lines[tag] = None
        lines.move_to_end(tag, last=False)  # insert at LRU position
        return False


class BIPPolicy(LRUPolicy):
    """Bimodal Insertion Policy: insert at MRU with small probability epsilon.

    The paper (following DIP) uses epsilon = 1/32: most misses insert at the
    LRU position (like LIP) but an occasional line is inserted at MRU so that
    the policy eventually adapts when the working set changes.
    """

    name = "BIP"

    def __init__(self, capacity: int, epsilon: float = 1.0 / 32.0, seed: int = 17):
        super().__init__(capacity)
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.epsilon = epsilon
        self._rng = random.Random(seed)

    def access(self, tag: int) -> bool:
        lines = self._lines
        if tag in lines:
            lines.move_to_end(tag)
            return True
        if self.capacity == 0:
            return False
        if len(lines) >= self.capacity:
            lines.popitem(last=False)
        lines[tag] = None
        if self._rng.random() >= self.epsilon:
            lines.move_to_end(tag, last=False)  # LRU insertion (the common case)
        return False


class RandomPolicy(EvictionPolicy):
    """Random replacement: evict a uniformly random resident line on a miss."""

    name = "Random"

    def __init__(self, capacity: int, seed: int = 23):
        super().__init__(capacity)
        self._tags: list[int] = []
        self._index: dict[int, int] = {}
        self._rng = random.Random(seed)

    def access(self, tag: int) -> bool:
        if tag in self._index:
            return True
        if self.capacity == 0:
            return False
        if len(self._tags) >= self.capacity:
            self._evict_random()
        self._index[tag] = len(self._tags)
        self._tags.append(tag)
        return False

    def _evict_random(self) -> int:
        pos = self._rng.randrange(len(self._tags))
        return self._remove_at(pos)

    def _remove_at(self, pos: int) -> int:
        victim = self._tags[pos]
        last = self._tags[-1]
        self._tags[pos] = last
        self._index[last] = pos
        self._tags.pop()
        del self._index[victim]
        return victim

    def resident(self) -> Iterable[int]:
        return list(self._tags)

    def evict_one(self) -> int | None:
        if not self._tags:
            return None
        return self._evict_random()

    def __len__(self) -> int:
        return len(self._tags)

    def __contains__(self, tag: int) -> bool:
        return tag in self._index
