"""TA-DRRIP: Thread-Aware DRRIP for shared caches (Jaleel et al., PACT 2008).

TA-DRRIP extends DRRIP's set dueling to be per-thread: each thread has its
own PSEL counter and duels SRRIP against BRRIP *for its own insertions*,
using TA-DIP-style feedback.  The paper uses TA-DRRIP as the
hardware-managed (unpartitioned) baseline in the multi-programmed
experiments (Figs. 12 and 13).

This policy is used by ``repro.sim.multicore`` for shared-cache runs where
each access carries a stream (core) identifier.
"""

from __future__ import annotations

import random
from typing import Iterable

from .base import EvictionPolicy
from .rrip import DuelRole, DuelingController, _RRIPBase

__all__ = ["TADRRIPPolicy"]


class TADRRIPPolicy(_RRIPBase):
    """Thread-aware DRRIP over a single shared region.

    Use :meth:`stream_access` so insertions are attributed to the right
    thread.  Plain :meth:`access` treats everything as stream 0 so the policy
    still satisfies the :class:`EvictionPolicy` interface.
    """

    name = "TA-DRRIP"

    def __init__(self, capacity: int, num_streams: int = 8,
                 m_bits: int = 2, epsilon: float = 1.0 / 32.0,
                 seed: int = 41, leader_fraction: float = 1.0 / 32.0):
        super().__init__(capacity, m_bits)
        if num_streams < 1:
            raise ValueError("num_streams must be >= 1")
        self.epsilon = epsilon
        self.num_streams = num_streams
        self._controllers = [DuelingController() for _ in range(num_streams)]
        self._rng = random.Random(seed)
        self._leader_levels = max(1, int(round(leader_fraction * 1024)))

    def _address_role(self, tag: int) -> DuelRole:
        bucket = (tag * 0x9E3779B97F4A7C15) % 1024
        if bucket < self._leader_levels:
            return DuelRole.LEADER_SRRIP
        if bucket < 2 * self._leader_levels:
            return DuelRole.LEADER_BRRIP
        return DuelRole.FOLLOWER

    def stream_access(self, tag: int, stream: int) -> bool:
        """Handle an access from core ``stream``; returns True on a hit."""
        if not 0 <= stream < self.num_streams:
            raise ValueError(f"stream must be in [0, {self.num_streams}), got {stream}")
        if tag in self._where:
            if self._where[tag] != 0:
                self._remove(tag)
                self._place(tag, 0)
            else:
                self._buckets[0].move_to_end(tag)
            return True
        role = self._address_role(tag)
        controller = self._controllers[stream]
        controller.record_leader_miss(role)
        if self.capacity == 0:
            return False
        if len(self._where) >= self.capacity:
            self.evict_one()
        self._place(tag, self._insertion_rrpv_for(role, controller))
        return False

    def _insertion_rrpv_for(self, role: DuelRole,
                            controller: DuelingController) -> int:
        if role == DuelRole.LEADER_SRRIP:
            bimodal = False
        elif role == DuelRole.LEADER_BRRIP:
            bimodal = True
        else:
            bimodal = controller.prefer_bimodal()
        if not bimodal:
            return self.max_rrpv - 1
        if self._rng.random() < self.epsilon:
            return self.max_rrpv - 1
        return self.max_rrpv

    # EvictionPolicy interface: single-stream fallback.
    def _insertion_rrpv(self, tag: int) -> int:
        return self._insertion_rrpv_for(self._address_role(tag), self._controllers[0])

    def _on_miss(self, tag: int) -> None:
        self._controllers[0].record_leader_miss(self._address_role(tag))

    def resident(self) -> Iterable[int]:
        return list(self._where.keys())
