"""Replacement-policy interface.

Every policy manages one *region* of cache lines with a capacity expressed
in lines.  A region may be a single set of a set-associative cache (capacity
= associativity), an entire fully-associative partition (capacity = the
partition's line budget), or the whole cache.  Structuring policies this way
lets the same policy implementations back every cache organization in
``repro.cache`` — set-associative caches, way/set-partitioned caches, the
Vantage-like fine-grained scheme, and Talus shadow partitions.

The contract of :meth:`EvictionPolicy.access` is intentionally high level
("handle one access, tell me if it hit") rather than victim-selection-only,
so each policy can keep whatever internal structures make it efficient.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterable

__all__ = ["EvictionPolicy", "PolicyFactory"]

#: A callable building a policy for a region of the given capacity.  The
#: second argument is a region index (e.g. the set index) so that factories
#: implementing set dueling can designate leader regions.
PolicyFactory = Callable[[int, int], "EvictionPolicy"]


class EvictionPolicy(ABC):
    """A replacement policy managing one fully-associative region of lines.

    Subclasses must maintain at most ``capacity`` resident lines and decide
    which line to evict when a new line is inserted into a full region.

    Attributes
    ----------
    name:
        Short policy name used in reports ("LRU", "SRRIP", ...).
    capacity:
        Maximum number of resident lines.  A capacity of zero is legal and
        means every access misses and nothing is retained.
    """

    name: str = "base"

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self.capacity = int(capacity)

    # ------------------------------------------------------------------ #
    # Mandatory interface
    # ------------------------------------------------------------------ #
    @abstractmethod
    def access(self, tag: int) -> bool:
        """Handle one access to ``tag``.

        Returns ``True`` on a hit.  On a miss the policy inserts the line
        (unless it chooses to bypass, e.g. PDP under heavy thrash), evicting
        a victim if the region is full.
        """

    @abstractmethod
    def resident(self) -> Iterable[int]:
        """Iterate over the tags currently resident in the region."""

    @abstractmethod
    def evict_one(self) -> int | None:
        """Force-evict one line chosen by the policy; return its tag.

        Used when a region's capacity is reduced at reconfiguration time.
        Returns ``None`` if the region is empty.
        """

    # ------------------------------------------------------------------ #
    # Shared behaviour
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return sum(1 for _ in self.resident())

    def __contains__(self, tag: int) -> bool:
        return any(t == tag for t in self.resident())

    def set_capacity(self, capacity: int) -> list[int]:
        """Change the region's capacity, evicting overflow lines if shrinking.

        Returns the list of evicted tags (empty when growing).
        """
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self.capacity = int(capacity)
        evicted: list[int] = []
        while len(self) > self.capacity:
            victim = self.evict_one()
            if victim is None:
                break
            evicted.append(victim)
        return evicted

    def reset(self) -> None:
        """Drop all resident lines and any adaptive state.

        The default implementation force-evicts everything; subclasses with
        extra adaptive state (e.g. dueling counters) should extend it.
        """
        while True:
            victim = self.evict_one()
            if victim is None:
                break

    def __repr__(self) -> str:
        return f"{type(self).__name__}(capacity={self.capacity}, used={len(self)})"
