"""Re-Reference Interval Prediction policies: SRRIP, BRRIP and DRRIP.

RRIP (Jaleel et al., ISCA 2010) associates an M-bit re-reference prediction
value (RRPV) with each line.  Lines predicted to be re-referenced soon have
low RRPV; victims are chosen among lines with the maximum RRPV, aging all
lines when none is at the maximum.

* **SRRIP** (static): misses insert with a *long* re-reference prediction
  (RRPV = max - 1); hits promote to RRPV = 0 (hit priority).
* **BRRIP** (bimodal): misses insert at RRPV = max most of the time and at
  max - 1 with a small probability epsilon — the RRIP analogue of BIP, which
  resists thrashing.
* **DRRIP** (dynamic): set-duels SRRIP against BRRIP with a PSEL counter and
  uses the winner in follower sets.

The paper evaluates SRRIP and DRRIP with M = 2 bits and epsilon = 1/32,
which are the defaults here.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from enum import Enum
from typing import Iterable

from .base import EvictionPolicy, PolicyFactory

__all__ = [
    "SRRIPPolicy",
    "BRRIPPolicy",
    "DRRIPPolicy",
    "DuelingController",
    "DuelRole",
    "drrip_factory",
]


class _RRIPBase(EvictionPolicy):
    """Shared machinery for the RRIP family: RRPV buckets and aging."""

    def __init__(self, capacity: int, m_bits: int = 2):
        super().__init__(capacity)
        if m_bits < 1 or m_bits > 8:
            raise ValueError("m_bits must be in [1, 8]")
        self.m_bits = m_bits
        self.max_rrpv = (1 << m_bits) - 1
        # One ordered bucket per RRPV value; within a bucket, insertion order
        # breaks ties (oldest first).
        self._buckets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.max_rrpv + 1)]
        self._where: dict[int, int] = {}  # tag -> current RRPV

    # -- bookkeeping ---------------------------------------------------- #
    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, tag: int) -> bool:
        return tag in self._where

    def resident(self) -> Iterable[int]:
        return list(self._where.keys())

    def _remove(self, tag: int) -> None:
        rrpv = self._where.pop(tag)
        del self._buckets[rrpv][tag]

    def _place(self, tag: int, rrpv: int) -> None:
        self._where[tag] = rrpv
        self._buckets[rrpv][tag] = None

    def _age_until_victim_available(self) -> None:
        """Increment all RRPVs (saturating) until some line has max RRPV."""
        while not self._buckets[self.max_rrpv]:
            # Shift every bucket up by one, saturating at max.
            top = self._buckets[self.max_rrpv]
            for rrpv in range(self.max_rrpv - 1, -1, -1):
                bucket = self._buckets[rrpv]
                if not bucket:
                    continue
                for tag in bucket:
                    self._where[tag] = rrpv + 1
                if rrpv + 1 == self.max_rrpv:
                    top.update(bucket)
                    bucket.clear()
                else:
                    self._buckets[rrpv + 1] = bucket
                    self._buckets[rrpv] = OrderedDict()
            if not self._where:
                break

    def evict_one(self) -> int | None:
        if not self._where:
            return None
        self._age_until_victim_available()
        bucket = self._buckets[self.max_rrpv]
        tag, _ = bucket.popitem(last=False)
        del self._where[tag]
        return tag

    # -- policy behaviour ----------------------------------------------- #
    def _insertion_rrpv(self, tag: int) -> int:
        raise NotImplementedError

    def _on_miss(self, tag: int) -> None:
        """Hook for adaptive subclasses (dueling)."""

    def access(self, tag: int) -> bool:
        if tag in self._where:
            # Hit priority: promote to RRPV 0.
            if self._where[tag] != 0:
                self._remove(tag)
                self._place(tag, 0)
            else:
                self._buckets[0].move_to_end(tag)
            return True
        self._on_miss(tag)
        if self.capacity == 0:
            return False
        if len(self._where) >= self.capacity:
            self.evict_one()
        self._place(tag, min(self._insertion_rrpv(tag), self.max_rrpv))
        return False


class SRRIPPolicy(_RRIPBase):
    """Static RRIP: insert with long re-reference prediction (max - 1)."""

    name = "SRRIP"

    def _insertion_rrpv(self, tag: int) -> int:
        return self.max_rrpv - 1


class BRRIPPolicy(_RRIPBase):
    """Bimodal RRIP: insert at max RRPV, occasionally (epsilon) at max - 1."""

    name = "BRRIP"

    def __init__(self, capacity: int, m_bits: int = 2,
                 epsilon: float = 1.0 / 32.0, seed: int = 29):
        super().__init__(capacity, m_bits)
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.epsilon = epsilon
        self._rng = random.Random(seed)

    def _insertion_rrpv(self, tag: int) -> int:
        if self._rng.random() < self.epsilon:
            return self.max_rrpv - 1
        return self.max_rrpv


class DuelRole(Enum):
    """Role a region plays in DRRIP set dueling."""

    LEADER_SRRIP = "leader_srrip"
    LEADER_BRRIP = "leader_brrip"
    FOLLOWER = "follower"
    #: Standalone mode (single fully-associative region): a small hashed
    #: fraction of addresses act as SRRIP/BRRIP "constituencies" instead of
    #: dedicating whole sets, which preserves dueling behaviour when there
    #: are no sets to dedicate.
    ADDRESS_DUEL = "address_duel"


class DuelingController:
    """Shared PSEL counter for set dueling (DIP/DRRIP style).

    Misses in SRRIP-leader regions increment PSEL, misses in BRRIP-leader
    regions decrement it; follower regions use BRRIP when PSEL is below the
    midpoint (i.e. SRRIP has been missing more).
    """

    def __init__(self, bits: int = 10):
        if bits < 2 or bits > 20:
            raise ValueError("bits must be in [2, 20]")
        self.max_value = (1 << bits) - 1
        self.psel = self.max_value // 2

    def record_leader_miss(self, role: DuelRole) -> None:
        if role == DuelRole.LEADER_SRRIP:
            self.psel = min(self.max_value, self.psel + 1)
        elif role == DuelRole.LEADER_BRRIP:
            self.psel = max(0, self.psel - 1)

    def prefer_bimodal(self) -> bool:
        """True when followers should use the bimodal (BRRIP/BIP) insertion."""
        return self.psel > self.max_value // 2


class DRRIPPolicy(_RRIPBase):
    """Dynamic RRIP: duels SRRIP against BRRIP insertion via a shared PSEL."""

    name = "DRRIP"

    def __init__(self, capacity: int, m_bits: int = 2,
                 epsilon: float = 1.0 / 32.0,
                 controller: DuelingController | None = None,
                 role: DuelRole = DuelRole.ADDRESS_DUEL,
                 seed: int = 31,
                 leader_fraction: float = 1.0 / 16.0):
        super().__init__(capacity, m_bits)
        self.epsilon = epsilon
        self.controller = controller if controller is not None else DuelingController()
        self.role = role
        self._rng = random.Random(seed)
        # For ADDRESS_DUEL mode: addresses hashing below these thresholds are
        # SRRIP / BRRIP constituencies respectively.
        self._leader_levels = max(1, int(round(leader_fraction * 1024)))

    def _address_role(self, tag: int) -> DuelRole:
        bucket = (tag * 0x9E3779B97F4A7C15) % 1024
        if bucket < self._leader_levels:
            return DuelRole.LEADER_SRRIP
        if bucket < 2 * self._leader_levels:
            return DuelRole.LEADER_BRRIP
        return DuelRole.FOLLOWER

    def _effective_role(self, tag: int) -> DuelRole:
        if self.role == DuelRole.ADDRESS_DUEL:
            return self._address_role(tag)
        return self.role

    def _on_miss(self, tag: int) -> None:
        self.controller.record_leader_miss(self._effective_role(tag))

    def _insertion_rrpv(self, tag: int) -> int:
        role = self._effective_role(tag)
        if role == DuelRole.LEADER_SRRIP:
            bimodal = False
        elif role == DuelRole.LEADER_BRRIP:
            bimodal = True
        else:
            bimodal = self.controller.prefer_bimodal()
        if not bimodal:
            return self.max_rrpv - 1
        if self._rng.random() < self.epsilon:
            return self.max_rrpv - 1
        return self.max_rrpv


def drrip_factory(num_regions: int, m_bits: int = 2,
                  epsilon: float = 1.0 / 32.0,
                  leader_regions_per_policy: int = 32,
                  seed: int = 31) -> PolicyFactory:
    """Build a :data:`PolicyFactory` creating DRRIP regions with set dueling.

    ``leader_regions_per_policy`` regions are dedicated to SRRIP and the same
    number to BRRIP (spread evenly across the index space); the rest follow
    the shared PSEL.  Use this when building a set-associative DRRIP cache.
    """
    if num_regions <= 0:
        raise ValueError("num_regions must be positive")
    controller = DuelingController()
    leaders = min(leader_regions_per_policy, max(1, num_regions // 4))
    stride = max(1, num_regions // (2 * leaders))

    def factory(region_index: int, capacity: int) -> DRRIPPolicy:
        role = DuelRole.FOLLOWER
        if region_index % stride == 0:
            role = (DuelRole.LEADER_SRRIP
                    if (region_index // stride) % 2 == 0
                    else DuelRole.LEADER_BRRIP)
        return DRRIPPolicy(capacity, m_bits=m_bits, epsilon=epsilon,
                           controller=controller, role=role,
                           seed=seed + region_index)

    return factory
