"""Policy-factory construction by name, with correct set-dueling wiring.

Dueling policies (DIP, DRRIP) need a PSEL counter *shared across sets* and a
few dedicated leader sets; building them with one independent instance per
set silently disables adaptation.  This module centralizes the wiring so
experiments can just ask for a policy by name.
"""

from __future__ import annotations

from .replacement import (BIPPolicy, BRRIPPolicy, DIPPolicy, DRRIPPolicy,
                          LIPPolicy, LRUPolicy, PDPPolicy, RandomPolicy,
                          SRRIPPolicy, TADRRIPPolicy)
from .replacement.base import PolicyFactory
from .replacement.dip import dip_factory
from .replacement.rrip import drrip_factory

__all__ = ["named_policy_factory", "POLICY_NAMES"]

#: Policy names accepted by :func:`named_policy_factory`.
POLICY_NAMES = ("LRU", "LIP", "BIP", "Random", "SRRIP", "BRRIP", "DRRIP",
                "DIP", "PDP", "TA-DRRIP")


def named_policy_factory(name: str, num_regions: int, **kwargs) -> PolicyFactory:
    """Return a per-region policy factory for ``name``.

    Parameters
    ----------
    name:
        One of :data:`POLICY_NAMES`.
    num_regions:
        Number of regions (sets) the cache will create.  Needed so dueling
        policies can designate leader sets and share their PSEL counter.
    kwargs:
        Extra keyword arguments forwarded to the policy constructor
        (e.g. ``epsilon`` for BIP/BRRIP).
    """
    if num_regions <= 0:
        raise ValueError("num_regions must be positive")
    simple = {
        "LRU": LRUPolicy,
        "LIP": LIPPolicy,
        "BIP": BIPPolicy,
        "Random": RandomPolicy,
        "SRRIP": SRRIPPolicy,
        "BRRIP": BRRIPPolicy,
        "PDP": PDPPolicy,
        "TA-DRRIP": TADRRIPPolicy,
    }
    if name in simple:
        cls = simple[name]

        def factory(region_index: int, capacity: int):
            return cls(capacity, **kwargs)

        return factory
    if name == "DRRIP":
        return drrip_factory(num_regions, **kwargs)
    if name == "DIP":
        return dip_factory(num_regions, **kwargs)
    raise ValueError(f"unknown policy {name!r}; known: {POLICY_NAMES}")
