"""Policy-factory construction by name, with correct set-dueling wiring.

Dueling policies (DIP, DRRIP) need a PSEL counter *shared across sets* and a
few dedicated leader sets; building them with one independent instance per
set silently disables adaptation.  This module centralizes the wiring so
experiments can just ask for a policy by name.
"""

from __future__ import annotations

from .arraycache import ARRAY_POLICIES
from .replacement import (BIPPolicy, BRRIPPolicy, DIPPolicy, DRRIPPolicy,
                          LIPPolicy, LRUPolicy, PDPPolicy, RandomPolicy,
                          SRRIPPolicy, TADRRIPPolicy)
from .replacement.base import PolicyFactory
from .replacement.dip import dip_factory
from .replacement.rrip import drrip_factory

__all__ = ["named_policy_factory", "POLICY_NAMES", "BACKENDS",
           "SEEDED_POLICIES", "cache_geometry", "resolve_backend",
           "build_cache"]

#: Policy names accepted by the spec layer.  All of them (``Belady``
#: included) run on the array backend; :func:`named_policy_factory` covers
#: the online subset (``Belady`` is offline — it has no per-region factory).
POLICY_NAMES = ("LRU", "LIP", "BIP", "Random", "SRRIP", "BRRIP", "DRRIP",
                "DIP", "PDP", "TA-DRRIP", "Belady")

#: Cache backends accepted by :func:`build_cache`.  "object" is the
#: reference per-set policy-object model; "array" is the numpy/native model
#: (:mod:`repro.cache.arraycache`).  "auto" now resolves to the array model
#: for *every* policy: the exact tier
#: (:data:`~repro.cache.arraycache.ARRAY_EXACT_POLICIES`: LRU, LIP, SRRIP,
#: PDP) is bit-identical to the reference, the randomized tier (BIP, DIP,
#: BRRIP, DRRIP, Random, TA-DRRIP) is seeded-deterministic (splitmix64
#: stream instead of the object model's Mersenne twisters), and Belady is
#: exact on miss counts.  Ask for ``backend="object"`` explicitly to run
#: the reference model.
BACKENDS = ("object", "array", "auto")

#: Policies whose constructors take a ``seed`` argument (their behaviour
#: involves randomized insertion/eviction decisions).
SEEDED_POLICIES = ("BIP", "Random", "BRRIP", "DRRIP", "DIP", "TA-DRRIP")


def named_policy_factory(name: str, num_regions: int, **kwargs) -> PolicyFactory:
    """Return a per-region policy factory for ``name``.

    Parameters
    ----------
    name:
        One of :data:`POLICY_NAMES`.
    num_regions:
        Number of regions (sets) the cache will create.  Needed so dueling
        policies can designate leader sets and share their PSEL counter.
    kwargs:
        Extra keyword arguments forwarded to the policy constructor
        (e.g. ``epsilon`` for BIP/BRRIP).
    """
    if num_regions <= 0:
        raise ValueError("num_regions must be positive")
    if name == "Belady":
        raise ValueError(
            "Belady is offline and replays one attached trace; it has no "
            "per-region policy factory — build it with "
            "CacheSpec(policy='Belady').with_trace(trace) or "
            "BeladyMINPolicy(capacity, trace).  Online policies: "
            + ", ".join(n for n in POLICY_NAMES if n != "Belady"))
    simple = {
        "LRU": LRUPolicy,
        "LIP": LIPPolicy,
        "BIP": BIPPolicy,
        "Random": RandomPolicy,
        "SRRIP": SRRIPPolicy,
        "BRRIP": BRRIPPolicy,
        "PDP": PDPPolicy,
        "TA-DRRIP": TADRRIPPolicy,
    }
    if name in simple:
        cls = simple[name]

        def factory(region_index: int, capacity: int):
            return cls(capacity, **kwargs)

        return factory
    if name == "DRRIP":
        return drrip_factory(num_regions, **kwargs)
    if name == "DIP":
        return dip_factory(num_regions, **kwargs)
    raise ValueError(f"unknown policy {name!r}; known: {POLICY_NAMES}")


def cache_geometry(capacity_lines: int, ways: int) -> tuple[int, int]:
    """Geometry ``(num_sets, effective_ways)`` for a capacity in lines.

    The number of sets is ``capacity_lines // ways`` (at least 1); if the
    capacity is smaller than one full set the cache degenerates to a single
    set with ``capacity_lines`` ways, preserving total capacity.  This is
    the mapping every sweep and experiment driver uses, centralized so all
    backends agree on it.
    """
    if capacity_lines <= 0:
        raise ValueError("capacity_lines must be positive")
    if ways <= 0:
        raise ValueError("ways must be positive")
    if capacity_lines < ways:
        return 1, capacity_lines
    return capacity_lines // ways, ways


def resolve_backend(backend: str, policy: str) -> str:
    """Resolve a backend name to "object" or "array" for ``policy``.

    The policy matrix is total on the array backend, so "auto" resolves
    to "array" for every policy.  The exact tier
    (:data:`~repro.cache.arraycache.ARRAY_EXACT_POLICIES`) is
    bit-identical to the reference object model; the randomized policies
    (BIP, DIP, BRRIP, DRRIP, Random, TA-DRRIP) are deterministic per seed
    but draw from a splitmix64 stream instead of the object model's
    Mersenne twisters; Belady matches the object MIN's miss counts
    exactly.  Ask for ``backend="object"`` explicitly to run the
    reference model (Belady excepted: MIN is offline and fully
    associative, so only the array organization exists).
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; valid backends: "
                         f"{', '.join(BACKENDS)}")
    if policy not in POLICY_NAMES:
        raise ValueError(f"unknown policy {policy!r}; valid policies: "
                         f"{', '.join(POLICY_NAMES)}")
    if policy == "Belady":
        if backend == "object":
            raise ValueError(
                "Belady has no object-backend organization (MIN is offline "
                "and fully associative); use backend='array' or 'auto'")
        return "array"
    if backend == "auto":
        return "array"
    if backend == "array" and policy not in ARRAY_POLICIES:
        raise ValueError(
            f"the array backend does not implement {policy!r} "
            f"(supported: {ARRAY_POLICIES}); use backend='object' or 'auto'")
    return backend


def build_cache(capacity_lines: int, ways: int = 16, policy: str = "LRU",
                backend: str = "object", seed: int | None = None,
                hashed_index: bool = False, index_seed: int = 0,
                **policy_kwargs):
    """Build a simulatable cache of ``capacity_lines`` for ``policy``.

    Legacy shim over the declarative spec API: the arguments are packed
    into a :class:`repro.cache.spec.CacheSpec` and built through it, so
    this signature and ``build(CacheSpec(...))`` are interchangeable.

    Returns either a :class:`~repro.cache.cache.SetAssociativeCache` (object
    backend) or an :class:`~repro.cache.arraycache.ArraySetAssociativeCache`
    (array backend); both expose ``access``/``run``/``stats``.

    Parameters
    ----------
    backend:
        One of :data:`BACKENDS`.
    seed:
        Deterministic seed for policies with randomized behaviour; ignored
        (and therefore reproducible by construction) for deterministic
        policies.  ``None`` keeps each policy's historical default seed.
    hashed_index, index_seed:
        Set-index scheme, honoured identically by both backends: modulo
        indexing by default, or the :func:`repro.cache.hashing.set_index`
        hash when ``hashed_index`` is true.
    """
    from .spec import CacheSpec
    return CacheSpec(capacity_lines=capacity_lines, ways=ways, policy=policy,
                     backend=backend, seed=seed, hashed_index=hashed_index,
                     index_seed=index_seed,
                     policy_kwargs=tuple(sorted(policy_kwargs.items()))).build()
