"""Thread-parallel batched replay over the native kernels.

The native replay kernels (:mod:`repro.cache._native`) release the GIL for
the duration of each call and keep *all* state in caller-owned arrays, so
N independent config replays are embarrassingly parallel: no two tasks
share a byte of mutable state.  This module is the Python side of the
``batch_run_threaded`` dispatcher in ``_sweepkernel.c``:

* a :class:`ReplayTask` packages one cache's replay of one trace — either
  as a flat ``BatchTask`` argument record for the native dispatcher, or as
  a pure-Python fallback closure when the cache (or the host) has no
  kernel path;
* :func:`run_tasks` packs all native tasks into one ctypes array, makes a
  *single* ``batch_run_threaded`` call (one GIL release, C worker threads
  inside), then commits each task's statistics exactly as the serial entry
  points would.

Because the per-config replay code is untouched — a task is just a
flattened call into the same kernel the serial path uses — results are
**bit-identical to serial execution at any thread count**: the kernels
never read another task's state, and each task's misses land in its own
``result``/``miss_out`` slots.  ``REPRO_THREADS`` (or an explicit
``threads=``) controls the worker width; width 1 *is* the serial loop.

Caches advertise the fast path by implementing ``replay_task``
(:class:`~repro.cache.arraycache.ArraySetAssociativeCache`,
:class:`~repro.cache.partition.array.ArrayPartitionedCache`,
:class:`~repro.cache.partition.array.ArrayVantageCache`,
:class:`~repro.cache.talus_cache.TalusCache`).  Tasks built without a
kernel degrade to their fallback closure inside the same
:func:`run_tasks` call, so callers never special-case ``REPRO_NATIVE=0``.
"""

from __future__ import annotations

import ctypes
from typing import Callable, Iterable, Sequence

import numpy as np

from ._native import BatchTask, get_kernel, native_available, resolve_threads

__all__ = ["ReplayTask", "run_tasks", "resolve_parallel", "PARALLEL_MODES",
           "i64_ptr", "u64_ptr"]

#: Values accepted by the drivers' ``parallel=`` parameter.
PARALLEL_MODES = ("auto", "threads", "processes")


def resolve_parallel(mode: str) -> str:
    """Resolve a ``parallel=`` mode to "threads" or "processes".

    "auto" prefers threads exactly when the native kernel (and therefore
    the GIL-releasing batch dispatcher) is available; without it the
    pure-Python replay would serialize on the GIL, so the process-pool
    path is kept.
    """
    if mode not in PARALLEL_MODES:
        raise ValueError(f"unknown parallel mode {mode!r}; "
                         f"known: {PARALLEL_MODES}")
    if mode == "auto":
        return "threads" if native_available() else "processes"
    return mode


def i64_ptr(array: np.ndarray):
    """``int64_t *`` for a C-contiguous int64 array (no copy, no cast).

    Raises rather than copies: these arrays are the caller's live
    simulation state, and a silent copy would discard the kernel's writes.
    """
    if array.dtype != np.int64 or not array.flags["C_CONTIGUOUS"]:
        raise ValueError("state arrays must be C-contiguous int64")
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))


def u64_ptr(array: np.ndarray):
    """``uint64_t *`` for a C-contiguous uint64 array (see :func:`i64_ptr`)."""
    if array.dtype != np.uint64 or not array.flags["C_CONTIGUOUS"]:
        raise ValueError("RNG state must be C-contiguous uint64")
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_uint64))


class ReplayTask:
    """One cache's replay of one trace, executable in a threaded batch.

    Parameters
    ----------
    fields:
        ``BatchTask`` member values (pointers from :func:`i64_ptr` /
        :func:`u64_ptr`, plain ints, and ``epsilon`` as float) for the
        native dispatcher, or ``None`` when this task can only run through
        its fallback.
    refs:
        Arrays that must stay alive while the kernel may dereference the
        packed pointers (the address trace and any buffers created for
        this task; long-lived cache state is kept alive by the cache).
    commit:
        Called with the task's non-negative kernel result after the batch
        returns; folds the replay into the cache's statistics exactly as
        the serial entry point would.
    fallback:
        Zero-argument closure replaying through the cache's normal
        (serial) entry point — used when ``fields`` is ``None``.
    misses:
        Optional caller-visible per-partition miss array (partitioned
        kinds); the kernel writes it in place, the fallback must fill it.
    """

    __slots__ = ("fields", "refs", "misses", "_commit", "_fallback",
                 "_after")

    def __init__(self, *, fields: dict | None = None,
                 refs: Sequence[np.ndarray] = (),
                 commit: Callable[[int], None] | None = None,
                 fallback: Callable[[], None] | None = None,
                 misses: np.ndarray | None = None):
        if fields is None and fallback is None:
            raise ValueError("a ReplayTask needs fields or a fallback")
        self.fields = fields
        self.refs = tuple(refs)
        self.misses = misses
        self._commit = commit
        self._fallback = fallback
        self._after: list[Callable[[], None]] = []

    @property
    def native(self) -> bool:
        """Whether this task joins the native batched dispatch."""
        return self.fields is not None

    def add_callback(self, hook: Callable[[], None]) -> "ReplayTask":
        """Chain a post-commit hook (runs on both paths, in add order).

        This is how wrappers fold their own statistics on top of the base
        cache's commit — e.g. :class:`~repro.cache.talus_cache.TalusCache`
        adding its logical-partition fold over the partitioned base task.
        """
        self._after.append(hook)
        return self

    def commit(self, result: int) -> None:
        """Fold a finished native task into the cache's statistics."""
        if result < 0:
            raise RuntimeError(
                f"native batched replay rejected a task (result={result})")
        if self._commit is not None:
            self._commit(int(result))
        for hook in self._after:
            hook()

    def run_fallback(self) -> None:
        """Replay through the serial fallback (identical results)."""
        self._fallback()
        for hook in self._after:
            hook()


def run_tasks(tasks: Iterable[ReplayTask],
              threads: int | None = None) -> list[ReplayTask]:
    """Execute a batch of independent replay tasks, threaded when possible.

    All native tasks are packed into one ctypes array and dispatched in a
    single ``batch_run_threaded`` call — the GIL is released once for the
    whole batch and the C worker threads claim tasks from an atomic work
    queue.  Fallback-only tasks then run serially in submission order.
    ``threads`` defaults to :func:`~repro.cache._native.resolve_threads`
    (``REPRO_THREADS`` or the host core count); any width, including 1,
    produces bit-identical results.
    """
    tasks = list(tasks)
    native = [t for t in tasks if t.native]
    if native:
        kernel = get_kernel()
        if kernel is None or not kernel.has_batch:
            # Tasks were built against a kernel that has since become
            # unavailable (should not happen: replay_task checks first).
            raise RuntimeError("native kernel unavailable for batched tasks")
        packed = (BatchTask * len(native))()
        for slot, task in zip(packed, native):
            for name, value in task.fields.items():
                setattr(slot, name, value)
        kernel.batch_run_threaded(packed, len(native),
                                  resolve_threads(threads))
        for slot, task in zip(packed, native):
            task.commit(int(slot.result))
    for task in tasks:
        if not task.native:
            task.run_fallback()
    return tasks
