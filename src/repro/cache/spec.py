"""Declarative construction specs for every cache organization.

The construction APIs grew organically: ``build_cache(policy, backend=...)``
for plain caches, ``make_partitioned_cache(scheme, ...)`` plus per-scheme
constructors for partitioned caches, and ``TalusCache(base, num_logical)``
for the Talus wrapper — each with its own ad-hoc argument bundle.  This
module replaces them with three frozen-dataclass *specs* and one entry
point:

* :class:`CacheSpec` — geometry + policy + indexing + backend of a plain
  set-associative cache;
* :class:`PartitionSpec` — a partitioning scheme over such a cache, with
  per-partition capacity targets;
* :class:`TalusSpec` — the Talus wrapper: a shadow-partition pair per
  logical partition plus the planned :class:`~repro.core.talus.TalusConfig`
  for each.

``build(spec)`` turns any of them into a simulatable cache, routing to the
object model or the array/native fast path according to the spec's
``backend`` field ("auto" picks the fast path exactly where it is
bit-identical to the reference).  Existing classes round-trip through
``to_spec()``/``from_spec()``: ``build(cache.to_spec())`` reproduces the
organization as currently configured, and ``build(spec).to_spec()`` is a
fixed point.

Because specs are frozen dataclasses of plain values they are hashable,
comparable and picklable — a sweep over Talus configurations can ship its
specs to process-pool workers, which the old closure-based builders could
not.

The legacy signatures keep working as shims: ``build_cache(...)`` builds a
:class:`CacheSpec` internally, and ``make_partitioned_cache`` remains the
object-backend factory that :meth:`PartitionSpec.build` itself uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from ..core.talus import TalusConfig
from .arraycache import (ARRAY_POLICIES, ArrayBeladyCache,
                         ArraySetAssociativeCache)
from .cache import SetAssociativeCache, materialize_addresses
from .factory import (BACKENDS, POLICY_NAMES, SEEDED_POLICIES, cache_geometry,
                      named_policy_factory, resolve_backend)
from .partition import (ARRAY_SCHEMES, SCHEME_REGISTRY, ArrayPartitionedCache,
                        ArrayVantageCache, make_partitioned_cache,
                        partitionable_lines_for)
from .talus_cache import TalusCache

__all__ = ["CacheSpec", "PartitionSpec", "TalusSpec", "build"]


def _freeze_kwargs(kwargs) -> tuple:
    """Normalize keyword arguments to a sorted, hashable tuple of pairs."""
    if not kwargs:
        return ()
    if isinstance(kwargs, Mapping):
        items = kwargs.items()
    else:
        items = [tuple(pair) for pair in kwargs]
    return tuple(sorted((str(k), v) for k, v in items))


def _check_policy(policy: str) -> None:
    if policy not in POLICY_NAMES:
        raise ValueError(f"unknown policy {policy!r}; valid policies: "
                         f"{', '.join(POLICY_NAMES)}")


def _check_backend(backend: str) -> None:
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; valid backends: "
                         f"{', '.join(BACKENDS)}")


def _check_scheme(scheme: str) -> None:
    if scheme not in SCHEME_REGISTRY:
        raise ValueError(f"unknown partitioning scheme {scheme!r}; valid "
                         f"schemes: {', '.join(sorted(SCHEME_REGISTRY))}")


@dataclass(frozen=True)
class CacheSpec:
    """Declarative description of one set-associative cache.

    Attributes
    ----------
    capacity_lines:
        Total capacity in lines; the set count is derived with
        :func:`repro.cache.factory.cache_geometry`.
    ways:
        Associativity (capacities below one set degenerate to a single
        ``capacity_lines``-way set).
    policy:
        One of :data:`repro.cache.factory.POLICY_NAMES`.  ``"Belady"``
        (offline MIN) builds an :class:`ArrayBeladyCache` and needs the
        trace attached via :meth:`with_trace` before :meth:`build`.
    backend:
        "object", "array" or "auto" ("auto" resolves to the array/native
        core for every policy — bit-identical on the exact tier,
        seeded-deterministic on the randomized tier, miss-count-exact for
        Belady).
    seed:
        Deterministic seed for the randomized policies; ignored otherwise.
    hashed_index, index_seed:
        Set-index scheme, honoured identically by both backends.
    policy_kwargs:
        Extra policy parameters as ``(name, value)`` pairs (a mapping is
        accepted and frozen).
    trace:
        Optional attached trace for offline policies, set through
        :meth:`with_trace`.  Excluded from equality/hashing: two Belady
        specs compare by configuration, not by replay payload.
    """

    capacity_lines: int
    ways: int = 16
    policy: str = "LRU"
    backend: str = "auto"
    seed: int | None = None
    hashed_index: bool = False
    index_seed: int = 0
    policy_kwargs: tuple = ()
    trace: object = field(default=None, compare=False, repr=False)

    def __post_init__(self):
        object.__setattr__(self, "policy_kwargs",
                           _freeze_kwargs(self.policy_kwargs))
        if self.capacity_lines <= 0:
            raise ValueError("capacity_lines must be positive")
        if self.ways <= 0:
            raise ValueError("ways must be positive")
        _check_policy(self.policy)
        _check_backend(self.backend)

    def with_trace(self, trace) -> "CacheSpec":
        """This spec with ``trace`` attached (materialized to int64).

        Offline policies (Belady) replay exactly this trace; online
        policies ignore the attachment.
        """
        return replace(self, trace=materialize_addresses(trace))

    @classmethod
    def from_mb(cls, size_mb: float, **kwargs) -> "CacheSpec":
        """A spec for a capacity in paper MB (the experiment-layer unit)."""
        from ..workloads.scale import paper_mb_to_lines
        return cls(capacity_lines=paper_mb_to_lines(size_mb), **kwargs)

    @property
    def geometry(self) -> tuple[int, int]:
        """Derived ``(num_sets, effective_ways)``."""
        return cache_geometry(self.capacity_lines, self.ways)

    def resolved_backend(self) -> str:
        """The concrete backend ("object" or "array") this spec builds on."""
        return resolve_backend(self.backend, self.policy)

    def build(self):
        """Instantiate the cache this spec describes."""
        backend = self.resolved_backend()
        kwargs = dict(self.policy_kwargs)
        if self.policy == "Belady":
            if self.trace is None:
                raise ValueError(
                    "CacheSpec(policy='Belady') is offline and needs its "
                    "trace attached before build: call "
                    "spec.with_trace(trace).  Online policies (no trace "
                    "required): " + ", ".join(
                        n for n in POLICY_NAMES if n != "Belady"))
            cache = ArrayBeladyCache(self.capacity_lines, self.trace,
                                     **kwargs)
            cache._built_spec = replace(self, backend=backend)
            return cache
        num_sets, eff_ways = self.geometry
        if self.seed is not None and self.policy in SEEDED_POLICIES:
            kwargs.setdefault("seed", self.seed)
        if backend == "array":
            cache = ArraySetAssociativeCache(
                num_sets, eff_ways, policy=self.policy,
                hashed_index=self.hashed_index, index_seed=self.index_seed,
                **kwargs)
        else:
            factory = named_policy_factory(self.policy, num_sets, **kwargs)
            cache = SetAssociativeCache(num_sets, eff_ways, factory,
                                        index_seed=self.index_seed,
                                        hashed_index=self.hashed_index)
        cache._built_spec = replace(self, backend=backend)
        return cache


@dataclass(frozen=True)
class PartitionSpec:
    """Declarative description of a partitioned cache.

    Attributes
    ----------
    scheme:
        One of the :data:`~repro.cache.partition.SCHEME_REGISTRY` names
        ("ideal", "way", "set", "vantage", "futility").
    capacity_lines, num_partitions, ways:
        Total capacity, partition count and (way/set schemes) associativity.
    policy:
        Replacement policy inside every partition (any online policy;
        Belady is offline and has no partitioned organization).
    backend:
        "object", "array" or "auto".  The array fast path covers every
        scheme × policy combination except futility scaling (whose
        feedback-controlled insertion probabilities have no array twin),
        so "auto" resolves to "array" for everything else — bit-identical
        on the exact tier (LRU/LIP/SRRIP/PDP), seeded-deterministic on
        the randomized tier.  Futility scaling always runs on the object
        model.
    hashed_index, index_seed:
        Set-index scheme of the way/set organizations.
    targets:
        Optional per-partition capacity targets in lines, applied through
        ``set_allocations`` at build time (the scheme's usual rounding
        applies).
    policy_kwargs, scheme_kwargs:
        Extra policy/scheme parameters as ``(name, value)`` pairs.
    """

    scheme: str
    capacity_lines: int
    num_partitions: int
    policy: str = "LRU"
    ways: int = 16
    backend: str = "auto"
    hashed_index: bool = False
    index_seed: int = 0
    targets: tuple[float, ...] | None = None
    policy_kwargs: tuple = ()
    scheme_kwargs: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "scheme", self.scheme.lower())
        object.__setattr__(self, "policy_kwargs",
                           _freeze_kwargs(self.policy_kwargs))
        object.__setattr__(self, "scheme_kwargs",
                           _freeze_kwargs(self.scheme_kwargs))
        _check_scheme(self.scheme)
        _check_policy(self.policy)
        if self.policy == "Belady":
            raise ValueError(
                "Belady is offline and replays one attached trace; it has "
                "no partitioned organization — supported partition "
                "policies: " + ", ".join(
                    n for n in POLICY_NAMES if n != "Belady"))
        _check_backend(self.backend)
        if self.capacity_lines <= 0:
            raise ValueError("capacity_lines must be positive")
        if self.num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if self.ways <= 0:
            raise ValueError("ways must be positive")
        if self.hashed_index and self.scheme not in ("way", "set"):
            raise ValueError(
                f"{self.scheme} partitioning has no set indexing; "
                f"hashed_index does not apply")
        if self.targets is not None:
            targets = tuple(float(t) for t in self.targets)
            if len(targets) != self.num_partitions:
                raise ValueError(
                    f"expected {self.num_partitions} targets, "
                    f"got {len(targets)}")
            object.__setattr__(self, "targets", targets)

    @property
    def partitionable_lines(self) -> int:
        """Lines the scheme can divide among partitions (pre-build)."""
        return partitionable_lines_for(self.scheme, self.capacity_lines,
                                       self.num_partitions, self.ways,
                                       dict(self.scheme_kwargs))

    def _array_support(self) -> tuple[bool, str]:
        """Whether the array backend implements this configuration."""
        if self.scheme not in ARRAY_SCHEMES:
            return False, (
                f"the array backend does not implement partitioning scheme "
                f"{self.scheme!r} (supported: {ARRAY_SCHEMES}); use "
                f"backend='object'")
        if self.policy not in ARRAY_POLICIES:
            return False, (
                f"the array backend does not implement {self.policy!r} "
                f"(supported: {ARRAY_POLICIES}); use backend='object' "
                f"or 'auto'")
        return True, ""

    def resolved_backend(self) -> str:
        """The concrete backend ("object" or "array") this spec builds on.

        The scheme × policy matrix is total on the array backend except
        futility scaling, so "auto" resolves to "array" for every other
        combination — bit-identical to the object schemes on the exact
        policy tier (:data:`~repro.cache.arraycache.ARRAY_EXACT_POLICIES`
        plus ideal/Vantage LRU), seeded-deterministic on the randomized
        tier.
        """
        if self.backend == "object":
            return "object"
        supported, reason = self._array_support()
        if self.backend == "array":
            if not supported:
                raise ValueError(reason)
            return "array"
        return "array" if supported else "object"

    def build(self):
        """Instantiate the partitioned cache this spec describes."""
        backend = self.resolved_backend()
        policy_kwargs = dict(self.policy_kwargs)
        scheme_kwargs = dict(self.scheme_kwargs)
        if backend == "array" and self.scheme == "vantage":
            cache = ArrayVantageCache(
                self.capacity_lines, self.num_partitions,
                policy=self.policy, **scheme_kwargs, **policy_kwargs)
        elif backend == "array":
            cache = ArrayPartitionedCache(
                self.scheme, self.capacity_lines, self.num_partitions,
                policy=self.policy, ways=self.ways,
                hashed_index=self.hashed_index, index_seed=self.index_seed,
                **scheme_kwargs, **policy_kwargs)
        else:
            factory = named_policy_factory(self.policy, self.num_partitions,
                                           **policy_kwargs)
            if self.scheme in ("way", "set"):
                scheme_kwargs.setdefault("hashed_index", self.hashed_index)
                scheme_kwargs.setdefault("index_seed", self.index_seed)
            cache = make_partitioned_cache(
                self.scheme, self.capacity_lines, self.num_partitions,
                policy_factory=factory, ways=self.ways, **scheme_kwargs)
        if self.targets is not None:
            cache.set_allocations(list(self.targets))
        return cache


@dataclass(frozen=True)
class TalusSpec:
    """Declarative description of a Talus cache (shadow pairs + sampling).

    Attributes
    ----------
    partition:
        The underlying partitioned cache, with ``2 * num_logical``
        hardware partitions (one alpha/beta shadow pair per logical
        partition).
    num_logical:
        Number of software-visible partitions.
    sampler_bits, sampler_seed:
        Width and seed of the per-pair H3 sampling functions.
    configs:
        Optional planned :class:`~repro.core.talus.TalusConfig` per logical
        partition (in *lines*), programmed at build time; ``None`` entries
        leave that pair unconfigured.
    """

    partition: PartitionSpec
    num_logical: int = 1
    sampler_bits: int = 8
    sampler_seed: int = 7
    configs: tuple[TalusConfig | None, ...] = ()

    def __post_init__(self):
        if not isinstance(self.partition, PartitionSpec):
            raise TypeError("partition must be a PartitionSpec")
        if self.num_logical <= 0:
            raise ValueError("num_logical must be positive")
        if self.partition.num_partitions != 2 * self.num_logical:
            raise ValueError(
                f"the partition spec must have {2 * self.num_logical} "
                f"partitions (2 per logical partition), got "
                f"{self.partition.num_partitions}")
        configs = tuple(self.configs)
        if configs and len(configs) != self.num_logical:
            raise ValueError(
                f"expected {self.num_logical} configs (or none), "
                f"got {len(configs)}")
        for config in configs:
            if config is not None and not isinstance(config, TalusConfig):
                raise TypeError("configs entries must be TalusConfig or None")
        object.__setattr__(self, "configs", configs)

    def resolved_backend(self) -> str:
        """Backend of the underlying partitioned cache."""
        return self.partition.resolved_backend()

    def build(self) -> TalusCache:
        """Instantiate the Talus cache and program the planned configs."""
        base = self.partition.build()
        talus = TalusCache(base, num_logical=self.num_logical,
                           sampler_bits=self.sampler_bits,
                           seed=self.sampler_seed)
        for logical, config in enumerate(self.configs):
            if config is not None:
                talus.configure(logical, config)
        return talus


def build(spec):
    """Build any spec — the single declarative construction entry point."""
    if isinstance(spec, (CacheSpec, PartitionSpec, TalusSpec)):
        return spec.build()
    raise TypeError(f"build() expects a CacheSpec, PartitionSpec or "
                    f"TalusSpec, got {type(spec).__name__}")
