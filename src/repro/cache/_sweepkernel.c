/* Native replay kernels for the array-backed cache (repro.cache.arraycache).
 *
 * Each function replays a full address trace through one set-associative
 * cache whose state lives in caller-owned numpy arrays:
 *
 *   tags  (num_sets x ways) int64, -1 == empty way
 *   stamp (num_sets x ways) int64, last-touch / bucket-entry sequence number
 *   rrpv  (num_sets x ways) int64, re-reference prediction values (RRIP only)
 *
 * The state encoding is shared with the pure-Python fallback in
 * arraycache.py: a kernel run can be interrupted and resumed by the Python
 * path (or vice versa) and produce the same results.  The LRU and SRRIP
 * kernels are bit-identical to the object model in repro.cache.replacement;
 * BRRIP/DRRIP use a splitmix64 stream instead of CPython's Mersenne
 * twister, so they are deterministic per seed but not bit-identical to the
 * object policies (see arraycache.py).
 *
 * Compiled on demand by repro.cache._native with a plain `cc -O3 -shared`;
 * no Python headers are required (the library is loaded through ctypes).
 */

#include <stdint.h>

#define EMPTY (-1)
#define I64_MAX 0x7fffffffffffffffLL

/* Python-compatible modulo for possibly-negative line addresses. */
static inline int64_t set_of(int64_t a, int64_t num_sets)
{
    if (num_sets == 1)
        return 0;
    int64_t s = a % num_sets;
    return (s < 0) ? s + num_sets : s;
}

/* splitmix64; the uniform double construction matches the Python fallback:
 * take the top 53 bits of the state-advanced output. */
static inline uint64_t splitmix64_next(uint64_t *state)
{
    uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

static inline double uniform01(uint64_t *state)
{
    return (double)(splitmix64_next(state) >> 11) * (1.0 / 9007199254740992.0);
}

/* ------------------------------------------------------------------ LRU --- */

/* Replay `n` addresses through an LRU cache; returns the miss count and
 * leaves tags/stamp/counter updated so further accesses may continue. */
int64_t lru_run(const int64_t *addrs, int64_t n, int64_t num_sets,
                int64_t ways, int64_t *tags, int64_t *stamp,
                int64_t *counter_io)
{
    int64_t misses = 0;
    int64_t t = counter_io[0];

    for (int64_t i = 0; i < n; i++) {
        int64_t a = addrs[i];
        int64_t s = set_of(a, num_sets);
        int64_t *row = tags + s * ways;
        int64_t *st = stamp + s * ways;
        int64_t hit = -1, empty = -1, victim = 0;
        int64_t best = I64_MAX;

        for (int64_t w = 0; w < ways; w++) {
            int64_t tag = row[w];
            if (tag == a) { hit = w; break; }
            if (tag == EMPTY) {
                if (empty < 0) empty = w;
            } else if (st[w] < best) {
                best = st[w];
                victim = w;
            }
        }
        t++;
        if (hit >= 0) {
            st[hit] = t;
        } else {
            misses++;
            int64_t w = (empty >= 0) ? empty : victim;
            row[w] = a;
            st[w] = t;
        }
    }
    counter_io[0] = t;
    return misses;
}

/* ----------------------------------------------------------------- RRIP --- */

/* Insertion modes (must match arraycache.py). */
#define MODE_SRRIP 0
#define MODE_BRRIP 1
#define MODE_DRRIP 2

/* DRRIP set roles (must match arraycache.py / replacement.rrip.DuelRole). */
#define ROLE_FOLLOWER 0
#define ROLE_LEADER_SRRIP 1
#define ROLE_LEADER_BRRIP 2
#define ROLE_ADDRESS_DUEL 3

static inline int64_t address_role(int64_t a, int64_t leader_levels)
{
    uint64_t bucket = ((uint64_t)a * 0x9E3779B97F4A7C15ULL) & 1023ULL;
    if (bucket < (uint64_t)leader_levels)
        return ROLE_LEADER_SRRIP;
    if (bucket < (uint64_t)(2 * leader_levels))
        return ROLE_LEADER_BRRIP;
    return ROLE_FOLLOWER;
}

/* Replay `n` addresses through an RRIP-family cache.
 *
 * Victim selection replicates the object model's bucket semantics without
 * materializing buckets: the victim is the oldest *bucket entrant* (stamp)
 * among lines at the highest RRPV present, after which every line ages up
 * by the same delta.  Stamps are refreshed exactly when the object model
 * reorders a line within its bucket (insertion and hit promotion), so the
 * SRRIP kernel is bit-identical to SRRIPPolicy.
 *
 * `roles` (per set) and `psel_io`/`psel_max`/`leader_levels` are only read
 * in MODE_DRRIP; `epsilon`/`rng_state` only in MODE_BRRIP and MODE_DRRIP.
 */
int64_t rrip_run(const int64_t *addrs, int64_t n, int64_t num_sets,
                 int64_t ways, int64_t max_rrpv, int64_t *tags,
                 int64_t *rrpv, int64_t *stamp, int64_t *counter_io,
                 int64_t mode, double epsilon, uint64_t *rng_state,
                 const int64_t *roles, int64_t *psel_io, int64_t psel_max,
                 int64_t leader_levels)
{
    int64_t misses = 0;
    int64_t t = counter_io[0];
    int64_t psel = psel_io ? psel_io[0] : 0;

    for (int64_t i = 0; i < n; i++) {
        int64_t a = addrs[i];
        int64_t s = set_of(a, num_sets);
        int64_t *row = tags + s * ways;
        int64_t *rv = rrpv + s * ways;
        int64_t *st = stamp + s * ways;
        int64_t hit = -1, empty = -1;

        for (int64_t w = 0; w < ways; w++) {
            int64_t tag = row[w];
            if (tag == a) { hit = w; break; }
            if (tag == EMPTY && empty < 0) empty = w;
        }
        t++;
        if (hit >= 0) {
            rv[hit] = 0; /* hit priority */
            st[hit] = t;
            continue;
        }
        misses++;

        int64_t role = ROLE_FOLLOWER;
        if (mode == MODE_DRRIP) {
            role = roles[s];
            if (role == ROLE_ADDRESS_DUEL)
                role = address_role(a, leader_levels);
            if (role == ROLE_LEADER_SRRIP && psel < psel_max)
                psel++;
            else if (role == ROLE_LEADER_BRRIP && psel > 0)
                psel--;
        }

        if (empty < 0) {
            /* Evict the oldest entrant of the highest occupied RRPV bucket,
             * then age everyone so that bucket sits at max_rrpv. */
            int64_t maxp = -1;
            for (int64_t w = 0; w < ways; w++)
                if (rv[w] > maxp) maxp = rv[w];
            int64_t victim = 0, best = I64_MAX;
            for (int64_t w = 0; w < ways; w++)
                if (rv[w] == maxp && st[w] < best) { best = st[w]; victim = w; }
            int64_t d = max_rrpv - maxp;
            if (d > 0)
                for (int64_t w = 0; w < ways; w++) rv[w] += d;
            empty = victim;
        }

        int64_t ins = max_rrpv - 1; /* SRRIP long re-reference insertion */
        int bimodal = 0;
        if (mode == MODE_BRRIP) {
            bimodal = 1;
        } else if (mode == MODE_DRRIP) {
            if (role == ROLE_LEADER_BRRIP)
                bimodal = 1;
            else if (role == ROLE_FOLLOWER)
                bimodal = psel > psel_max / 2;
        }
        if (bimodal && uniform01(rng_state) >= epsilon)
            ins = max_rrpv;

        row[empty] = a;
        rv[empty] = ins;
        st[empty] = t;
    }
    counter_io[0] = t;
    if (psel_io)
        psel_io[0] = psel;
    return misses;
}
