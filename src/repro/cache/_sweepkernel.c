/* Native replay kernels for the array-backed cache (repro.cache.arraycache)
 * and the batch stack-distance monitor (repro.monitor.stack_distance).
 *
 * Each replay function walks a full address trace through one
 * set-associative cache whose state lives in caller-owned numpy arrays:
 *
 *   tags  (num_sets x ways) int64, -1 == empty way
 *   stamp (num_sets x ways) int64, last-touch / bucket-entry sequence number
 *   rrpv  (num_sets x ways) int64, re-reference prediction values (RRIP only)
 *
 * plus policy-specific side state (PSEL counters, PDP protection deadlines,
 * reuse-distance samplers).  The state encoding is shared with the
 * pure-Python fallback in arraycache.py: a kernel run can be interrupted and
 * resumed by the Python path (or vice versa) and produce the same results.
 *
 * Exactness:
 *   - lru_run (LRU and LIP insertion), rrip_run in SRRIP mode, and pdp_run
 *     are bit-identical to the object model in repro.cache.replacement.
 *   - BRRIP/DRRIP (rrip_run) and BIP/DIP (dip_run) draw their bimodal
 *     insertions from a splitmix64 stream instead of CPython's Mersenne
 *     twister, so they are deterministic per seed but not bit-identical to
 *     the object policies (see arraycache.py).
 *
 * Set indexing is modulo by default; every replay kernel also accepts
 * hashed indexing (hashed != 0), where the set index is the splitmix64
 * finalizer of (address XOR index_seed * golden-ratio), matching
 * repro.cache.hashing.set_index.
 *
 * stack_hist_run is a one-shot Mattson stack-distance pass (Fenwick tree +
 * open-addressing last-position table) used by the LRU miss-curve monitors;
 * stack_hist_chunk is its *stateful* sibling: the table, tree, position
 * counter and histogram are caller-owned, so a monitor can feed the trace
 * in chunks (the resumable-runtime contract) without ever re-replaying.
 *
 * Every replay kernel is chunk-resumable by construction: all state is
 * passed in and returned through caller-owned arrays, so calling a kernel
 * on a trace split at arbitrary boundaries is bit-identical to one call on
 * the whole trace.  multi_lru_run additionally replays one trace through
 * several independent LRU/LIP configurations in a single pass (shared
 * trace decode for batched sweeps).
 *
 * Compiled on demand by repro.cache._native with a plain `cc -O3 -shared`;
 * no Python headers are required (the library is loaded through ctypes).
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define EMPTY (-1)
#define I64_MAX 0x7fffffffffffffffLL
#define GOLDEN 0x9E3779B97F4A7C15ULL

/* splitmix64 finalizer; matches repro.cache.hashing.mix64. */
static inline uint64_t mix64(uint64_t v)
{
    v += GOLDEN;
    v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9ULL;
    v = (v ^ (v >> 27)) * 0x94D049BB133111EBULL;
    return v ^ (v >> 31);
}

/* Set index: Python-compatible modulo, or the mix64 hash of
 * (address XOR index_seed * golden), as repro.cache.hashing.set_index. */
static inline int64_t set_of(int64_t a, int64_t num_sets, int64_t hashed,
                             uint64_t seed_mul)
{
    if (num_sets == 1)
        return 0;
    if (hashed)
        return (int64_t)(mix64((uint64_t)a ^ seed_mul) % (uint64_t)num_sets);
    int64_t s = a % num_sets;
    return (s < 0) ? s + num_sets : s;
}

/* splitmix64 stream; the uniform double construction matches the Python
 * fallback: take the top 53 bits of the state-advanced output. */
static inline uint64_t splitmix64_next(uint64_t *state)
{
    uint64_t z = (*state += GOLDEN);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

static inline double uniform01(uint64_t *state)
{
    return (double)(splitmix64_next(state) >> 11) * (1.0 / 9007199254740992.0);
}

/* ------------------------------------------------------------------ LRU --- */

/* Replay `n` addresses through an LRU cache; returns the miss count and
 * leaves tags/stamp/counter updated so further accesses may continue.
 * lip != 0 selects LRU-position insertion (the LIP policy): a missing line
 * is inserted as the *next victim* instead of at MRU. */
int64_t lru_run(const int64_t *addrs, int64_t n, int64_t num_sets,
                int64_t ways, int64_t *tags, int64_t *stamp,
                int64_t *counter_io, int64_t lip, int64_t hashed,
                int64_t index_seed)
{
    int64_t misses = 0;
    int64_t t = counter_io[0];
    uint64_t seed_mul = (uint64_t)index_seed * GOLDEN;

    for (int64_t i = 0; i < n; i++) {
        int64_t a = addrs[i];
        int64_t s = set_of(a, num_sets, hashed, seed_mul);
        int64_t *row = tags + s * ways;
        int64_t *st = stamp + s * ways;
        int64_t hit = -1, empty = -1, victim = 0;
        int64_t best = I64_MAX;

        for (int64_t w = 0; w < ways; w++) {
            int64_t tag = row[w];
            if (tag == a) { hit = w; break; }
            if (tag == EMPTY) {
                if (empty < 0) empty = w;
            } else if (st[w] < best) {
                best = st[w];
                victim = w;
            }
        }
        t++;
        if (hit >= 0) {
            st[hit] = t;
        } else {
            misses++;
            int64_t w = (empty >= 0) ? empty : victim;
            row[w] = a;
            if (lip && best != I64_MAX)
                st[w] = best - 1;   /* in front of the current LRU line */
            else
                st[w] = t;
        }
    }
    counter_io[0] = t;
    return misses;
}

/* --------------------------------------------------------------- Random --- */

/* Replay `n` addresses through a random-replacement cache.  Hits leave all
 * state untouched; misses fill the first empty way, or evict a uniformly
 * random way when the set is full (every way is resident then, so this is
 * uniform over resident lines — the object model's RandomPolicy semantics).
 * Victims are drawn from the shared splitmix64 stream, so the kernel is
 * deterministic per seed and matches the Python fallback draw for draw,
 * but it is not bit-identical to the object model's Mersenne twister. */
int64_t random_run(const int64_t *addrs, int64_t n, int64_t num_sets,
                   int64_t ways, int64_t *tags, uint64_t *rng_state,
                   int64_t hashed, int64_t index_seed)
{
    int64_t misses = 0;
    uint64_t seed_mul = (uint64_t)index_seed * GOLDEN;

    for (int64_t i = 0; i < n; i++) {
        int64_t a = addrs[i];
        int64_t s = set_of(a, num_sets, hashed, seed_mul);
        int64_t *row = tags + s * ways;
        int64_t hit = -1, empty = -1;

        for (int64_t w = 0; w < ways; w++) {
            int64_t tag = row[w];
            if (tag == a) { hit = w; break; }
            if (tag == EMPTY && empty < 0) empty = w;
        }
        if (hit >= 0)
            continue;
        misses++;
        int64_t w = empty;
        if (w < 0)
            w = (int64_t)(splitmix64_next(rng_state) % (uint64_t)ways);
        row[w] = a;
    }
    return misses;
}

/* ----------------------------------------------------------------- RRIP --- */

/* Insertion modes (must match arraycache.py). */
#define MODE_SRRIP 0
#define MODE_BRRIP 1
#define MODE_DRRIP 2

/* DRRIP set roles (must match arraycache.py / replacement.rrip.DuelRole). */
#define ROLE_FOLLOWER 0
#define ROLE_LEADER_SRRIP 1
#define ROLE_LEADER_BRRIP 2
#define ROLE_ADDRESS_DUEL 3

static inline int64_t address_role(int64_t a, int64_t leader_levels)
{
    uint64_t bucket = ((uint64_t)a * GOLDEN) & 1023ULL;
    if (bucket < (uint64_t)leader_levels)
        return ROLE_LEADER_SRRIP;
    if (bucket < (uint64_t)(2 * leader_levels))
        return ROLE_LEADER_BRRIP;
    return ROLE_FOLLOWER;
}

/* Replay `n` addresses through an RRIP-family cache.
 *
 * Victim selection replicates the object model's bucket semantics without
 * materializing buckets: the victim is the oldest *bucket entrant* (stamp)
 * among lines at the highest RRPV present, after which every line ages up
 * by the same delta.  Stamps are refreshed exactly when the object model
 * reorders a line within its bucket (insertion and hit promotion), so the
 * SRRIP kernel is bit-identical to SRRIPPolicy.
 *
 * `roles` (per set) and `psel_io`/`psel_max`/`leader_levels` are only read
 * in MODE_DRRIP; `epsilon`/`rng_state` only in MODE_BRRIP and MODE_DRRIP.
 */
int64_t rrip_run(const int64_t *addrs, int64_t n, int64_t num_sets,
                 int64_t ways, int64_t max_rrpv, int64_t *tags,
                 int64_t *rrpv, int64_t *stamp, int64_t *counter_io,
                 int64_t mode, double epsilon, uint64_t *rng_state,
                 const int64_t *roles, int64_t *psel_io, int64_t psel_max,
                 int64_t leader_levels, int64_t hashed, int64_t index_seed)
{
    int64_t misses = 0;
    int64_t t = counter_io[0];
    int64_t psel = psel_io ? psel_io[0] : 0;
    uint64_t seed_mul = (uint64_t)index_seed * GOLDEN;

    for (int64_t i = 0; i < n; i++) {
        int64_t a = addrs[i];
        int64_t s = set_of(a, num_sets, hashed, seed_mul);
        int64_t *row = tags + s * ways;
        int64_t *rv = rrpv + s * ways;
        int64_t *st = stamp + s * ways;
        int64_t hit = -1, empty = -1;

        for (int64_t w = 0; w < ways; w++) {
            int64_t tag = row[w];
            if (tag == a) { hit = w; break; }
            if (tag == EMPTY && empty < 0) empty = w;
        }
        t++;
        if (hit >= 0) {
            rv[hit] = 0; /* hit priority */
            st[hit] = t;
            continue;
        }
        misses++;

        int64_t role = ROLE_FOLLOWER;
        if (mode == MODE_DRRIP) {
            role = roles[s];
            if (role == ROLE_ADDRESS_DUEL)
                role = address_role(a, leader_levels);
            if (role == ROLE_LEADER_SRRIP && psel < psel_max)
                psel++;
            else if (role == ROLE_LEADER_BRRIP && psel > 0)
                psel--;
        }

        if (empty < 0) {
            /* Evict the oldest entrant of the highest occupied RRPV bucket,
             * then age everyone so that bucket sits at max_rrpv. */
            int64_t maxp = -1;
            for (int64_t w = 0; w < ways; w++)
                if (rv[w] > maxp) maxp = rv[w];
            int64_t victim = 0, best = I64_MAX;
            for (int64_t w = 0; w < ways; w++)
                if (rv[w] == maxp && st[w] < best) { best = st[w]; victim = w; }
            int64_t d = max_rrpv - maxp;
            if (d > 0)
                for (int64_t w = 0; w < ways; w++) rv[w] += d;
            empty = victim;
        }

        int64_t ins = max_rrpv - 1; /* SRRIP long re-reference insertion */
        int bimodal = 0;
        if (mode == MODE_BRRIP) {
            bimodal = 1;
        } else if (mode == MODE_DRRIP) {
            if (role == ROLE_LEADER_BRRIP)
                bimodal = 1;
            else if (role == ROLE_FOLLOWER)
                bimodal = psel > psel_max / 2;
        }
        if (bimodal && uniform01(rng_state) >= epsilon)
            ins = max_rrpv;

        row[empty] = a;
        rv[empty] = ins;
        st[empty] = t;
    }
    counter_io[0] = t;
    if (psel_io)
        psel_io[0] = psel;
    return misses;
}

/* ------------------------------------------------------------- TA-DRRIP --- */

/* Thread-aware DRRIP (Jaleel et al., PACT 2008 as used by the Talus paper's
 * multiprogram baseline): one PSEL counter *per thread* (stream), each
 * updated only by that thread's misses in the address-hash dueling
 * constituencies, so every co-running app converges to its own SRRIP/BRRIP
 * preference.  `threads[i]` carries the id of the thread issuing access i
 * (NULL == all stream 0); `psel` holds `num_streams` counters.  The
 * bimodal draws come from the shared splitmix64 stream, so the kernel is
 * seeded-deterministic like DRRIP (bit-identical to the Python twin in
 * arraycache.py, not to the object model's Mersenne twister).  `miss_out`,
 * when non-NULL, accumulates per-thread miss counts (never reset here —
 * it is persistent caller state, like the PSEL counters).  Returns the
 * total miss count, or -1 on an out-of-range thread id. */
int64_t tadrrip_run(const int64_t *addrs, const int64_t *threads, int64_t n,
                    int64_t num_sets, int64_t ways, int64_t max_rrpv,
                    int64_t *tags, int64_t *rrpv, int64_t *stamp,
                    int64_t *counter_io, double epsilon, uint64_t *rng_state,
                    int64_t *psel, int64_t num_streams, int64_t psel_max,
                    int64_t leader_levels, int64_t hashed, int64_t index_seed,
                    int64_t *miss_out)
{
    int64_t misses = 0;
    int64_t t = counter_io[0];
    uint64_t seed_mul = (uint64_t)index_seed * GOLDEN;

    for (int64_t i = 0; i < n; i++) {
        int64_t a = addrs[i];
        int64_t tid = threads ? threads[i] : 0;
        if (tid < 0 || tid >= num_streams)
            return -1;
        int64_t s = set_of(a, num_sets, hashed, seed_mul);
        int64_t *row = tags + s * ways;
        int64_t *rv = rrpv + s * ways;
        int64_t *st = stamp + s * ways;
        int64_t hit = -1, empty = -1;

        for (int64_t w = 0; w < ways; w++) {
            int64_t tag = row[w];
            if (tag == a) { hit = w; break; }
            if (tag == EMPTY && empty < 0) empty = w;
        }
        t++;
        if (hit >= 0) {
            rv[hit] = 0; /* hit priority */
            st[hit] = t;
            continue;
        }
        misses++;
        if (miss_out)
            miss_out[tid]++;

        int64_t role = address_role(a, leader_levels);
        if (role == ROLE_LEADER_SRRIP && psel[tid] < psel_max)
            psel[tid]++;
        else if (role == ROLE_LEADER_BRRIP && psel[tid] > 0)
            psel[tid]--;

        if (empty < 0) {
            int64_t maxp = -1;
            for (int64_t w = 0; w < ways; w++)
                if (rv[w] > maxp) maxp = rv[w];
            int64_t victim = 0, best = I64_MAX;
            for (int64_t w = 0; w < ways; w++)
                if (rv[w] == maxp && st[w] < best) { best = st[w]; victim = w; }
            int64_t d = max_rrpv - maxp;
            if (d > 0)
                for (int64_t w = 0; w < ways; w++) rv[w] += d;
            empty = victim;
        }

        int64_t ins = max_rrpv - 1;
        int bimodal = (role == ROLE_LEADER_BRRIP) ||
                      (role == ROLE_FOLLOWER && psel[tid] > psel_max / 2);
        if (bimodal && uniform01(rng_state) >= epsilon)
            ins = max_rrpv;

        row[empty] = a;
        rv[empty] = ins;
        st[empty] = t;
    }
    counter_io[0] = t;
    return misses;
}

/* --------------------------------------------------------------- Belady --- */

/* Belady MIN: evict the resident line whose next use is furthest in the
 * future.  The future is precomputed — next_use[i] is the trace position of
 * the next access to addrs[i]'s line (I64_MAX when it is never touched
 * again), built once by a vectorized two-pass numpy argsort/scatter in
 * arraycache.belady_next_use and shared across every capacity point of a
 * miss curve.
 *
 * State (all caller-owned, so the replay is chunk-resumable):
 *   ht_tag/ht_val      open-addressing residency table tag -> current next
 *                      use (ht_tag[slot] == -1 marks an empty slot;
 *                      deletion is by backward shift)
 *   heap_key/heap_tag  lazy binary max-heap of (next_use, tag) entries;
 *                      every access pushes one entry, evictions pop until
 *                      the top matches the residency table (stale entries
 *                      from re-pushed hits are skipped), exactly the
 *                      object model's heapq-with-invalidation
 *   heap_io            [0] = live heap length, [1] = resident line count
 *
 * Ties among never-reused lines are broken by heap order rather than the
 * object model's tag order; MIN's miss count is invariant to that choice
 * (evicting any dead line leaves every future hit intact), which is why the
 * kernel is exact on miss counts — enforced by tests.  Returns the miss
 * count, or -2 when the heap would overflow heap_cap / underflow while
 * lines are resident (both defensive; the caller sizes the heap to the
 * trace length). */
int64_t belady_run(const int64_t *addrs, const int64_t *next_use, int64_t n,
                   int64_t capacity, int64_t *ht_tag, int64_t *ht_val,
                   int64_t tsize, int64_t *heap_key, int64_t *heap_tag,
                   int64_t heap_cap, int64_t *heap_io)
{
    uint64_t tmask = (uint64_t)(tsize - 1);
    int64_t misses = 0;

    for (int64_t i = 0; i < n; i++) {
        int64_t a = addrs[i];
        int64_t nu = next_use[i];

        uint64_t slot = mix64((uint64_t)a) & tmask;
        while (ht_tag[slot] != EMPTY && ht_tag[slot] != a)
            slot = (slot + 1) & tmask;

        if (heap_io[0] >= heap_cap)
            return -2;

        if (ht_tag[slot] == a) {
            /* Hit: renew the residency deadline, lazily re-push. */
            ht_val[slot] = nu;
        } else {
            misses++;
            if (capacity == 0)
                continue;
            if (heap_io[1] >= capacity) {
                /* Evict the furthest-next-use resident line. */
                for (;;) {
                    int64_t len = heap_io[0];
                    if (len <= 0)
                        return -2;
                    int64_t key = heap_key[0], tag = heap_tag[0];
                    /* Pop the root. */
                    len = --heap_io[0];
                    heap_key[0] = heap_key[len];
                    heap_tag[0] = heap_tag[len];
                    int64_t j = 0;
                    for (;;) {
                        int64_t l = 2 * j + 1, r = l + 1, big = j;
                        if (l < len && heap_key[l] > heap_key[big]) big = l;
                        if (r < len && heap_key[r] > heap_key[big]) big = r;
                        if (big == j) break;
                        int64_t tk = heap_key[j]; heap_key[j] = heap_key[big];
                        heap_key[big] = tk;
                        int64_t tt = heap_tag[j]; heap_tag[j] = heap_tag[big];
                        heap_tag[big] = tt;
                        j = big;
                    }
                    uint64_t vs = mix64((uint64_t)tag) & tmask;
                    while (ht_tag[vs] != EMPTY && ht_tag[vs] != tag)
                        vs = (vs + 1) & tmask;
                    if (ht_tag[vs] != tag || ht_val[vs] != key)
                        continue;   /* stale entry: deadline since renewed */
                    /* Backward-shift delete. */
                    ht_tag[vs] = EMPTY;
                    uint64_t hole = vs;
                    uint64_t k = (vs + 1) & tmask;
                    while (ht_tag[k] != EMPTY) {
                        uint64_t home = mix64((uint64_t)ht_tag[k]) & tmask;
                        if (((k - home) & tmask) >= ((k - hole) & tmask)) {
                            ht_tag[hole] = ht_tag[k];
                            ht_val[hole] = ht_val[k];
                            ht_tag[k] = EMPTY;
                            hole = k;
                        }
                        k = (k + 1) & tmask;
                    }
                    heap_io[1]--;
                    break;
                }
                /* The delete may have moved our probe target; re-find. */
                slot = mix64((uint64_t)a) & tmask;
                while (ht_tag[slot] != EMPTY)
                    slot = (slot + 1) & tmask;
            }
            ht_tag[slot] = a;
            ht_val[slot] = nu;
            heap_io[1]++;
        }
        /* Push (nu, a); hits and fills both push, as the object model does. */
        int64_t j = heap_io[0]++;
        heap_key[j] = nu;
        heap_tag[j] = a;
        while (j > 0) {
            int64_t parent = (j - 1) / 2;
            if (heap_key[parent] >= heap_key[j])
                break;
            int64_t tk = heap_key[j]; heap_key[j] = heap_key[parent];
            heap_key[parent] = tk;
            int64_t tt = heap_tag[j]; heap_tag[j] = heap_tag[parent];
            heap_tag[parent] = tt;
            j = parent;
        }
    }
    return misses;
}

/* ------------------------------------------------------------ LIP/BIP/DIP --- */

/* Insertion modes (must match arraycache.py). */
#define DIP_MODE_BIP 0
#define DIP_MODE_DIP 1

/* Replay through an LRU cache with dueled insertion (the DIP family).
 *
 * The structure is plain LRU (stamp order == OrderedDict order); only the
 * insertion position differs: MRU insertion refreshes the stamp, while a
 * bimodal (BIP-style) LRU-position insertion stamps the new line *older*
 * than the current LRU line, making it the next victim — exactly
 * OrderedDict.move_to_end(tag, last=False).
 *
 * DIP_MODE_BIP draws every insertion from the bimodal stream; DIP_MODE_DIP
 * set-duels plain-LRU leaders against BIP leaders through `roles`/`psel`,
 * reusing the DRRIP role encoding (LEADER_SRRIP == the plain-LRU
 * constituency, LEADER_BRRIP == the BIP constituency).
 */
int64_t dip_run(const int64_t *addrs, int64_t n, int64_t num_sets,
                int64_t ways, int64_t *tags, int64_t *stamp,
                int64_t *counter_io, int64_t mode, double epsilon,
                uint64_t *rng_state, const int64_t *roles, int64_t *psel_io,
                int64_t psel_max, int64_t leader_levels, int64_t hashed,
                int64_t index_seed)
{
    int64_t misses = 0;
    int64_t t = counter_io[0];
    int64_t psel = psel_io ? psel_io[0] : 0;
    uint64_t seed_mul = (uint64_t)index_seed * GOLDEN;

    for (int64_t i = 0; i < n; i++) {
        int64_t a = addrs[i];
        int64_t s = set_of(a, num_sets, hashed, seed_mul);
        int64_t *row = tags + s * ways;
        int64_t *st = stamp + s * ways;
        int64_t hit = -1, empty = -1, victim = 0;
        int64_t best = I64_MAX;

        for (int64_t w = 0; w < ways; w++) {
            int64_t tag = row[w];
            if (tag == a) { hit = w; break; }
            if (tag == EMPTY) {
                if (empty < 0) empty = w;
            } else if (st[w] < best) {
                best = st[w];
                victim = w;
            }
        }
        t++;
        if (hit >= 0) {
            st[hit] = t;
            continue;
        }
        misses++;

        int64_t role = ROLE_FOLLOWER;
        if (mode == DIP_MODE_DIP) {
            role = roles[s];
            if (role == ROLE_ADDRESS_DUEL)
                role = address_role(a, leader_levels);
            if (role == ROLE_LEADER_SRRIP && psel < psel_max)
                psel++;
            else if (role == ROLE_LEADER_BRRIP && psel > 0)
                psel--;
        }

        int64_t w = (empty >= 0) ? empty : victim;
        row[w] = a;
        st[w] = t;

        int bip = 1;
        if (mode == DIP_MODE_DIP) {
            if (role == ROLE_LEADER_SRRIP)
                bip = 0;
            else if (role != ROLE_LEADER_BRRIP)
                bip = psel > psel_max / 2;
        }
        if (bip && uniform01(rng_state) >= epsilon) {
            /* LRU-position insertion: older than the oldest other line. */
            int64_t oldest = I64_MAX;
            for (int64_t w2 = 0; w2 < ways; w2++)
                if (w2 != w && row[w2] != EMPTY && st[w2] < oldest)
                    oldest = st[w2];
            if (oldest != I64_MAX)
                st[w] = oldest - 1;
        }
    }
    counter_io[0] = t;
    if (psel_io)
        psel_io[0] = psel;
    return misses;
}

/* ------------------------------------------------------------------ PDP --- */

/* Look up `tag` in an open-addressing (linear probe) table row; returns the
 * slot index.  Tables are sized so the load factor stays well below 1/2 and
 * entries are only removed by wholesale clears, so probing is exact
 * dict-get/set semantics. */
static inline int64_t ls_slot(const int64_t *ls_tags, uint64_t tmask,
                              int64_t tag)
{
    uint64_t slot = mix64((uint64_t)tag) & tmask;
    while (ls_tags[slot] != EMPTY && ls_tags[slot] != tag)
        slot = (slot + 1) & tmask;
    return (int64_t)slot;
}

/* One PDP protecting-distance recomputation for set `s`; mirrors
 * PDPPolicy._recompute_dp + select_protecting_distance exactly. */
static void pdp_recompute(int64_t *hist, int64_t max_dp, int64_t *dp_io,
                          int64_t total, int64_t *ls_tags, int64_t tsize,
                          int64_t *ls_count, int64_t clear_threshold)
{
    int64_t any = 0;
    for (int64_t d = 1; d <= max_dp; d++)
        if (hist[d]) { any = 1; break; }
    if (any && total > 0) {
        int64_t best_dp = max_dp;
        double best_score = -1.0;
        int64_t hits = 0, weighted = 0;
        for (int64_t dp = 1; dp <= max_dp; dp++) {
            hits += hist[dp];
            weighted += dp * hist[dp];
            int64_t miss = total - hits;
            int64_t occ = weighted + dp * miss;
            if (occ <= 0)
                continue;
            double score = (double)hits / (double)occ;
            if (score > best_score) {
                best_score = score;
                best_dp = dp;
            }
        }
        dp_io[0] = best_dp;
    } else if (any) {
        dp_io[0] = max_dp;
    }
    /* Decay the sample so the policy adapts to phase changes. */
    for (int64_t d = 1; d <= max_dp; d++)
        hist[d] = (hist[d] > 1) ? (hist[d] + 1) / 2 : 0;
    if (ls_count[0] > clear_threshold) {
        for (int64_t j = 0; j < tsize; j++)
            ls_tags[j] = EMPTY;
        ls_count[0] = 0;
    }
}

/* Replay through a PDP (protecting distance) cache; bit-identical to
 * repro.cache.replacement.pdp.PDPPolicy (which records only reuse distances
 * up to the largest candidate protecting distance).
 *
 * Per-set side state (all caller-owned):
 *   expires (num_sets x ways)        protection deadline per line
 *   clock / dp / sample_count (num_sets)
 *   hist (num_sets x (max_dp + 1))   bounded reuse-distance histogram
 *   ls_tags/ls_clocks (num_sets x tsize), ls_count (num_sets)
 *                                    last-seen open-addressing tables
 * tsize must be a power of two large enough that a table never fills
 * between clears (arraycache.py sizes it).  Returns the miss count
 * (bypassed fills count as misses, as in the object model).
 */
int64_t pdp_run(const int64_t *addrs, int64_t n, int64_t num_sets,
                int64_t ways, int64_t *tags, int64_t *stamp,
                int64_t *counter_io, int64_t *expires, int64_t *clock,
                int64_t *dp, int64_t *sample_count, int64_t *hist,
                int64_t max_dp, int64_t interval, int64_t clear_threshold,
                int64_t *ls_tags, int64_t *ls_clocks, int64_t *ls_count,
                int64_t tsize, int64_t hashed, int64_t index_seed)
{
    int64_t misses = 0;
    int64_t t = counter_io[0];
    uint64_t seed_mul = (uint64_t)index_seed * GOLDEN;
    uint64_t tmask = (uint64_t)(tsize - 1);

    for (int64_t i = 0; i < n; i++) {
        int64_t a = addrs[i];
        int64_t s = set_of(a, num_sets, hashed, seed_mul);
        int64_t *row = tags + s * ways;
        int64_t *st = stamp + s * ways;
        int64_t *ex = expires + s * ways;
        int64_t *lst = ls_tags + s * tsize;
        int64_t *lsc = ls_clocks + s * tsize;

        int64_t c = ++clock[s];

        /* Reuse-distance sampling (PDPPolicy._record_reuse). */
        int64_t slot = ls_slot(lst, tmask, a);
        if (lst[slot] == a) {
            int64_t d = c - lsc[slot];
            if (d <= max_dp)
                hist[s * (max_dp + 1) + d]++;
        } else {
            lst[slot] = a;
            ls_count[s]++;
        }
        lsc[slot] = c;
        sample_count[s]++;
        if (sample_count[s] % interval == 0)
            pdp_recompute(hist + s * (max_dp + 1), max_dp, dp + s,
                          sample_count[s], lst, tsize, ls_count + s,
                          clear_threshold);

        int64_t hit = -1, empty = -1;
        for (int64_t w = 0; w < ways; w++) {
            int64_t tag = row[w];
            if (tag == a) { hit = w; break; }
            if (tag == EMPTY && empty < 0) empty = w;
        }
        t++;
        if (hit >= 0) {
            ex[hit] = c + dp[s];
            st[hit] = t;
            continue;
        }
        misses++;
        int64_t w = empty;
        if (w < 0) {
            /* Oldest unprotected line, else bypass. */
            int64_t best = I64_MAX;
            for (int64_t w2 = 0; w2 < ways; w2++)
                if (ex[w2] <= c && st[w2] < best) { best = st[w2]; w = w2; }
            if (w < 0)
                continue;   /* every line protected: bypass the fill */
        }
        row[w] = a;
        ex[w] = c + dp[s];
        st[w] = t;
    }
    counter_io[0] = t;
    return misses;
}

/* ------------------------------------------------------ partitioned replay --- */

/* Interleaved multi-partition replay (way/set partitioning, Talus shadow
 * pairs).  Each access carries the id of the partition that owns it
 * (parts[i]); partition p's lines live in the caller-owned flat buffers at
 * region_off[p], organized as region_sets[p] x region_ways[p] — the
 * per-partition occupancy target granted by the partitioning scheme.
 * Regions are fully independent (no line migrates between partitions), so
 * this is bit-identical to replaying each partition's subsequence through
 * the corresponding single-cache kernel.
 *
 * A region with zero sets or ways is a zero-capacity partition: every
 * access misses and nothing is retained (matching a zero-capacity object
 * policy region).  Fills per-partition miss counts into miss_out (caller-
 * zeroed) and returns the total miss count, or -1 on an out-of-range
 * partition id (state may be partially advanced; callers validate first).
 */
int64_t part_lru_run(const int64_t *addrs, const int64_t *parts, int64_t n,
                     int64_t num_regions, const int64_t *region_sets,
                     const int64_t *region_ways, const int64_t *region_off,
                     int64_t *tags, int64_t *stamp, int64_t *counter_io,
                     int64_t lip, int64_t hashed, int64_t index_seed,
                     int64_t *miss_out)
{
    int64_t total_misses = 0;
    int64_t t = counter_io[0];
    uint64_t seed_mul = (uint64_t)index_seed * GOLDEN;

    for (int64_t i = 0; i < n; i++) {
        int64_t a = addrs[i];
        int64_t p = parts[i];
        if (p < 0 || p >= num_regions)
            return -1;
        int64_t nsets = region_sets[p], ways = region_ways[p];
        if (nsets <= 0 || ways <= 0) {
            miss_out[p]++;
            total_misses++;
            continue;
        }
        int64_t s = set_of(a, nsets, hashed, seed_mul);
        int64_t *row = tags + region_off[p] + s * ways;
        int64_t *st = stamp + region_off[p] + s * ways;
        int64_t hit = -1, empty = -1, victim = 0;
        int64_t best = I64_MAX;

        for (int64_t w = 0; w < ways; w++) {
            int64_t tag = row[w];
            if (tag == a) { hit = w; break; }
            if (tag == EMPTY) {
                if (empty < 0) empty = w;
            } else if (st[w] < best) {
                best = st[w];
                victim = w;
            }
        }
        t++;
        if (hit >= 0) {
            st[hit] = t;
        } else {
            miss_out[p]++;
            total_misses++;
            int64_t w = (empty >= 0) ? empty : victim;
            row[w] = a;
            if (lip && best != I64_MAX)
                st[w] = best - 1;   /* in front of the current LRU line */
            else
                st[w] = t;
        }
    }
    counter_io[0] = t;
    return total_misses;
}

/* SRRIP variant of part_lru_run: same region layout plus a flat RRPV
 * buffer.  Insertion is always the SRRIP long re-reference position
 * (max_rrpv - 1); the bimodal/dueling variants keep per-region state on
 * the Python side and are replayed per partition instead. */
int64_t part_srrip_run(const int64_t *addrs, const int64_t *parts, int64_t n,
                       int64_t num_regions, const int64_t *region_sets,
                       const int64_t *region_ways, const int64_t *region_off,
                       int64_t *tags, int64_t *rrpv, int64_t *stamp,
                       int64_t *counter_io, int64_t max_rrpv, int64_t hashed,
                       int64_t index_seed, int64_t *miss_out)
{
    int64_t total_misses = 0;
    int64_t t = counter_io[0];
    uint64_t seed_mul = (uint64_t)index_seed * GOLDEN;

    for (int64_t i = 0; i < n; i++) {
        int64_t a = addrs[i];
        int64_t p = parts[i];
        if (p < 0 || p >= num_regions)
            return -1;
        int64_t nsets = region_sets[p], ways = region_ways[p];
        if (nsets <= 0 || ways <= 0) {
            miss_out[p]++;
            total_misses++;
            continue;
        }
        int64_t s = set_of(a, nsets, hashed, seed_mul);
        int64_t *row = tags + region_off[p] + s * ways;
        int64_t *rv = rrpv + region_off[p] + s * ways;
        int64_t *st = stamp + region_off[p] + s * ways;
        int64_t hit = -1, empty = -1;

        for (int64_t w = 0; w < ways; w++) {
            int64_t tag = row[w];
            if (tag == a) { hit = w; break; }
            if (tag == EMPTY && empty < 0) empty = w;
        }
        t++;
        if (hit >= 0) {
            rv[hit] = 0; /* hit priority */
            st[hit] = t;
            continue;
        }
        miss_out[p]++;
        total_misses++;

        if (empty < 0) {
            int64_t maxp = -1;
            for (int64_t w = 0; w < ways; w++)
                if (rv[w] > maxp) maxp = rv[w];
            int64_t victim = 0, best = I64_MAX;
            for (int64_t w = 0; w < ways; w++)
                if (rv[w] == maxp && st[w] < best) { best = st[w]; victim = w; }
            int64_t d = max_rrpv - maxp;
            if (d > 0)
                for (int64_t w = 0; w < ways; w++) rv[w] += d;
            empty = victim;
        }
        row[empty] = a;
        rv[empty] = max_rrpv - 1; /* SRRIP long re-reference insertion */
        st[empty] = t;
    }
    counter_io[0] = t;
    return total_misses;
}

/* ----------------------------------------------------- multi-config replay --- */

/* Replay one trace through `num_configs` independent LRU/LIP caches in a
 * single pass (shared trace decode).  Config c's lines live in the flat
 * caller-owned buffers at cfg_off[c], organized as cfg_sets[c] x
 * cfg_ways[c]; counters and the LIP flag are per config.  Bit-identical to
 * `num_configs` separate lru_run calls over the same trace — the configs
 * never interact — but the trace is streamed through memory once instead
 * of once per config.  Fills per-config miss counts into miss_out
 * (caller-zeroed) and returns the total. */
int64_t multi_lru_run(const int64_t *addrs, int64_t n, int64_t num_configs,
                      const int64_t *cfg_sets, const int64_t *cfg_ways,
                      const int64_t *cfg_off, int64_t *tags, int64_t *stamp,
                      int64_t *counters, const int64_t *lip, int64_t hashed,
                      int64_t index_seed, int64_t *miss_out)
{
    int64_t total_misses = 0;
    uint64_t seed_mul = (uint64_t)index_seed * GOLDEN;

    for (int64_t i = 0; i < n; i++) {
        int64_t a = addrs[i];
        for (int64_t c = 0; c < num_configs; c++) {
            int64_t nsets = cfg_sets[c], ways = cfg_ways[c];
            if (nsets <= 0 || ways <= 0) {
                miss_out[c]++;
                total_misses++;
                continue;
            }
            int64_t s = set_of(a, nsets, hashed, seed_mul);
            int64_t *row = tags + cfg_off[c] + s * ways;
            int64_t *st = stamp + cfg_off[c] + s * ways;
            int64_t hit = -1, empty = -1, victim = 0;
            int64_t best = I64_MAX;

            for (int64_t w = 0; w < ways; w++) {
                int64_t tag = row[w];
                if (tag == a) { hit = w; break; }
                if (tag == EMPTY) {
                    if (empty < 0) empty = w;
                } else if (st[w] < best) {
                    best = st[w];
                    victim = w;
                }
            }
            int64_t t = ++counters[c];
            if (hit >= 0) {
                st[hit] = t;
            } else {
                miss_out[c]++;
                total_misses++;
                int64_t w = (empty >= 0) ? empty : victim;
                row[w] = a;
                if (lip[c] && best != I64_MAX)
                    st[w] = best - 1;
                else
                    st[w] = t;
            }
        }
    }
    return total_misses;
}

/* -------------------------------------------------------- Vantage replay --- */

/* Vantage-like fine-grained partitioning (repro.cache.partition.vantage):
 * per-partition fully-associative LRU regions over the managed ~90 % of
 * capacity plus one shared insertion-ordered unmanaged victim region.
 * Unlike the set-associative kernels above, regions here are line-granular
 * and fully associative, so the state is an intrusive doubly-linked node
 * pool plus an open-addressing hash table — all caller-owned numpy arrays,
 * keeping the kernel chunk-resumable and interchangeable with the pure-
 * Python twin in repro.cache.partition.array:
 *
 *   node_tag/node_prev/node_next  node pool (N = capacity + 1 entries; one
 *                                 spare absorbs the transient overshoot of
 *                                 insert-then-trim demotion); free nodes
 *                                 are chained through node_next from
 *                                 free_io[0]
 *   head/tail/occ                 per-region lists (num_parts managed
 *                                 regions, index num_parts = unmanaged);
 *                                 head = LRU / oldest, tail = MRU / newest
 *   ht_tag/ht_reg/ht_node         linear-probing table keyed by
 *                                 (tag, region); ht_node[slot] < 0 == empty;
 *                                 deletion is by backward shift, so no
 *                                 tombstones accumulate
 *
 * The same tag may be resident in several regions at once (the object
 * model keeps per-region dicts), which is why the table is keyed by the
 * pair.  Misses in a full region demote the policy's victim into the
 * unmanaged region (re-demotion moves it to the newest position);
 * unmanaged hits promote the line back into the accessing partition.
 *
 * Managed regions run any replacement policy of the array family (the
 * VPOL_* codes below), mirroring VantagePartitionedCache built with the
 * corresponding named_policy_factory:
 *
 *   recency family (LRU/LIP/BIP/DIP)  the region list *is* the recency
 *                                     order; only the insertion end (and
 *                                     DIP's shared-PSEL duel) differ
 *   RRIP family (SRRIP/BRRIP/DRRIP/   per-node RRPV (node_aux) + bucket-
 *   TA-DRRIP)                         entrant stamps (node_stamp); victims
 *                                     scan the region for (max RRPV,
 *                                     oldest stamp) and age survivors,
 *                                     exactly _RRIPBase.evict_one
 *   PDP                               per-node protection deadline
 *                                     (node_aux) + per-region clock/dp/
 *                                     reuse-sampler state, exactly
 *                                     PDPPolicy (evict_one falls back to
 *                                     the oldest line when every line is
 *                                     protected, so Vantage never bypasses)
 *   Random                            victims drawn from the shared
 *                                     splitmix64 stream
 *
 * The deterministic policies (LRU, LIP, SRRIP, PDP) are bit-identical to
 * the object model; the randomized ones (BIP/DIP/BRRIP/DRRIP/TA-DRRIP/
 * Random) are seeded-deterministic twins of the Python fallback, as in the
 * set-associative kernels above.
 */

/* Managed-region policy codes (must match repro.cache.partition.array). */
#define VPOL_LRU 0
#define VPOL_LIP 1
#define VPOL_BIP 2
#define VPOL_DIP 3
#define VPOL_SRRIP 4
#define VPOL_BRRIP 5
#define VPOL_DRRIP 6
#define VPOL_TADRRIP 7
#define VPOL_PDP 8
#define VPOL_RANDOM 9

/* All Vantage replay state + policy parameters, bundled so the policy
 * helpers stay readable.  Built on entry by vantage_run/vantage_realloc. */
typedef struct {
    int64_t num_parts, unm, unm_cap;
    int64_t pol, max_rrpv;
    double epsilon;
    int64_t *counter;          /* shared bucket-entrant stamp (RRIP family) */
    uint64_t *rng;
    const int64_t *roles;      /* per-region duel roles (DIP/DRRIP) */
    int64_t *psel;             /* psel[0] shared (DIP/DRRIP) or per region
                                * (TA-DRRIP) */
    int64_t psel_max, leader_levels;
    int64_t *node_aux;         /* RRPV (RRIP family) / deadline (PDP) */
    int64_t *node_stamp;       /* bucket-entrant order (RRIP family) */
    int64_t *pdp_clock, *pdp_dp, *pdp_sample, *pdp_hist;
    int64_t hist_stride;
    const int64_t *pdp_maxdp, *pdp_interval, *pdp_clear;
    int64_t *ls_tags, *ls_clocks, *ls_count;
    int64_t ls_size;
    int64_t *ht_tag, *ht_reg, *ht_node;
    uint64_t tmask;
    int64_t *node_tag, *node_prev, *node_next;
    int64_t *head, *tail, *occ, *free_io;
} vt_ctx;

static inline uint64_t vt_home(int64_t tag, int64_t region)
{
    return mix64((uint64_t)tag ^ ((uint64_t)(region + 1) * GOLDEN));
}

static inline int64_t vt_lookup(const int64_t *ht_tag, const int64_t *ht_reg,
                                const int64_t *ht_node, uint64_t tmask,
                                int64_t tag, int64_t region)
{
    uint64_t slot = vt_home(tag, region) & tmask;
    while (ht_node[slot] >= 0) {
        if (ht_tag[slot] == tag && ht_reg[slot] == region)
            return (int64_t)slot;
        slot = (slot + 1) & tmask;
    }
    return -1;
}

static inline void vt_insert(int64_t *ht_tag, int64_t *ht_reg,
                             int64_t *ht_node, uint64_t tmask,
                             int64_t tag, int64_t region, int64_t node)
{
    uint64_t slot = vt_home(tag, region) & tmask;
    while (ht_node[slot] >= 0)
        slot = (slot + 1) & tmask;
    ht_tag[slot] = tag;
    ht_reg[slot] = region;
    ht_node[slot] = node;
}

/* Backward-shift deletion: empty the slot, then walk the probe chain
 * moving entries whose home position allows them to fill the hole. */
static inline void vt_delete(int64_t *ht_tag, int64_t *ht_reg,
                             int64_t *ht_node, uint64_t tmask, uint64_t slot)
{
    ht_node[slot] = -1;
    uint64_t hole = slot;
    uint64_t i = (slot + 1) & tmask;
    while (ht_node[i] >= 0) {
        uint64_t home = vt_home(ht_tag[i], ht_reg[i]) & tmask;
        if (((i - home) & tmask) >= ((i - hole) & tmask)) {
            ht_tag[hole] = ht_tag[i];
            ht_reg[hole] = ht_reg[i];
            ht_node[hole] = ht_node[i];
            ht_node[i] = -1;
            hole = i;
        }
        i = (i + 1) & tmask;
    }
}

static inline void vt_list_remove(int64_t node, int64_t region,
                                  int64_t *node_prev, int64_t *node_next,
                                  int64_t *head, int64_t *tail, int64_t *occ)
{
    int64_t prev = node_prev[node], next = node_next[node];
    if (prev >= 0) node_next[prev] = next; else head[region] = next;
    if (next >= 0) node_prev[next] = prev; else tail[region] = prev;
    occ[region]--;
}

static inline void vt_list_push(int64_t node, int64_t region,
                                int64_t *node_prev, int64_t *node_next,
                                int64_t *head, int64_t *tail, int64_t *occ)
{
    int64_t last = tail[region];
    node_prev[node] = last;
    node_next[node] = -1;
    if (last >= 0) node_next[last] = node; else head[region] = node;
    tail[region] = node;
    occ[region]++;
}

/* Push at the head (the LRU / oldest end): LIP-style insertion, i.e.
 * OrderedDict.move_to_end(tag, last=False) right after the insert. */
static inline void vt_list_push_front(int64_t node, int64_t region,
                                      int64_t *node_prev, int64_t *node_next,
                                      int64_t *head, int64_t *tail,
                                      int64_t *occ)
{
    int64_t first = head[region];
    node_next[node] = first;
    node_prev[node] = -1;
    if (first >= 0) node_prev[first] = node; else tail[region] = node;
    head[region] = node;
    occ[region]++;
}

/* PDPPolicy._record_reuse for region p: advance the region clock, sample
 * the bounded reuse distance, and periodically recompute dp. */
static inline void vt_pdp_record(vt_ctx *c, int64_t p, int64_t a)
{
    int64_t clk = ++c->pdp_clock[p];
    int64_t *lst = c->ls_tags + p * c->ls_size;
    int64_t *lsc = c->ls_clocks + p * c->ls_size;
    uint64_t lmask = (uint64_t)(c->ls_size - 1);
    int64_t maxdp = c->pdp_maxdp[p];
    int64_t slot = ls_slot(lst, lmask, a);
    if (lst[slot] == a) {
        int64_t d = clk - lsc[slot];
        if (d <= maxdp)
            c->pdp_hist[p * c->hist_stride + d]++;
    } else {
        lst[slot] = a;
        c->ls_count[p]++;
    }
    lsc[slot] = clk;
    c->pdp_sample[p]++;
    if (c->pdp_sample[p] % c->pdp_interval[p] == 0)
        pdp_recompute(c->pdp_hist + p * c->hist_stride, maxdp, c->pdp_dp + p,
                      c->pdp_sample[p], lst, c->ls_size, c->ls_count + p,
                      c->pdp_clear[p]);
}

/* region.evict_one(): select (and for RRIP, age) but do not yet unlink the
 * victim of managed region p.  Returns the victim node, or -1 when the
 * region is empty. */
static int64_t vt_evict_one(vt_ctx *c, int64_t p)
{
    if (c->occ[p] <= 0)
        return -1;
    switch (c->pol) {
    case VPOL_SRRIP:
    case VPOL_BRRIP:
    case VPOL_DRRIP:
    case VPOL_TADRRIP: {
        /* Oldest bucket entrant at the highest RRPV, then age everyone —
         * _RRIPBase._age_until_victim_available + evict. */
        int64_t maxp = -1;
        for (int64_t m = c->head[p]; m >= 0; m = c->node_next[m])
            if (c->node_aux[m] > maxp) maxp = c->node_aux[m];
        int64_t victim = -1, best = I64_MAX;
        for (int64_t m = c->head[p]; m >= 0; m = c->node_next[m])
            if (c->node_aux[m] == maxp && c->node_stamp[m] < best) {
                best = c->node_stamp[m];
                victim = m;
            }
        int64_t d = c->max_rrpv - maxp;
        if (d > 0)
            for (int64_t m = c->head[p]; m >= 0; m = c->node_next[m])
                c->node_aux[m] += d;
        return victim;
    }
    case VPOL_PDP: {
        /* Oldest unprotected line, else the oldest line (PDPPolicy.evict_one
         * — no clock advance here). */
        int64_t clk = c->pdp_clock[p];
        for (int64_t m = c->head[p]; m >= 0; m = c->node_next[m])
            if (c->node_aux[m] <= clk)
                return m;
        return c->head[p];
    }
    case VPOL_RANDOM: {
        uint64_t k = splitmix64_next(c->rng) % (uint64_t)c->occ[p];
        int64_t m = c->head[p];
        while (k--)
            m = c->node_next[m];
        return m;
    }
    default:
        /* Recency family: the list head is the LRU line. */
        return c->head[p];
    }
}

/* region.access(tag) on a resident line. */
static inline void vt_policy_hit(vt_ctx *c, int64_t p, int64_t node,
                                 int64_t a)
{
    switch (c->pol) {
    case VPOL_SRRIP:
    case VPOL_BRRIP:
    case VPOL_DRRIP:
    case VPOL_TADRRIP:
        /* Promote to bucket 0; the region list stays in membership order
         * (victims are ordered by (RRPV, stamp), never by list position). */
        c->node_aux[node] = 0;
        c->node_stamp[node] = ++c->counter[0];
        break;
    case VPOL_PDP:
        vt_pdp_record(c, p, a);
        c->node_aux[node] = c->pdp_clock[p] + c->pdp_dp[p];
        vt_list_remove(node, p, c->node_prev, c->node_next, c->head, c->tail,
                       c->occ);
        vt_list_push(node, p, c->node_prev, c->node_next, c->head, c->tail,
                     c->occ);
        break;
    case VPOL_RANDOM:
        break;  /* RandomPolicy keeps no recency state */
    default:
        /* Recency family: move to MRU. */
        vt_list_remove(node, p, c->node_prev, c->node_next, c->head, c->tail,
                       c->occ);
        vt_list_push(node, p, c->node_prev, c->node_next, c->head, c->tail,
                     c->occ);
        break;
    }
}

/* region.access(tag) insertion of a fresh node (the region has room):
 * policy metadata, duel bookkeeping and the insertion position. */
static void vt_policy_insert(vt_ctx *c, int64_t p, int64_t node, int64_t a)
{
    switch (c->pol) {
    case VPOL_LIP:
        vt_list_push_front(node, p, c->node_prev, c->node_next, c->head,
                           c->tail, c->occ);
        return;
    case VPOL_BIP:
        if (uniform01(c->rng) >= c->epsilon)
            vt_list_push_front(node, p, c->node_prev, c->node_next, c->head,
                               c->tail, c->occ);
        else
            vt_list_push(node, p, c->node_prev, c->node_next, c->head,
                         c->tail, c->occ);
        return;
    case VPOL_DIP: {
        int64_t role = c->roles[p];
        if (role == ROLE_LEADER_SRRIP && c->psel[0] < c->psel_max)
            c->psel[0]++;
        else if (role == ROLE_LEADER_BRRIP && c->psel[0] > 0)
            c->psel[0]--;
        int bip = (role == ROLE_LEADER_BRRIP) ||
                  (role == ROLE_FOLLOWER && c->psel[0] > c->psel_max / 2);
        if (bip && uniform01(c->rng) >= c->epsilon)
            vt_list_push_front(node, p, c->node_prev, c->node_next, c->head,
                               c->tail, c->occ);
        else
            vt_list_push(node, p, c->node_prev, c->node_next, c->head,
                         c->tail, c->occ);
        return;
    }
    case VPOL_SRRIP:
    case VPOL_BRRIP:
    case VPOL_DRRIP:
    case VPOL_TADRRIP: {
        int64_t ins = c->max_rrpv - 1;
        int bimodal = 0;
        if (c->pol == VPOL_BRRIP) {
            bimodal = 1;
        } else if (c->pol == VPOL_DRRIP) {
            int64_t role = c->roles[p];
            if (role == ROLE_LEADER_SRRIP && c->psel[0] < c->psel_max)
                c->psel[0]++;
            else if (role == ROLE_LEADER_BRRIP && c->psel[0] > 0)
                c->psel[0]--;
            bimodal = (role == ROLE_LEADER_BRRIP) ||
                      (role == ROLE_FOLLOWER &&
                       c->psel[0] > c->psel_max / 2);
        } else if (c->pol == VPOL_TADRRIP) {
            int64_t role = address_role(a, c->leader_levels);
            if (role == ROLE_LEADER_SRRIP && c->psel[p] < c->psel_max)
                c->psel[p]++;
            else if (role == ROLE_LEADER_BRRIP && c->psel[p] > 0)
                c->psel[p]--;
            bimodal = (role == ROLE_LEADER_BRRIP) ||
                      (role == ROLE_FOLLOWER &&
                       c->psel[p] > c->psel_max / 2);
        }
        if (bimodal && uniform01(c->rng) >= c->epsilon)
            ins = c->max_rrpv;
        c->node_aux[node] = ins;
        c->node_stamp[node] = ++c->counter[0];
        vt_list_push(node, p, c->node_prev, c->node_next, c->head, c->tail,
                     c->occ);
        return;
    }
    case VPOL_PDP:
        vt_pdp_record(c, p, a);
        c->node_aux[node] = c->pdp_clock[p] + c->pdp_dp[p];
        vt_list_push(node, p, c->node_prev, c->node_next, c->head, c->tail,
                     c->occ);
        return;
    default:
        /* LRU / Random: MRU (insertion-order) end. */
        vt_list_push(node, p, c->node_prev, c->node_next, c->head, c->tail,
                     c->occ);
        return;
    }
}

/* Move a line demoted from (or bypassing) a managed region into the
 * unmanaged region, evicting its oldest entries while over capacity —
 * VantagePartitionedCache._demote.  Returns 0, or -2 on a corrupt free
 * list (defensive; cannot happen when the pool holds capacity + 1 nodes). */
static inline int64_t vt_demote(vt_ctx *c, int64_t tag)
{
    if (c->unm_cap == 0)
        return 0;
    int64_t unm = c->unm;
    int64_t slot = vt_lookup(c->ht_tag, c->ht_reg, c->ht_node, c->tmask,
                             tag, unm);
    if (slot >= 0) {
        int64_t node = c->ht_node[slot];
        vt_list_remove(node, unm, c->node_prev, c->node_next, c->head,
                       c->tail, c->occ);
        vt_list_push(node, unm, c->node_prev, c->node_next, c->head, c->tail,
                     c->occ);
    } else {
        int64_t node = c->free_io[0];
        if (node < 0)
            return -2;
        c->free_io[0] = c->node_next[node];
        c->node_tag[node] = tag;
        vt_list_push(node, unm, c->node_prev, c->node_next, c->head, c->tail,
                     c->occ);
        vt_insert(c->ht_tag, c->ht_reg, c->ht_node, c->tmask, tag, unm, node);
    }
    while (c->occ[unm] > c->unm_cap) {
        int64_t victim = c->head[unm];
        int64_t vslot = vt_lookup(c->ht_tag, c->ht_reg, c->ht_node, c->tmask,
                                  c->node_tag[victim], unm);
        vt_list_remove(victim, unm, c->node_prev, c->node_next, c->head,
                       c->tail, c->occ);
        vt_delete(c->ht_tag, c->ht_reg, c->ht_node, c->tmask,
                  (uint64_t)vslot);
        c->node_next[victim] = c->free_io[0];
        c->free_io[0] = victim;
    }
    return 0;
}

/* Unlink region p's chosen victim, demote it, and free its node. */
static inline int64_t vt_evict_and_demote(vt_ctx *c, int64_t p)
{
    int64_t victim = vt_evict_one(c, p);
    if (victim < 0)
        return 0;
    int64_t vtag = c->node_tag[victim];
    int64_t vslot = vt_lookup(c->ht_tag, c->ht_reg, c->ht_node, c->tmask,
                              vtag, p);
    vt_list_remove(victim, p, c->node_prev, c->node_next, c->head, c->tail,
                   c->occ);
    vt_delete(c->ht_tag, c->ht_reg, c->ht_node, c->tmask, (uint64_t)vslot);
    c->node_next[victim] = c->free_io[0];
    c->free_io[0] = victim;
    return vt_demote(c, vtag);
}

/* Insert into managed partition p, demoting that partition's policy victim
 * (or the line itself when the partition has no budget) —
 * VantagePartitionedCache._insert_managed. */
static inline int64_t vt_insert_managed(vt_ctx *c, int64_t a, int64_t p,
                                        int64_t cap)
{
    if (cap == 0)
        return vt_demote(c, a);
    if (c->occ[p] >= cap) {
        int64_t rc = vt_evict_and_demote(c, p);
        if (rc < 0)
            return rc;
    }
    int64_t node = c->free_io[0];
    if (node < 0)
        return -2;
    c->free_io[0] = c->node_next[node];
    c->node_tag[node] = a;
    vt_insert(c->ht_tag, c->ht_reg, c->ht_node, c->tmask, a, p, node);
    vt_policy_insert(c, p, node, a);
    return 0;
}

static inline vt_ctx vt_make_ctx(int64_t num_parts, int64_t unm_cap,
                                 int64_t pol, int64_t max_rrpv,
                                 double epsilon, int64_t *counter,
                                 uint64_t *rng_state, const int64_t *roles,
                                 int64_t *psel, int64_t psel_max,
                                 int64_t leader_levels, int64_t *node_aux,
                                 int64_t *node_stamp, int64_t *pdp_clock,
                                 int64_t *pdp_dp, int64_t *pdp_sample,
                                 int64_t *pdp_hist, int64_t hist_stride,
                                 const int64_t *pdp_maxdp,
                                 const int64_t *pdp_interval,
                                 const int64_t *pdp_clear, int64_t *ls_tags,
                                 int64_t *ls_clocks, int64_t *ls_count,
                                 int64_t ls_size, int64_t *ht_tag,
                                 int64_t *ht_reg, int64_t *ht_node,
                                 int64_t tsize, int64_t *node_tag,
                                 int64_t *node_prev, int64_t *node_next,
                                 int64_t *head, int64_t *tail, int64_t *occ,
                                 int64_t *free_io)
{
    vt_ctx c;
    c.num_parts = num_parts; c.unm = num_parts; c.unm_cap = unm_cap;
    c.pol = pol; c.max_rrpv = max_rrpv; c.epsilon = epsilon;
    c.counter = counter; c.rng = rng_state; c.roles = roles; c.psel = psel;
    c.psel_max = psel_max; c.leader_levels = leader_levels;
    c.node_aux = node_aux; c.node_stamp = node_stamp;
    c.pdp_clock = pdp_clock; c.pdp_dp = pdp_dp; c.pdp_sample = pdp_sample;
    c.pdp_hist = pdp_hist; c.hist_stride = hist_stride;
    c.pdp_maxdp = pdp_maxdp; c.pdp_interval = pdp_interval;
    c.pdp_clear = pdp_clear;
    c.ls_tags = ls_tags; c.ls_clocks = ls_clocks; c.ls_count = ls_count;
    c.ls_size = ls_size;
    c.ht_tag = ht_tag; c.ht_reg = ht_reg; c.ht_node = ht_node;
    c.tmask = (uint64_t)(tsize - 1);
    c.node_tag = node_tag; c.node_prev = node_prev; c.node_next = node_next;
    c.head = head; c.tail = tail; c.occ = occ; c.free_io = free_io;
    return c;
}

/* Replay a partition-tagged trace through a Vantage cache whose managed
 * regions run the `pol` replacement policy.  Fills per-partition miss
 * counts into miss_out (caller-zeroed) and returns the total, -1 on an
 * out-of-range partition id, or -2 on free-list exhaustion (both
 * defensive; callers validate / size the pool).  Policy side state not
 * used by `pol` may be NULL. */
int64_t vantage_run(const int64_t *addrs, const int64_t *parts, int64_t n,
                    int64_t num_parts, const int64_t *caps, int64_t unm_cap,
                    int64_t pol, int64_t max_rrpv, double epsilon,
                    int64_t *counter, uint64_t *rng_state,
                    const int64_t *roles, int64_t *psel, int64_t psel_max,
                    int64_t leader_levels, int64_t *node_aux,
                    int64_t *node_stamp, int64_t *pdp_clock, int64_t *pdp_dp,
                    int64_t *pdp_sample, int64_t *pdp_hist,
                    int64_t hist_stride, const int64_t *pdp_maxdp,
                    const int64_t *pdp_interval, const int64_t *pdp_clear,
                    int64_t *ls_tags, int64_t *ls_clocks, int64_t *ls_count,
                    int64_t ls_size, int64_t *ht_tag, int64_t *ht_reg,
                    int64_t *ht_node, int64_t tsize, int64_t *node_tag,
                    int64_t *node_prev, int64_t *node_next, int64_t *head,
                    int64_t *tail, int64_t *occ, int64_t *free_io,
                    int64_t *miss_out)
{
    vt_ctx c = vt_make_ctx(num_parts, unm_cap, pol, max_rrpv, epsilon,
                           counter, rng_state, roles, psel, psel_max,
                           leader_levels, node_aux, node_stamp, pdp_clock,
                           pdp_dp, pdp_sample, pdp_hist, hist_stride,
                           pdp_maxdp, pdp_interval, pdp_clear, ls_tags,
                           ls_clocks, ls_count, ls_size, ht_tag, ht_reg,
                           ht_node, tsize, node_tag, node_prev, node_next,
                           head, tail, occ, free_io);
    int64_t total_misses = 0;

    for (int64_t i = 0; i < n; i++) {
        int64_t a = addrs[i];
        int64_t p = parts[i];
        if (p < 0 || p >= num_parts)
            return -1;
        int64_t slot = vt_lookup(c.ht_tag, c.ht_reg, c.ht_node, c.tmask,
                                 a, p);
        if (slot >= 0) {
            /* Managed hit. */
            vt_policy_hit(&c, p, c.ht_node[slot], a);
            continue;
        }
        int64_t uslot = vt_lookup(c.ht_tag, c.ht_reg, c.ht_node, c.tmask,
                                  a, c.unm);
        if (uslot >= 0) {
            /* Unmanaged hit: promote back into the partition. */
            int64_t node = c.ht_node[uslot];
            vt_list_remove(node, c.unm, c.node_prev, c.node_next, c.head,
                           c.tail, c.occ);
            vt_delete(c.ht_tag, c.ht_reg, c.ht_node, c.tmask,
                      (uint64_t)uslot);
            c.node_next[node] = c.free_io[0];
            c.free_io[0] = node;
            int64_t rc = vt_insert_managed(&c, a, p, caps[p]);
            if (rc < 0)
                return rc;
            continue;
        }
        miss_out[p]++;
        total_misses++;
        int64_t rc = vt_insert_managed(&c, a, p, caps[p]);
        if (rc < 0)
            return rc;
    }
    return total_misses;
}

/* Warm reallocation: shrink each managed region to its new capacity,
 * demoting the policy's evicted victims (in eviction order) into the
 * unmanaged region — VantagePartitionedCache.set_allocations.  The caller
 * records the new capacities afterwards.  Returns 0 or -2 (see
 * vantage_run). */
int64_t vantage_realloc(int64_t num_parts, const int64_t *new_caps,
                        int64_t unm_cap, int64_t pol, int64_t max_rrpv,
                        uint64_t *rng_state, int64_t *node_aux,
                        int64_t *node_stamp, int64_t *pdp_clock,
                        int64_t *pdp_dp, int64_t *ht_tag, int64_t *ht_reg,
                        int64_t *ht_node, int64_t tsize, int64_t *node_tag,
                        int64_t *node_prev, int64_t *node_next, int64_t *head,
                        int64_t *tail, int64_t *occ, int64_t *free_io)
{
    vt_ctx c = vt_make_ctx(num_parts, unm_cap, pol, max_rrpv, 0.0, NULL,
                           rng_state, NULL, NULL, 0, 0, node_aux, node_stamp,
                           pdp_clock, pdp_dp, NULL, NULL, 0, NULL, NULL,
                           NULL, NULL, NULL, NULL, 0, ht_tag, ht_reg,
                           ht_node, tsize, node_tag, node_prev, node_next,
                           head, tail, occ, free_io);
    for (int64_t p = 0; p < num_parts; p++) {
        while (c.occ[p] > new_caps[p]) {
            int64_t rc = vt_evict_and_demote(&c, p);
            if (rc < 0)
                return rc;
        }
    }
    return 0;
}

/* --------------------------------------------------------- stack distance --- */

static inline void fen_add(int64_t *tree, int64_t size, int64_t index,
                           int64_t delta)
{
    for (int64_t i = index + 1; i <= size; i += i & (-i))
        tree[i] += delta;
}

static inline int64_t fen_prefix(const int64_t *tree, int64_t index)
{
    int64_t total = 0;
    for (int64_t i = index + 1; i > 0; i -= i & (-i))
        total += tree[i];
    return total;
}

/* One-shot Mattson stack-distance pass over a trace.
 *
 * Fills `hist` (caller-zeroed, length >= n) with hist[d] = number of
 * accesses at stack distance d (distinct lines touched since the previous
 * access to the same line) and returns the number of cold (first-touch)
 * accesses.  Returns -1 if scratch memory could not be allocated, in which
 * case `hist` is untouched and the caller should fall back to the Python
 * monitor.  Matches repro.monitor.stack_distance.StackDistanceMonitor. */
int64_t stack_hist_run(const int64_t *addrs, int64_t n, int64_t *hist)
{
    if (n <= 0)
        return 0;
    uint64_t tsize = 64;
    while (tsize < (uint64_t)n * 2)
        tsize <<= 1;
    int64_t *ttags = malloc(tsize * sizeof(int64_t));
    int64_t *tvals = malloc(tsize * sizeof(int64_t));
    int64_t *tree = calloc((size_t)n + 1, sizeof(int64_t));
    if (!ttags || !tvals || !tree) {
        free(ttags); free(tvals); free(tree);
        return -1;
    }
    /* Slot occupancy is marked by tvals >= 0 (positions are non-negative),
     * so every int64 address — including -1 — is a valid key. */
    memset(tvals, 0xFF, tsize * sizeof(int64_t));
    uint64_t tmask = tsize - 1;
    int64_t cold = 0;

    for (int64_t i = 0; i < n; i++) {
        int64_t a = addrs[i];
        uint64_t slot = mix64((uint64_t)a) & tmask;
        while (tvals[slot] >= 0 && ttags[slot] != a)
            slot = (slot + 1) & tmask;
        if (tvals[slot] >= 0) {
            int64_t last = tvals[slot];
            int64_t d = fen_prefix(tree, i - 1) - fen_prefix(tree, last);
            hist[d]++;
            fen_add(tree, n, last, -1);
        } else {
            ttags[slot] = a;
            cold++;
        }
        fen_add(tree, n, i, 1);
        tvals[slot] = i;
    }
    free(ttags); free(tvals); free(tree);
    return cold;
}

/* Stateful chunked Mattson pass: the incremental twin of stack_hist_run.
 *
 * All state is caller-owned, so a monitor can feed its sub-stream chunk by
 * chunk and read the histogram at any boundary without re-replaying:
 *
 *   tab_tags/tab_vals  open-addressing last-position table (tsize slots,
 *                      power of two; tab_vals[slot] < 0 == empty slot)
 *   tree               Fenwick tree over positions [0, cap)
 *   pos_io[0]          next access position (monotonic within a tree epoch)
 *   live_io[0]         occupied table slots (== live position markers)
 *   cold_io[0]         running cold-miss count
 *   hist               distance histogram, hist_cap entries
 *
 * The caller guarantees pos + n <= cap and live + n <= tsize / 2 before
 * calling (growing / compacting the arrays otherwise — position compaction
 * preserves the relative order of live markers, which is all the distance
 * computation reads).  Returns 0, or -1 without touching any state when
 * those bounds do not hold, or -2 if a distance would overflow hist
 * (cannot happen when hist_cap > cap; defensive).  Identical histograms to
 * stack_hist_run over the concatenated chunks, enforced by
 * tests/test_monitors.py. */
int64_t stack_hist_chunk(const int64_t *addrs, int64_t n,
                         int64_t *tab_tags, int64_t *tab_vals, int64_t tsize,
                         int64_t *tree, int64_t cap, int64_t *pos_io,
                         int64_t *live_io, int64_t *cold_io,
                         int64_t *hist, int64_t hist_cap)
{
    int64_t pos = pos_io[0];
    int64_t live = live_io[0];
    int64_t cold = cold_io[0];
    if (n < 0 || pos + n > cap || live + n > tsize / 2)
        return -1;
    uint64_t tmask = (uint64_t)(tsize - 1);

    for (int64_t i = 0; i < n; i++) {
        int64_t a = addrs[i];
        uint64_t slot = mix64((uint64_t)a) & tmask;
        while (tab_vals[slot] >= 0 && tab_tags[slot] != a)
            slot = (slot + 1) & tmask;
        if (tab_vals[slot] >= 0) {
            int64_t last = tab_vals[slot];
            int64_t d = fen_prefix(tree, pos - 1) - fen_prefix(tree, last);
            if (d >= hist_cap) {
                pos_io[0] = pos; live_io[0] = live; cold_io[0] = cold;
                return -2;
            }
            hist[d]++;
            fen_add(tree, cap, last, -1);
        } else {
            tab_tags[slot] = a;
            live++;
            cold++;
        }
        fen_add(tree, cap, pos, 1);
        tab_vals[slot] = pos;
        pos++;
    }
    pos_io[0] = pos;
    live_io[0] = live;
    cold_io[0] = cold;
    return 0;
}

/* Rebuild an open-addressing last-position table into a larger one.  The
 * new arrays are caller-allocated with new_vals pre-filled to -1; every
 * occupied old slot is re-probed into the new table.  Positions are copied
 * unchanged. */
void stack_state_rehash(const int64_t *old_tags, const int64_t *old_vals,
                        int64_t old_size, int64_t *new_tags,
                        int64_t *new_vals, int64_t new_size)
{
    uint64_t nmask = (uint64_t)(new_size - 1);
    for (int64_t i = 0; i < old_size; i++) {
        if (old_vals[i] < 0)
            continue;
        int64_t a = old_tags[i];
        uint64_t slot = mix64((uint64_t)a) & nmask;
        while (new_vals[slot] >= 0)
            slot = (slot + 1) & nmask;
        new_tags[slot] = a;
        new_vals[slot] = old_vals[i];
    }
}

/* --------------------------------------------------------------------- *
 * Threaded batch dispatcher
 *
 * batch_run_threaded executes N *independent* replay tasks — each one a
 * call into one of the per-config kernels above — across a pool of worker
 * threads.  The per-config replay code is untouched: a batch_task is just
 * a flattened argument record plus a `kind` selecting which kernel to
 * call, so a task's result is bit-identical to calling that kernel
 * directly (and therefore independent of the thread count and of which
 * worker happens to run it).  Tasks never share state arrays — each
 * config owns its tags/stamp/side-state buffers and its slice of the
 * output — so the only cross-thread communication is the atomic work
 * counter below.
 *
 * Threading is optional at compile time: when the compiler rejects
 * -pthread, the Python side retries with -DREPRO_SERIAL_BATCH and the
 * dispatcher degrades to a serial loop over the same tasks (same results,
 * one thread).  batch_threads_available() tells the bindings which
 * variant they loaded.
 * --------------------------------------------------------------------- */

#ifndef REPRO_SERIAL_BATCH
#include <pthread.h>
#endif

enum {
    BATCH_KIND_LRU = 0,      /* lru_run (LRU, and LIP via `lip`)   */
    BATCH_KIND_RRIP = 1,     /* rrip_run (SRRIP/BRRIP/DRRIP)       */
    BATCH_KIND_DIP = 2,      /* dip_run (BIP/DIP)                  */
    BATCH_KIND_PDP = 3,      /* pdp_run                            */
    BATCH_KIND_RANDOM = 4,   /* random_run                         */
    BATCH_KIND_PART_LRU = 5, /* part_lru_run (LRU/LIP regions)     */
    BATCH_KIND_PART_SRRIP = 6, /* part_srrip_run                   */
    BATCH_KIND_VANTAGE = 7,  /* vantage_run                        */
    BATCH_KIND_TADRRIP = 8,  /* tadrrip_run (parts = thread ids)   */
    BATCH_KIND_BELADY = 9,   /* belady_run (ht_reg = next-use map) */
};

/* One replay task.  Every member is 8 bytes, so the layout is identical
 * across platforms and trivially mirrored by a ctypes.Structure (see
 * _native.py: the field order there must match this declaration).  Unused
 * members of a given kind stay NULL/0. */
typedef struct {
    int64_t kind;
    const int64_t *addrs;
    int64_t n;
    const int64_t *parts;
    int64_t *tags;
    int64_t *stamp;
    int64_t *rrpv;
    int64_t *counter;
    uint64_t *rng_state;
    const int64_t *roles;
    int64_t *psel;
    int64_t *expires;
    int64_t *clock;
    int64_t *dp;
    int64_t *sample_count;
    int64_t *hist;
    int64_t *ls_tags;
    int64_t *ls_clocks;
    int64_t *ls_count;
    const int64_t *region_sets;
    const int64_t *region_ways;
    const int64_t *region_off;
    int64_t *miss_out;
    const int64_t *caps;
    int64_t *ht_tag;
    int64_t *ht_reg;
    int64_t *ht_node;
    int64_t *node_tag;
    int64_t *node_prev;
    int64_t *node_next;
    int64_t *head;
    int64_t *tail;
    int64_t *occ;
    int64_t *free_io;
    int64_t num_sets;
    int64_t ways;
    int64_t max_rrpv;
    int64_t mode;
    int64_t lip;
    int64_t hashed;
    int64_t index_seed;
    int64_t psel_max;
    int64_t leader_levels;
    int64_t max_dp;
    int64_t interval;
    int64_t clear_threshold;
    int64_t tsize;
    int64_t num_regions;
    int64_t unm_cap;
    int64_t *node_aux;
    int64_t *node_stamp;
    const int64_t *vp_maxdp;
    const int64_t *vp_interval;
    const int64_t *vp_clear;
    const int64_t *next_use;
    int64_t *heap_key;
    int64_t *heap_tag;
    int64_t *heap_io;
    int64_t hist_stride;
    int64_t ls_size;
    int64_t heap_cap;
    int64_t capacity;
    int64_t num_streams;
    double epsilon;
    int64_t result;
} batch_task;

static void batch_run_one(batch_task *t)
{
    switch (t->kind) {
    case BATCH_KIND_LRU:
        t->result = lru_run(t->addrs, t->n, t->num_sets, t->ways, t->tags,
                            t->stamp, t->counter, t->lip, t->hashed,
                            t->index_seed);
        break;
    case BATCH_KIND_RRIP:
        t->result = rrip_run(t->addrs, t->n, t->num_sets, t->ways,
                             t->max_rrpv, t->tags, t->rrpv, t->stamp,
                             t->counter, t->mode, t->epsilon, t->rng_state,
                             t->roles, t->psel, t->psel_max,
                             t->leader_levels, t->hashed, t->index_seed);
        break;
    case BATCH_KIND_DIP:
        t->result = dip_run(t->addrs, t->n, t->num_sets, t->ways, t->tags,
                            t->stamp, t->counter, t->mode, t->epsilon,
                            t->rng_state, t->roles, t->psel, t->psel_max,
                            t->leader_levels, t->hashed, t->index_seed);
        break;
    case BATCH_KIND_PDP:
        t->result = pdp_run(t->addrs, t->n, t->num_sets, t->ways, t->tags,
                            t->stamp, t->counter, t->expires, t->clock,
                            t->dp, t->sample_count, t->hist, t->max_dp,
                            t->interval, t->clear_threshold, t->ls_tags,
                            t->ls_clocks, t->ls_count, t->tsize, t->hashed,
                            t->index_seed);
        break;
    case BATCH_KIND_RANDOM:
        t->result = random_run(t->addrs, t->n, t->num_sets, t->ways,
                               t->tags, t->rng_state, t->hashed,
                               t->index_seed);
        break;
    case BATCH_KIND_PART_LRU:
        t->result = part_lru_run(t->addrs, t->parts, t->n, t->num_regions,
                                 t->region_sets, t->region_ways,
                                 t->region_off, t->tags, t->stamp,
                                 t->counter, t->lip, t->hashed,
                                 t->index_seed, t->miss_out);
        break;
    case BATCH_KIND_PART_SRRIP:
        t->result = part_srrip_run(t->addrs, t->parts, t->n,
                                   t->num_regions, t->region_sets,
                                   t->region_ways, t->region_off, t->tags,
                                   t->rrpv, t->stamp, t->counter,
                                   t->max_rrpv, t->hashed, t->index_seed,
                                   t->miss_out);
        break;
    case BATCH_KIND_VANTAGE:
        t->result = vantage_run(t->addrs, t->parts, t->n, t->num_regions,
                                t->caps, t->unm_cap, t->mode, t->max_rrpv,
                                t->epsilon, t->counter, t->rng_state,
                                t->roles, t->psel, t->psel_max,
                                t->leader_levels, t->node_aux,
                                t->node_stamp, t->clock, t->dp,
                                t->sample_count, t->hist, t->hist_stride,
                                t->vp_maxdp, t->vp_interval, t->vp_clear,
                                t->ls_tags, t->ls_clocks, t->ls_count,
                                t->ls_size, t->ht_tag, t->ht_reg,
                                t->ht_node, t->tsize, t->node_tag,
                                t->node_prev, t->node_next, t->head,
                                t->tail, t->occ, t->free_io, t->miss_out);
        break;
    case BATCH_KIND_TADRRIP:
        t->result = tadrrip_run(t->addrs, t->parts, t->n, t->num_sets,
                                t->ways, t->max_rrpv, t->tags, t->rrpv,
                                t->stamp, t->counter, t->epsilon,
                                t->rng_state, t->psel, t->num_streams,
                                t->psel_max, t->leader_levels, t->hashed,
                                t->index_seed, t->miss_out);
        break;
    case BATCH_KIND_BELADY:
        t->result = belady_run(t->addrs, t->next_use, t->n, t->capacity,
                               t->ht_tag, t->ht_reg, t->tsize, t->heap_key,
                               t->heap_tag, t->heap_cap, t->heap_io);
        break;
    default:
        t->result = -2;
        break;
    }
}

#ifndef REPRO_SERIAL_BATCH

#define BATCH_MAX_THREADS 128

/* Shared work queue: workers claim task indices with an atomic
 * fetch-and-add, so the assignment of tasks to threads is dynamic
 * (work-stealing) while each task itself runs exactly once. */
typedef struct {
    batch_task *tasks;
    int64_t num_tasks;
    volatile int64_t next;
} batch_queue;

static void *batch_worker(void *arg)
{
    batch_queue *q = (batch_queue *)arg;
    for (;;) {
        int64_t i = __sync_fetch_and_add(&q->next, 1);
        if (i >= q->num_tasks)
            break;
        batch_run_one(&q->tasks[i]);
    }
    return NULL;
}

/* Run `num_tasks` tasks across up to `num_threads` threads (the calling
 * thread doubles as worker zero).  Returns the number of threads actually
 * used (>= 1); each task's outcome lands in its own `result` member. */
int64_t batch_run_threaded(batch_task *tasks, int64_t num_tasks,
                           int64_t num_threads)
{
    if (num_tasks <= 0)
        return 1;
    if (num_threads > num_tasks)
        num_threads = num_tasks;
    if (num_threads > BATCH_MAX_THREADS)
        num_threads = BATCH_MAX_THREADS;
    if (num_threads <= 1) {
        for (int64_t i = 0; i < num_tasks; i++)
            batch_run_one(&tasks[i]);
        return 1;
    }
    batch_queue q;
    q.tasks = tasks;
    q.num_tasks = num_tasks;
    q.next = 0;
    pthread_t workers[BATCH_MAX_THREADS];
    int64_t spawned = 0;
    for (int64_t i = 0; i < num_threads - 1; i++) {
        if (pthread_create(&workers[spawned], NULL, batch_worker, &q) != 0)
            break;  /* degrade: the remaining width is just smaller */
        spawned++;
    }
    batch_worker(&q);
    for (int64_t i = 0; i < spawned; i++)
        pthread_join(workers[i], NULL);
    return spawned + 1;
}

int64_t batch_threads_available(void) { return 1; }

#else  /* REPRO_SERIAL_BATCH: same entry points, serial execution */

int64_t batch_run_threaded(batch_task *tasks, int64_t num_tasks,
                           int64_t num_threads)
{
    (void)num_threads;
    for (int64_t i = 0; i < num_tasks; i++)
        batch_run_one(&tasks[i]);
    return 1;
}

int64_t batch_threads_available(void) { return 0; }

#endif  /* REPRO_SERIAL_BATCH */
