"""Trace-driven cache simulation substrate.

Stands in for the paper's zsim memory hierarchy: set-associative caches,
the replacement policies the paper evaluates, the partitioning schemes Talus
runs on, and the Talus hardware wrapper itself (shadow partitions plus the
H3 sampling function).
"""

from .arraycache import (ARRAY_EXACT_POLICIES, ARRAY_POLICIES,
                         ArraySetAssociativeCache)
from .cache import (CacheStats, SetAssociativeCache, lru_factory,
                    policy_factory_from_class, simulate_trace)
from .factory import (BACKENDS, POLICY_NAMES, build_cache, cache_geometry,
                      named_policy_factory, resolve_backend)
from .hashing import H3Hash, SamplingFunction, mix64, set_index
from .partition import (ARRAY_SCHEMES, ArrayPartitionedCache,
                        ArrayVantageCache, FutilityScalingCache,
                        IdealPartitionedCache, PartitionedCache,
                        SetPartitionedCache, VantagePartitionedCache,
                        WayPartitionedCache, make_partitioned_cache,
                        partitionable_lines_for)
from .replacement import (BIPPolicy, BRRIPPolicy, BeladyMINPolicy, DIPPolicy,
                          DRRIPPolicy, EvictionPolicy, LIPPolicy, LRUPolicy,
                          PDPPolicy, RandomPolicy, SRRIPPolicy, TADRRIPPolicy,
                          make_policy)
from .spec import CacheSpec, PartitionSpec, TalusSpec, build
from .talus_cache import ShadowPair, TalusCache

__all__ = [
    "CacheSpec",
    "PartitionSpec",
    "TalusSpec",
    "build",
    "CacheStats",
    "SetAssociativeCache",
    "ArraySetAssociativeCache",
    "ARRAY_POLICIES",
    "ARRAY_EXACT_POLICIES",
    "simulate_trace",
    "lru_factory",
    "policy_factory_from_class",
    "named_policy_factory",
    "POLICY_NAMES",
    "BACKENDS",
    "build_cache",
    "cache_geometry",
    "resolve_backend",
    "H3Hash",
    "SamplingFunction",
    "mix64",
    "set_index",
    "PartitionedCache",
    "IdealPartitionedCache",
    "WayPartitionedCache",
    "SetPartitionedCache",
    "VantagePartitionedCache",
    "FutilityScalingCache",
    "ArrayPartitionedCache",
    "ArrayVantageCache",
    "ARRAY_SCHEMES",
    "make_partitioned_cache",
    "partitionable_lines_for",
    "EvictionPolicy",
    "LRUPolicy",
    "LIPPolicy",
    "BIPPolicy",
    "RandomPolicy",
    "SRRIPPolicy",
    "BRRIPPolicy",
    "DRRIPPolicy",
    "TADRRIPPolicy",
    "DIPPolicy",
    "PDPPolicy",
    "BeladyMINPolicy",
    "make_policy",
    "TalusCache",
    "ShadowPair",
]
