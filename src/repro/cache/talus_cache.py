"""The Talus hardware wrapper: shadow partitions plus a sampling function.

Talus extends an existing partitioning scheme by (Sec. VI-B of the paper):

1. doubling the number of hardware partitions,
2. using two *shadow partitions* (alpha and beta) per logical
   (software-visible) partition, and
3. adding one configurable sampling function per logical partition — an H3
   hash compared against an 8-bit limit register — that steers each access
   to the alpha or beta shadow partition.

:class:`TalusCache` wraps any :class:`~repro.cache.partition.base.PartitionedCache`
built with ``2 * num_logical`` partitions and exposes the logical-partition
interface.  Configurations come from the planner in :mod:`repro.core.talus`
(directly, or via the software wrapper in
:mod:`repro.partitioning.talus_wrap`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.misscurve import MissCurve
from ..core.talus import TalusConfig, plan_shadow_partitions
from .cache import CacheStats, materialize_addresses
from .hashing import SamplingFunction
from .partition.base import PartitionedCache

__all__ = ["TalusCache", "ShadowPair"]


@dataclass
class ShadowPair:
    """Bookkeeping for one logical partition's pair of shadow partitions."""

    logical: int
    alpha_index: int
    beta_index: int
    sampler: SamplingFunction
    config: TalusConfig | None = None


class TalusCache:
    """Talus on top of an arbitrary partitioned cache.

    Parameters
    ----------
    base:
        A partitioned cache with exactly ``2 * num_logical`` partitions.
        Even partition indices are alpha shadow partitions, odd indices are
        beta shadow partitions (logical partition ``p`` owns hardware
        partitions ``2p`` and ``2p + 1``).
    num_logical:
        Number of software-visible partitions.
    sampler_bits:
        Width of the sampling hash / limit register (paper: 8 bits).
    seed:
        Seed for the per-partition H3 hash functions.
    """

    def __init__(self, base: PartitionedCache, num_logical: int,
                 sampler_bits: int = 8, seed: int = 7):
        if base.num_partitions != 2 * num_logical:
            raise ValueError(
                f"base cache must have {2 * num_logical} partitions "
                f"(2 per logical partition), got {base.num_partitions}")
        self.base = base
        self.num_logical = num_logical
        self._pairs = [
            ShadowPair(logical=p, alpha_index=2 * p, beta_index=2 * p + 1,
                       sampler=SamplingFunction(0.0, out_bits=sampler_bits,
                                                seed=seed + p))
            for p in range(num_logical)
        ]
        self.logical_stats = [CacheStats() for _ in range(num_logical)]

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def configure(self, logical: int, config: TalusConfig) -> TalusConfig:
        """Apply a Talus configuration to one logical partition.

        The shadow partition sizes are requested from the underlying scheme;
        if the scheme coarsens them (e.g. way partitioning), the sampling
        rate is recomputed from the granted alpha size (``rho = s1 / alpha``,
        Sec. VI-B) so that the alpha partition still emulates a cache of
        size ``alpha``.

        Returns the configuration actually in effect (post-coarsening).
        """
        self._check_logical(logical)
        pair = self._pairs[logical]
        requests = self._build_requests(logical, config)
        granted = self.base.set_allocations(requests)
        return self._apply_granted(pair, config, granted)

    def configure_many(self, configs: "Sequence[TalusConfig | None]"
                       ) -> list[TalusConfig | None]:
        """Reconfigure several logical partitions in one atomic step.

        All shadow-partition sizes are granted by a *single*
        ``set_allocations`` call on the underlying scheme, so a plan that
        simultaneously grows one logical partition and shrinks another is
        applied without the transient over-capacity state that sequential
        :meth:`configure` calls would request (grow-before-shrink exceeds
        the partitionable capacity and is rejected).  ``None`` entries
        leave that logical partition's current configuration in place.

        Returns the effective (post-coarsening) configuration per logical
        partition.
        """
        configs = list(configs)
        if len(configs) != self.num_logical:
            raise ValueError(
                f"expected {self.num_logical} configs, got {len(configs)}")
        requests = [0.0] * self.base.num_partitions
        for pair, config in zip(self._pairs, configs):
            effective = config if config is not None else pair.config
            if effective is not None:
                requests[pair.alpha_index] = effective.s1
                requests[pair.beta_index] = effective.s2
        granted = self.base.set_allocations(requests)
        out: list[TalusConfig | None] = []
        for pair, config in zip(self._pairs, configs):
            if config is None:
                out.append(pair.config)
            else:
                out.append(self._apply_granted(pair, config, granted))
        return out

    def _apply_granted(self, pair: ShadowPair, config: TalusConfig,
                       granted: list[int]) -> TalusConfig:
        """Derive and program one pair's effective config from a grant."""
        granted_s1 = granted[pair.alpha_index]
        granted_s2 = granted[pair.beta_index]

        if config.degenerate:
            rho = 0.0
        elif config.alpha <= 0:
            # alpha = 0: the alpha shadow partition holds nothing and the
            # planned fraction of accesses is effectively bypassed; the
            # coarsening correction (rho = s1/alpha) does not apply.
            rho = config.rho
        else:
            rho = min(1.0, granted_s1 / config.alpha)
        pair.sampler.set_rate(rho)
        effective = TalusConfig(
            total_size=float(granted_s1 + granted_s2),
            alpha=config.alpha, beta=config.beta,
            rho=pair.sampler.rate,
            s1=float(granted_s1), s2=float(granted_s2),
            degenerate=config.degenerate,
        )
        pair.config = effective
        return effective

    def configure_from_curve(self, logical: int, curve: MissCurve,
                             total_size: float,
                             safety_margin: float = 0.0) -> TalusConfig:
        """Plan (Theorem 6) and apply a configuration in one step."""
        config = plan_shadow_partitions(curve, total_size,
                                        safety_margin=safety_margin)
        return self.configure(logical, config)

    def _build_requests(self, logical: int, config: TalusConfig) -> list[float]:
        """Allocation request vector for the underlying partitioned cache.

        Keeps the other logical partitions' current requests unchanged.
        """
        requests = [0.0] * self.base.num_partitions
        for pair in self._pairs:
            if pair.logical == logical:
                requests[pair.alpha_index] = config.s1
                requests[pair.beta_index] = config.s2
            elif pair.config is not None:
                requests[pair.alpha_index] = pair.config.s1
                requests[pair.beta_index] = pair.config.s2
        return requests

    # ------------------------------------------------------------------ #
    # Access path
    # ------------------------------------------------------------------ #
    def access(self, address: int, logical: int = 0) -> bool:
        """Perform one access on behalf of a logical partition."""
        self._check_logical(logical)
        pair = self._pairs[logical]
        if pair.sampler.goes_to_alpha(address):
            target = pair.alpha_index
        else:
            target = pair.beta_index
        hit = self.base.access(address, target)
        self.logical_stats[logical].record(hit)
        return hit

    @property
    def supports_batch_replay(self) -> bool:
        """Whether :meth:`run` replays a whole trace in one batched pass.

        True when the underlying partitioned cache offers
        ``run_partitioned`` (the array backend); the steering decisions are
        then vectorized and the replay runs in the native kernel.
        """
        return hasattr(self.base, "run_partitioned")

    def run(self, trace, logical: int = 0, instructions: int = 0) -> CacheStats:
        """Replay a trace on behalf of one logical partition.

        On an array-backed base (:attr:`supports_batch_replay`) the whole
        trace is steered in one vectorized H3 pass and replayed through
        ``run_partitioned`` — bit-identical to the per-access path, since
        the sampling function is a pure function of the address.
        """
        self._check_logical(logical)
        if self.supports_batch_replay:
            addrs = materialize_addresses(trace)
            pair = self._pairs[logical]
            hashes = pair.sampler.hash.hash_array(addrs)
            parts = np.where(hashes < np.uint64(pair.sampler.limit),
                             pair.alpha_index, pair.beta_index
                             ).astype(np.int64)
            _, misses = self.base.run_partitioned(addrs, parts)
            stats = self.logical_stats[logical]
            n = int(addrs.size)
            m = int(misses[pair.alpha_index] + misses[pair.beta_index])
            stats.accesses += n
            stats.misses += m
            stats.hits += n - m
        else:
            for address in trace:
                self.access(int(address), logical)
        if instructions:
            self.logical_stats[logical].instructions += instructions
        return self.logical_stats[logical]

    def replay_task(self, trace, logical: int = 0):
        """This logical partition's replay of ``trace`` as a batchable
        :class:`~repro.cache.threadbatch.ReplayTask`.

        Steering is the same vectorized H3 pass :meth:`run` performs; the
        resulting partition-tagged replay is delegated to the base cache's
        ``replay_task`` with a chained hook folding the logical-partition
        statistics — so a batched Talus task commits exactly what
        :meth:`run` would have recorded.
        """
        from .threadbatch import ReplayTask
        self._check_logical(logical)
        addrs = materialize_addresses(trace)
        if not self.supports_batch_replay \
                or not hasattr(self.base, "replay_task"):
            return ReplayTask(fallback=lambda: self.run(addrs, logical))
        pair = self._pairs[logical]
        hashes = pair.sampler.hash.hash_array(addrs)
        parts = np.where(hashes < np.uint64(pair.sampler.limit),
                         pair.alpha_index, pair.beta_index).astype(np.int64)
        task = self.base.replay_task(addrs, parts)
        stats = self.logical_stats[logical]
        pair_misses = task.misses
        n = int(addrs.size)

        def fold() -> None:
            m = int(pair_misses[pair.alpha_index]
                    + pair_misses[pair.beta_index])
            stats.accesses += n
            stats.misses += m
            stats.hits += n - m

        return task.add_callback(fold)

    def run_chunk(self, trace, logical: int = 0,
                  instructions: int = 0) -> CacheStats:
        """Replay one chunk on behalf of a logical partition.

        Returns this chunk's statistics only (the cumulative statistics
        stay in :attr:`logical_stats`).  State carries across calls on
        both backends, and on the array backend warm reallocation
        (:meth:`configure`/:meth:`configure_many`) may be interleaved
        between chunks — the interval-based reconfiguration loop of
        :mod:`repro.sim.reconfigure` is exactly this alternation.
        """
        self._check_logical(logical)
        stats = self.logical_stats[logical]
        before_accesses = stats.accesses
        before_hits = stats.hits
        before_misses = stats.misses
        self.run(trace, logical, instructions=instructions)
        return CacheStats(accesses=stats.accesses - before_accesses,
                          hits=stats.hits - before_hits,
                          misses=stats.misses - before_misses,
                          instructions=instructions)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def shadow_pair(self, logical: int) -> ShadowPair:
        """The shadow-partition bookkeeping for a logical partition."""
        self._check_logical(logical)
        return self._pairs[logical]

    def total_stats(self) -> CacheStats:
        """Aggregate hit/miss statistics across all logical partitions."""
        total = CacheStats()
        for stats in self.logical_stats:
            total = total.merge(stats)
        return total

    def reset_stats(self) -> None:
        """Zero logical and underlying partition statistics."""
        self.logical_stats = [CacheStats() for _ in range(self.num_logical)]
        self.base.reset_stats()

    def snapshot(self, position: int = 0, meta: dict | None = None):
        """Capture the warm state (base cache + sampler registers +
        logical statistics) as a picklable, content-hashable
        :class:`~repro.sampling.checkpoint.CacheCheckpoint`."""
        from ..sampling.checkpoint import snapshot
        return snapshot(self, position=position, meta=meta)

    def restore(self, checkpoint) -> None:
        """Rewind this cache to ``checkpoint``'s state, in place."""
        from ..sampling.checkpoint import restore_into
        restore_into(self, checkpoint)

    def to_spec(self):
        """A :class:`~repro.cache.spec.TalusSpec` rebuilding this cache.

        The underlying partitioned cache round-trips through its own
        ``to_spec``, and the currently programmed (effective, post-
        coarsening) configurations are recorded per logical partition, so
        ``build(talus.to_spec())`` reproduces this cache as configured now.
        """
        from .spec import TalusSpec
        sampler = self._pairs[0].sampler
        return TalusSpec(partition=self.base.to_spec(),
                         num_logical=self.num_logical,
                         sampler_bits=sampler.out_bits,
                         sampler_seed=sampler.hash.seed,
                         configs=tuple(pair.config for pair in self._pairs))

    @classmethod
    def from_spec(cls, spec) -> "TalusCache":
        """Build a Talus cache from a :class:`~repro.cache.spec.TalusSpec`."""
        from .spec import build
        return build(spec)

    def _check_logical(self, logical: int) -> None:
        if not 0 <= logical < self.num_logical:
            raise ValueError(
                f"logical partition must be in [0, {self.num_logical}), got {logical}")

    def __repr__(self) -> str:
        return (f"TalusCache(base={type(self.base).__name__}, "
                f"logical_partitions={self.num_logical})")
