"""Set-associative cache model and statistics.

This is the basic trace-driven cache used for single-application policy
comparisons (Fig. 10 of the paper) and as the building block of the
partitioned organizations in :mod:`repro.cache.partition`.

Addresses are *line* addresses (already divided by the line size); the cache
maps them to sets with a hashed index (like a real LLC), and each set is a
small fully-associative region managed by a replacement policy instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from .hashing import mix64
from .replacement.base import EvictionPolicy, PolicyFactory
from .replacement.lru import LRUPolicy

__all__ = ["CacheStats", "SetAssociativeCache", "simulate_trace", "lru_factory",
           "materialize_addresses", "policy_factory_from_class"]


def materialize_addresses(trace) -> np.ndarray:
    """A trace as a contiguous int64 address array.

    Accepts :class:`~repro.workloads.access.Trace` objects (their
    ``addresses``), numpy arrays, sequences, and lazy iterables
    (generators are drained via :func:`numpy.fromiter`).  This is the
    input normalization every batch fast path shares.
    """
    if hasattr(trace, "addresses"):
        trace = trace.addresses
    if not isinstance(trace, np.ndarray) and not hasattr(trace, "__len__"):
        trace = np.fromiter((int(a) for a in trace), dtype=np.int64)
    return np.ascontiguousarray(np.asarray(trace, dtype=np.int64))


@dataclass
class CacheStats:
    """Hit/miss counters for a simulation run.

    ``instructions`` is optional metadata used to convert misses to MPKI; it
    is normally supplied by the workload (accesses-per-kilo-instruction).
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    instructions: int = 0
    bypasses: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0 when there were no accesses)."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0 when there were no accesses)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def mpki(self) -> float:
        """Misses per kilo-instruction; requires ``instructions`` metadata."""
        if self.instructions <= 0:
            raise ValueError("instructions not recorded; cannot compute MPKI")
        return 1000.0 * self.misses / self.instructions

    def record(self, hit: bool) -> None:
        """Count one access."""
        self.accesses += 1
        if hit:
            self.hits += 1
        else:
            self.misses += 1

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return the sum of two stats objects (for aggregating partitions).

        ``extra`` metadata is carried over from both sides: numeric values
        present in both are summed (they are counters, like the hit/miss
        fields), anything else keeps ``other``'s value, mirroring how the
        scalar counters combine.
        """
        extra = dict(self.extra)
        for key, value in other.extra.items():
            mine = extra.get(key)
            if (isinstance(mine, (int, float)) and not isinstance(mine, bool)
                    and isinstance(value, (int, float))
                    and not isinstance(value, bool)):
                extra[key] = mine + value
            else:
                extra[key] = value
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            instructions=self.instructions + other.instructions,
            bypasses=self.bypasses + other.bypasses,
            extra=extra,
        )


def lru_factory(region_index: int, capacity: int) -> LRUPolicy:
    """Default policy factory: plain LRU per region."""
    return LRUPolicy(capacity)


def policy_factory_from_class(policy_class: Callable[[int], EvictionPolicy],
                              **kwargs) -> PolicyFactory:
    """Adapt a policy class (or single-argument constructor) to a factory.

    Every region gets an independent instance; keyword arguments are passed
    through (e.g. ``policy_factory_from_class(BRRIPPolicy, epsilon=1/64)``).
    """

    def factory(region_index: int, capacity: int) -> EvictionPolicy:
        return policy_class(capacity, **kwargs)

    return factory


class SetAssociativeCache:
    """A hashed-index set-associative cache.

    Parameters
    ----------
    num_sets:
        Number of sets; any positive integer (hashed indexing does not
        require a power of two).
    ways:
        Associativity.  Total capacity is ``num_sets * ways`` lines.
    policy_factory:
        Callable ``(set_index, ways) -> EvictionPolicy`` building the
        replacement policy of each set.  Defaults to per-set LRU.
    index_seed:
        Seed of the set-index hash when ``hashed_index`` is true.
    hashed_index:
        If true, set indices come from a mixing hash of the address; if
        false (default), from the address modulo the number of sets — which
        is what real LLCs do with low-order index bits, and which spreads
        sequential scans perfectly evenly across sets (the behaviour the
        paper's libquantum-style cliffs depend on).
    """

    def __init__(self, num_sets: int, ways: int,
                 policy_factory: PolicyFactory = lru_factory,
                 index_seed: int = 0, hashed_index: bool = False):
        if num_sets <= 0:
            raise ValueError("num_sets must be positive")
        if ways <= 0:
            raise ValueError("ways must be positive")
        self.num_sets = num_sets
        self.ways = ways
        self.index_seed = index_seed
        self.hashed_index = hashed_index
        self._sets = [policy_factory(i, ways) for i in range(num_sets)]
        self.stats = CacheStats()

    @property
    def capacity_lines(self) -> int:
        """Total capacity in lines."""
        return self.num_sets * self.ways

    def set_index(self, address: int) -> int:
        """Set index for a line address."""
        if self.num_sets == 1:
            return 0
        if self.hashed_index:
            return mix64(address ^ (self.index_seed * 0x9E3779B97F4A7C15)) % self.num_sets
        return address % self.num_sets

    def access(self, address: int) -> bool:
        """Perform one access; returns True on a hit and updates stats."""
        hit = self._sets[self.set_index(address)].access(address)
        self.stats.record(hit)
        return hit

    def run(self, trace: Iterable[int], instructions: int = 0) -> CacheStats:
        """Replay a trace; returns (and stores) the accumulated stats."""
        for address in trace:
            self.access(int(address))
        if instructions:
            self.stats.instructions += instructions
        return self.stats

    def occupancy(self) -> int:
        """Number of currently resident lines across all sets."""
        return sum(len(s) for s in self._sets)

    def reset_stats(self) -> None:
        """Zero the statistics without touching cache contents."""
        self.stats = CacheStats()

    def to_spec(self):
        """A :class:`~repro.cache.spec.CacheSpec` rebuilding this cache.

        Caches built from a spec (or through ``build_cache``) return it
        verbatim; directly constructed caches recover the policy name from
        the first set's policy instance (constructor keyword arguments of
        custom factories are not recoverable).
        """
        stored = getattr(self, "_built_spec", None)
        if stored is not None:
            return stored
        from .spec import CacheSpec
        return CacheSpec(capacity_lines=self.capacity_lines, ways=self.ways,
                         policy=self._sets[0].name, backend="object",
                         hashed_index=self.hashed_index,
                         index_seed=self.index_seed)

    @classmethod
    def from_spec(cls, spec):
        """Build a cache from a :class:`~repro.cache.spec.CacheSpec`.

        The concrete class follows the spec's backend, so the result is
        not necessarily an instance of ``cls``.
        """
        from .spec import build
        return build(spec)

    def __repr__(self) -> str:
        return (f"SetAssociativeCache(sets={self.num_sets}, ways={self.ways}, "
                f"capacity={self.capacity_lines} lines)")


def simulate_trace(trace: Sequence[int], capacity_lines: int, ways: int = 16,
                   policy_factory: PolicyFactory = lru_factory,
                   instructions: int = 0,
                   index_seed: int = 0,
                   hashed_index: bool = False) -> CacheStats:
    """Convenience: simulate a trace through a cache of ``capacity_lines``.

    The number of sets is ``capacity_lines // ways`` (at least 1); if the
    capacity is smaller than one full set the cache degenerates to a single
    set with ``capacity_lines`` ways, preserving total capacity.
    """
    if capacity_lines <= 0:
        stats = CacheStats(instructions=instructions)
        for _ in trace:
            stats.record(False)
        return stats
    if capacity_lines < ways:
        num_sets, eff_ways = 1, capacity_lines
    else:
        num_sets, eff_ways = capacity_lines // ways, ways
    cache = SetAssociativeCache(num_sets, eff_ways, policy_factory,
                                index_seed=index_seed, hashed_index=hashed_index)
    return cache.run(trace, instructions=instructions)
