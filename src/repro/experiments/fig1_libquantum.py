"""Figure 1: libquantum's miss curve under LRU and under Talus.

The paper's opening figure: LRU on libquantum is flat at ~33 MPKI until the
32 MB array fits, then drops to near zero — a textbook performance cliff.
Talus traces the convex hull of that curve, turning the cliff into a smooth
ramp.

This harness is analytic: the LRU curve comes from an exact stack-distance
pass over the libquantum profile's trace, and the Talus curve from the
planner's predicted miss rate (Eq. 2/5) with the implementation's 5 % safety
margin.
"""

from __future__ import annotations

import numpy as np

from ..core.talus import talus_miss_curve
from ..workloads.spec_profiles import get_profile
from .common import FigureResult, Series, trace_length

__all__ = ["run_fig1"]


def run_fig1(max_mb: float = 40.0, points: int = 81,
             safety_margin: float = 0.05,
             n_accesses: int | None = None) -> FigureResult:
    """Reproduce Fig. 1: libquantum MPKI vs LLC size, LRU vs Talus.

    Returns a :class:`FigureResult` with two series ("LRU", "Talus") sampled
    at ``points`` sizes in ``[0, max_mb]``.
    """
    profile = get_profile("libquantum")
    n = n_accesses if n_accesses is not None else trace_length()
    lru = profile.lru_curve(max_mb=max_mb, points=points, n_accesses=n)
    talus = talus_miss_curve(lru, safety_margin=safety_margin)
    sizes = tuple(float(s) for s in lru.sizes)
    lru_series = Series("LRU", sizes, tuple(float(m) for m in lru.misses))
    talus_series = Series("Talus", sizes, tuple(float(m) for m in talus.misses))

    cliff_size = profile.cliff_mb or 32.0
    halfway = cliff_size / 2.0
    summary = {
        "lru_mpki_at_half_cliff": float(lru(halfway)),
        "talus_mpki_at_half_cliff": float(talus(halfway)),
        "lru_mpki_past_cliff": float(lru(cliff_size * 1.1)),
        "talus_mpki_past_cliff": float(talus(cliff_size * 1.1)),
        "cliff_mb": float(cliff_size),
        # How much of the plateau Talus recovers at the halfway point:
        # 1.0 means the cliff is fully linearized.
        "talus_gain_fraction_at_half": float(
            (lru(halfway) - talus(halfway))
            / max(lru(halfway) - lru(cliff_size * 1.1), 1e-9)),
    }
    return FigureResult(figure="Figure 1",
                        title="libquantum MPKI vs LLC size (LRU vs Talus)",
                        series=(lru_series, talus_series),
                        summary=summary)
