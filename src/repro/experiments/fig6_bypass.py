"""Figures 5 and 6: optimal bypassing versus Talus.

Bypassing a fraction of accesses makes the remaining accesses behave as in a
larger cache (Theorem 4), so it can cut into a cliff — but Corollary 8 shows
it can never beat the miss curve's convex hull, which Talus traces.  On the
Sec. III example at 4 MB, optimal bypassing reaches roughly 8 MPKI while
Talus reaches 6 MPKI.
"""

from __future__ import annotations

from ..core.bypass import optimal_bypass, optimal_bypass_curve
from ..core.talus import talus_miss_curve
from .common import FigureResult, Series
from .fig3_example import paper_example_curve

__all__ = ["run_fig6"]


def run_fig6(target_mb: float = 4.0) -> FigureResult:
    """Reproduce Fig. 6: original curve, Talus (convex hull), optimal bypassing.

    The summary records the Fig. 5 numbers at ``target_mb``: the optimal
    bypass fraction, the bypass miss rate, and Talus's miss rate.
    """
    curve = paper_example_curve()
    talus = talus_miss_curve(curve)
    bypass = optimal_bypass_curve(curve)
    choice = optimal_bypass(curve, target_mb)

    sizes = tuple(float(s) for s in curve.sizes)
    series = (
        Series("Original", sizes, tuple(float(m) for m in curve.misses)),
        Series("Talus", sizes, tuple(float(m) for m in talus.misses)),
        Series("Bypassing", sizes, tuple(float(m) for m in bypass.misses)),
    )
    summary = {
        "target_mb": float(target_mb),
        "original_mpki": float(curve(target_mb)),
        "talus_mpki": float(talus(target_mb)),
        "optimal_bypass_mpki": float(choice.misses),
        "optimal_bypass_cached_fraction": float(choice.rho),
        "bypass_minus_talus": float(choice.misses - talus(target_mb)),
    }
    return FigureResult(figure="Figure 6",
                        title="Talus (convex hull) vs optimal bypassing",
                        series=series, summary=summary)
