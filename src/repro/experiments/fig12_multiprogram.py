"""Figure 12: shared-cache performance and fairness over random 8-app mixes.

The paper evaluates 100 random mixes of the 18 most memory-intensive SPEC
apps on an 8-core, 8 MB-LLC system and reports weighted and harmonic
speedups over unpartitioned LRU for: Talus+V/LRU with hill climbing,
partitioned LRU with Lookahead, partitioned LRU with hill climbing, and
TA-DRRIP.  The claims to reproduce (Sec. VII-D):

* hill climbing on Talus is the best or tied-best scheme — naive convex
  optimization works because Talus's curves *are* convex;
* hill climbing on plain LRU is much worse (stuck in local optima);
* TA-DRRIP trails the partitioned schemes;
* Talus also leads (or ties) on harmonic speedup, i.e. it does not buy
  throughput with unfairness.
"""

from __future__ import annotations

import numpy as np

from ..sim.metrics import gmean
from ..sim.multicore import MixResult, SharedCacheExperiment
from ..workloads.mixes import random_mixes
from .common import FigureResult, Series, num_mixes

__all__ = ["run_fig12", "FIG12_SCHEMES"]

#: Scheme key -> label used in the paper's legend.
FIG12_SCHEMES = {
    "talus-hill": "Talus+V/LRU (Hill)",
    "lru-lookahead": "Lookahead",
    "ta-drrip": "TA-DRRIP",
    "lru-hill": "Hill LRU",
}


def run_fig12(total_mb: float = 8.0, apps_per_mix: int = 8,
              mixes: int | None = None, seed: int = 2015,
              metric: str = "weighted",
              substrate=None) -> FigureResult:
    """Reproduce Fig. 12 (one metric: "weighted" or "harmonic").

    Each series is the per-mix speedup distribution sorted ascending (the
    paper's quantile plot); the summary holds the gmean speedup of each
    scheme, which is what the text quotes.

    ``substrate`` optionally passes a declarative
    :class:`~repro.cache.spec.PartitionSpec` for the partitioning
    hardware; the experiment then models the managed fraction from the
    spec's exact partitionable capacity instead of the paper's nominal
    90 %.
    """
    if metric not in ("weighted", "harmonic"):
        raise ValueError("metric must be 'weighted' or 'harmonic'")
    n_mixes = mixes if mixes is not None else num_mixes()
    workloads = random_mixes(n_mixes, apps_per_mix=apps_per_mix, seed=seed)

    speedups: dict[str, list[float]] = {key: [] for key in FIG12_SCHEMES}
    for mix in workloads:
        experiment = SharedCacheExperiment(mix, total_mb=total_mb,
                                           substrate=substrate)
        baseline = experiment.evaluate("lru-shared")
        for key in FIG12_SCHEMES:
            result: MixResult = experiment.evaluate(key)
            if metric == "weighted":
                speedups[key].append(result.weighted_speedup_over(baseline))
            else:
                speedups[key].append(result.harmonic_speedup_over(baseline))

    x = tuple(float(i) for i in range(n_mixes))
    series = tuple(
        Series(label, x, tuple(sorted(speedups[key])))
        for key, label in FIG12_SCHEMES.items())
    summary = {}
    for key, label in FIG12_SCHEMES.items():
        summary[f"gmean_{metric}_speedup_{label}"] = float(gmean(speedups[key]))
        summary[f"max_{metric}_speedup_{label}"] = float(np.max(speedups[key]))
    return FigureResult(figure="Figure 12",
                        title=f"{metric.capitalize()} speedup over LRU "
                              f"({n_mixes} random mixes, {total_mb:g} MB LLC)",
                        series=series, summary=summary)
