"""Figure 8: Talus is agnostic to the partitioning scheme.

The paper runs Talus on LRU with three partitioning substrates — Vantage
(Talus+V), way partitioning (Talus+W) and idealized partitioning (Talus+I) —
on libquantum and gobmk, and shows that all three closely trace LRU's convex
hull.

This harness is fully trace-driven: for each target size a Talus cache is
built on the requested scheme, configured from the profile's measured LRU
curve (what the UMONs provide in hardware), and the profile's trace is
replayed through it.  Because each point is a real simulation, the default
size grid is coarser than the analytic harnesses.
"""

from __future__ import annotations

import numpy as np

from ..core.talus import talus_miss_curve
from ..sim.engine import talus_sweep_configs
from ..sim.sweep import run_sweep
from ..workloads.spec_profiles import get_profile
from .common import FigureResult, Series, fast_mode, trace_length

__all__ = ["run_fig8", "FIG8_SCHEMES"]

#: Scheme name -> label used in the paper's legend.
FIG8_SCHEMES = {"vantage": "Talus+V/LRU", "way": "Talus+W/LRU",
                "ideal": "Talus+I/LRU"}


def run_fig8(benchmark: str = "libquantum",
             max_mb: float | None = None,
             num_sizes: int | None = None,
             schemes: tuple[str, ...] = ("vantage", "way", "ideal"),
             safety_margin: float = 0.05,
             n_accesses: int | None = None,
             backend: str = "auto") -> FigureResult:
    """Reproduce one panel of Fig. 8 (default: libquantum).

    Returns one series per partitioning scheme plus the LRU curve and its
    convex hull (the target Talus should trace).  Each point is a
    declarative Talus spec; with the default "auto" backend the way and
    ideal schemes replay on the partition-aware native fast path
    (bit-identical to the object model), while Vantage — whose unmanaged
    region couples the partitions — stays on the object model.
    """
    profile = get_profile(benchmark)
    if max_mb is None:
        max_mb = 40.0 if benchmark == "libquantum" else 8.0
    if num_sizes is None:
        num_sizes = 6 if fast_mode() else 11
    n = n_accesses if n_accesses is not None else trace_length()

    sizes_mb = np.linspace(max_mb / num_sizes, max_mb, num_sizes)
    lru = profile.lru_curve(max_mb=max_mb * 1.25, points=81, n_accesses=n)
    hull = talus_miss_curve(lru)

    series = [
        Series("LRU", tuple(float(s) for s in sizes_mb),
               tuple(float(lru(s)) for s in sizes_mb)),
        Series("LRU hull", tuple(float(s) for s in sizes_mb),
               tuple(float(hull(s)) for s in sizes_mb)),
    ]
    # One batched pass: the trace is materialized once and every planned
    # Talus cache of every scheme consumes it — in a single kernel call
    # per point where the scheme rides the array fast path, or in the
    # shared per-access streaming pass otherwise.
    trace = profile.trace(n_accesses=n)
    configs = []
    for scheme in schemes:
        configs.extend(talus_sweep_configs(
            sizes_mb, scheme=scheme, policy="LRU", planning_curve=lru,
            safety_margin=safety_margin, label=scheme, backend=backend))
    sweep = run_sweep(trace, configs)
    summary: dict[str, float] = {}
    for scheme in schemes:
        points = [(s, sweep.mpki((scheme, float(s)))) for s in sizes_mb]
        label = FIG8_SCHEMES.get(scheme, f"Talus+{scheme}")
        series.append(Series(label, tuple(float(s) for s, _ in points),
                             tuple(float(m) for _, m in points)))
        # Mean excess MPKI over the hull (should be small): the paper's
        # "closely traces LRU's convex hull" claim, quantified.
        excess = np.mean([max(0.0, m - float(hull(s))) for s, m in points])
        summary[f"mean_excess_over_hull_{scheme}"] = float(excess)
    summary["mean_lru_minus_hull"] = float(
        np.mean([float(lru(s)) - float(hull(s)) for s in sizes_mb]))
    return FigureResult(figure="Figure 8",
                        title=f"Talus on LRU across partitioning schemes ({benchmark})",
                        series=tuple(series), summary=summary)
