"""Figures 2 and 3: the worked example of Section III.

An application accesses 2 MB of data at random and 3 MB sequentially, at
24 APKI.  Its LRU miss curve declines until the random set fits, stays flat
at 12 MPKI, and drops to 3 MPKI once everything fits at 5 MB.  At a 4 MB
cache Talus picks alpha = 2 MB, beta = 5 MB, rho = 1/3, shadow sizes
2/3 MB and 10/3 MB, and achieves 6 MPKI instead of 12 (Fig. 2c).

Two variants are provided:

* :func:`paper_example_curve` — the idealized curve with exactly the
  paper's numbers (used by the unit tests to check the math verbatim);
* :func:`run_fig3` — the same experiment end to end on a generated
  scan-plus-random trace, including a trace-driven simulation of the Talus
  cache at 4 MB, showing the 12 → ~6 MPKI reduction on a real access
  stream.
"""

from __future__ import annotations

import numpy as np

from ..core.misscurve import MissCurve
from ..core.talus import plan_shadow_partitions, predicted_miss, talus_miss_curve
from ..workloads.generators import scan_plus_random
from ..workloads.scale import paper_mb_to_lines
from .common import FigureResult, Series, trace_length

__all__ = ["paper_example_curve", "run_fig3"]


def paper_example_curve() -> MissCurve:
    """The idealized Sec. III miss curve: 24 MPKI at 0, 12 at 2 MB, 3 at 5 MB.

    Between 0 and 2 MB the curve declines linearly (the random component),
    it is flat from 2 to 5 MB (the plateau), and drops to 3 MPKI at 5 MB
    (the cliff), staying flat afterwards.
    """
    sizes = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0]
    misses = [24.0, 18.0, 12.0, 12.0, 12.0, 3.0, 3.0, 3.0, 3.0]
    return MissCurve(sizes, misses)


def run_fig3(target_mb: float = 4.0, apki: float = 24.0,
             n_accesses: int | None = None, seed: int = 0) -> FigureResult:
    """Reproduce the Sec. III example end to end.

    Returns the original LRU curve, the Talus curve (its convex hull), and a
    summary containing the planned configuration (alpha, beta, rho, shadow
    sizes) and both the predicted and the *simulated* MPKI of a Talus cache
    at ``target_mb``.
    """
    n = n_accesses if n_accesses is not None else trace_length()
    trace = scan_plus_random(random_lines=paper_mb_to_lines(2.0),
                             scan_lines=paper_mb_to_lines(3.0),
                             n_accesses=n, random_fraction=0.5,
                             apki=apki, seed=seed)
    from ..sim.engine import lru_mpki_curve
    sizes_mb = np.linspace(0.0, 10.0, 41)
    lru = lru_mpki_curve(trace, sizes_mb)
    talus = talus_miss_curve(lru)

    config = plan_shadow_partitions(lru, target_mb)
    predicted = predicted_miss(lru, config)

    # Trace-driven validation: program an ideal 2-partition cache with the
    # planned shadow sizes and replay the trace through the Talus wrapper,
    # going through the same sweep engine the figure harnesses use.
    from ..sim.engine import talus_sweep_configs
    from ..sim.sweep import run_sweep
    sweep = run_sweep(trace, talus_sweep_configs(
        [target_mb], scheme="ideal", planning_curve=lru, safety_margin=0.0),
        backend="object")
    simulated_mpki = sweep.mpki(("talus", float(target_mb)))

    sizes = tuple(float(s) for s in lru.sizes)
    series = (
        Series("Original (LRU)", sizes, tuple(float(m) for m in lru.misses)),
        Series("Talus", sizes, tuple(float(m) for m in talus.misses)),
    )
    summary = {
        "alpha_mb": config.alpha,
        "beta_mb": config.beta,
        "rho": config.rho,
        "s1_mb": config.s1,
        "s2_mb": config.s2,
        "lru_mpki_at_target": float(lru(target_mb)),
        "talus_predicted_mpki_at_target": float(predicted),
        "talus_simulated_mpki_at_target": float(simulated_mpki),
    }
    return FigureResult(figure="Figure 3",
                        title="Sec. III worked example (scan + random, cliff at 5 MB)",
                        series=series, summary=summary)
