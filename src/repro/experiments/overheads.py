"""Section VI-D: overhead analysis of the Talus implementation.

The paper accounts for the extra state Talus adds to an 8-core, 8 MB-LLC
system: per-partition sampling functions (8-bit H3 hash + 8-bit limit
register), Vantage partition state for the doubled partition count, an
extra tag bit per line, and the monitors (4 KB conventional UMON + 1 KB
low-rate UMON per core) — 24.2 KB in total, about 0.3 % of the LLC.

This harness recomputes that accounting from the configuration so the
numbers stay consistent with the simulated system.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.config import MULTI_PROGRAMMED, SystemConfig

__all__ = ["OverheadReport", "run_overheads"]

_BITS_PER_KB = 8 * 1024


@dataclass(frozen=True)
class OverheadReport:
    """Hardware state added by Talus, in KB, for a given system."""

    monitor_kb: float
    sampling_kb: float
    partition_state_kb: float
    tag_bits_kb: float
    llc_kb: float

    @property
    def total_kb(self) -> float:
        """Total extra state in KB."""
        return (self.monitor_kb + self.sampling_kb + self.partition_state_kb
                + self.tag_bits_kb)

    @property
    def overhead_fraction(self) -> float:
        """Extra state as a fraction of LLC capacity."""
        return self.total_kb / self.llc_kb if self.llc_kb else 0.0


def run_overheads(config: SystemConfig = MULTI_PROGRAMMED,
                  umon_ways: int = 64, umon_lines: int = 1024,
                  sampled_monitor_ways: int = 16,
                  tag_bits: int = 32,
                  vantage_state_bits_per_partition: int = 256,
                  line_size_bytes: int = 64) -> OverheadReport:
    """Compute the Sec. VI-D overhead accounting for ``config``.

    Defaults follow the paper: 64-way 1 K-line UMONs with 32-bit tags
    (4 KB/core), a 1 KB low-rate monitor per core, 8-bit hash + 8-bit limit
    register per logical partition, 256 bits of Vantage state per (doubled)
    partition, and one extra partition-id bit per LLC tag.
    """
    cores = config.cores
    # Monitors: conventional UMON (umon_lines tags) + sampled UMON covering
    # 4x capacity with 1/4 of the lines (16 of 64 ways in the paper).
    umon_bits = umon_lines * tag_bits
    sampled_bits = umon_lines * sampled_monitor_ways // umon_ways * tag_bits
    monitor_kb = cores * (umon_bits + sampled_bits) / _BITS_PER_KB

    # Sampling functions: an 8-bit H3 hash output row set (8 bits x 48 input
    # bits) plus an 8-bit limit register per logical partition.
    sampling_bits_per_partition = 8 * 48 + 8
    sampling_kb = cores * sampling_bits_per_partition / _BITS_PER_KB

    # Doubling partitions: Vantage needs 256 bits of state per partition;
    # Talus adds one extra (shadow) partition per logical partition.
    partition_state_kb = cores * vantage_state_bits_per_partition / _BITS_PER_KB

    # One extra tag bit per line to extend the partition id space.
    llc_lines = config.llc_mb * 1024 * 1024 / line_size_bytes
    tag_bits_kb = llc_lines * 1 / _BITS_PER_KB

    llc_kb = config.llc_mb * 1024
    return OverheadReport(monitor_kb=monitor_kb, sampling_kb=sampling_kb,
                          partition_state_kb=partition_state_kb,
                          tag_bits_kb=tag_bits_kb, llc_kb=llc_kb)
