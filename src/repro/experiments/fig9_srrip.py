"""Figure 9: Talus is agnostic to the replacement policy (SRRIP).

SRRIP does not obey the stack property, so its miss curve must be measured
with a multi-point monitor (one sampled monitor per curve point — Sec. VI-C,
impractically expensive in hardware but sufficient to demonstrate policy
agnosticism).  Talus then plans on that curve and runs with SRRIP inside the
shadow partitions, smoothing SRRIP's cliffs the same way it smooths LRU's.
"""

from __future__ import annotations

import numpy as np

from ..core.convexhull import convex_hull
from ..core.misscurve import MissCurve
from ..sim.engine import (monitored_mpki_curve, simulated_mpki_curve,
                          talus_simulated_mpki_curve)
from ..workloads.spec_profiles import get_profile
from .common import FigureResult, Series, fast_mode, trace_length

__all__ = ["run_fig9", "srrip_curve_from_monitor"]


def srrip_curve_from_monitor(benchmark: str, sizes_mb, n_accesses: int,
                             monitor_lines: int = 2048,
                             backend: str = "auto") -> MissCurve:
    """Measure an SRRIP miss curve with a multi-point monitor (paper MB/MPKI).

    Runs on the monitoring fast path: set-sampled per-point monitors
    replayed by the native kernel (see
    :func:`repro.sim.engine.monitored_mpki_curve`).
    """
    profile = get_profile(benchmark)
    trace = profile.trace(n_accesses=n_accesses)
    return monitored_mpki_curve(trace, sizes_mb, "SRRIP",
                                monitor_lines=monitor_lines, backend=backend)


def run_fig9(benchmark: str = "libquantum",
             max_mb: float | None = None,
             num_sizes: int | None = None,
             use_monitor: bool = True,
             safety_margin: float = 0.05,
             n_accesses: int | None = None,
             backend: str = "auto") -> FigureResult:
    """Reproduce one panel of Fig. 9: SRRIP vs Talus-on-SRRIP.

    Parameters
    ----------
    use_monitor:
        If True, Talus plans on a multi-point-monitor measurement of SRRIP's
        curve (as in the paper); if False, it plans on the directly
        simulated SRRIP curve (an idealized monitor).
    backend:
        Simulation backend for the SRRIP size sweep *and* the Talus
        replay (the default "auto" picks the array/native core — for the
        Talus+W/SRRIP points via the partition-aware fast path — which is
        bit-identical to the object model for SRRIP).
    """
    profile = get_profile(benchmark)
    if max_mb is None:
        max_mb = 40.0 if benchmark == "libquantum" else 16.0
    if num_sizes is None:
        num_sizes = 5 if fast_mode() else 9
    n = n_accesses if n_accesses is not None else trace_length()
    trace = profile.trace(n_accesses=n)

    sizes_mb = np.linspace(max_mb / num_sizes, max_mb, num_sizes)
    srrip = simulated_mpki_curve(trace, sizes_mb, "SRRIP", backend=backend)
    if use_monitor:
        planning = srrip_curve_from_monitor(benchmark, sizes_mb, n_accesses=n)
    else:
        planning = srrip
    talus = talus_simulated_mpki_curve(
        profile, sizes_mb, scheme="way", policy="SRRIP",
        planning_curve=planning, safety_margin=safety_margin, n_accesses=n,
        backend=backend)
    hull = convex_hull(srrip)

    sizes = tuple(float(s) for s in sizes_mb)
    series = (
        Series("SRRIP", sizes, tuple(float(srrip(s)) for s in sizes)),
        Series("SRRIP hull", sizes, tuple(float(hull(s)) for s in sizes)),
        Series("Talus+W/SRRIP", sizes, tuple(float(talus(s)) for s in sizes)),
    )
    excess = float(np.mean([max(0.0, float(talus(s)) - float(hull(s)))
                            for s in sizes]))
    gap = float(np.mean([float(srrip(s)) - float(hull(s)) for s in sizes]))
    summary = {
        "mean_talus_excess_over_hull": excess,
        "mean_srrip_minus_hull": gap,
    }
    return FigureResult(figure="Figure 9",
                        title=f"Talus on SRRIP ({benchmark})",
                        series=series, summary=summary)
