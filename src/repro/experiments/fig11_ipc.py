"""Figure 11: single-application IPC over LRU at 1 MB and 8 MB LLCs.

For every benchmark profile and every policy (Talus+V/LRU, PDP, DRRIP,
SRRIP), compute the IPC improvement over LRU at the two LLC sizes the paper
reports, plus the geometric mean across all benchmarks.  The claims to
reproduce: Talus improves performance whenever the other policies do, never
causes large degradations (its MPKI is never above LRU's), and its gmean is
comparable to the empirical policies (slightly behind DRRIP at 1 MB, ahead
of the pack at 8 MB).
"""

from __future__ import annotations

from ..core.talus import talus_miss_curve
from ..sim.engine import lru_mpki_curve
from ..sim.metrics import gmean
from ..sim.perf_model import ipc_from_mpki
from ..sim.sweep import SweepSpec, run_sweep
from ..workloads.spec_profiles import SPEC_PROFILES, get_profile
from .common import FigureResult, Series, fast_mode, trace_length

__all__ = ["run_fig11", "FIG11_POLICIES"]

FIG11_POLICIES = ("Talus+V/LRU", "PDP", "DRRIP", "SRRIP")

#: Benchmarks used in fast mode (the ones the paper's Fig. 11 highlights).
_FAST_BENCHMARKS = ("perlbench", "GemsFDTD", "libquantum", "lbm", "sphinx3",
                    "cactusADM", "mcf", "xalancbmk", "omnetpp", "soplex",
                    "milc", "astar")


def run_fig11(size_mb: float = 1.0,
              benchmarks: tuple[str, ...] | None = None,
              safety_margin: float = 0.05,
              n_accesses: int | None = None,
              policies: tuple[str, ...] = FIG11_POLICIES,
              backend: str = "auto",
              max_workers: int = 1) -> FigureResult:
    """Reproduce one panel of Fig. 11 (IPC over LRU at ``size_mb``).

    The series' x-axis is the benchmark index (in the order listed in the
    summary keys); y values are percent IPC improvement over LRU.  The
    simulated policies of each benchmark run as one batched sweep
    (:func:`repro.sim.sweep.run_sweep`) over a single materialized trace.
    """
    if benchmarks is None:
        benchmarks = _FAST_BENCHMARKS if fast_mode() else tuple(sorted(SPEC_PROFILES))
    n = n_accesses if n_accesses is not None else trace_length()
    simulated = tuple(p for p in policies if p != "Talus+V/LRU")

    per_policy: dict[str, list[float]] = {p: [] for p in policies}
    for benchmark in benchmarks:
        profile = get_profile(benchmark)
        trace = profile.trace(n_accesses=n)
        lru = lru_mpki_curve(trace, [0.0, size_mb / 2, size_mb, size_mb * 2,
                                     size_mb * 4, size_mb * 8, size_mb * 16,
                                     size_mb * 32])
        lru_ipc = ipc_from_mpki(profile, float(lru(size_mb)))
        sweep = run_sweep(trace, SweepSpec(
            sizes_mb=(float(size_mb),), policies=simulated,
            backend=backend, max_workers=max_workers)) if simulated else None
        for policy in policies:
            if policy == "Talus+V/LRU":
                talus = talus_miss_curve(lru, safety_margin=safety_margin)
                mpki = float(talus(size_mb))
            else:
                mpki = sweep.mpki((policy, float(size_mb)))
            ipc = ipc_from_mpki(profile, mpki)
            per_policy[policy].append(100.0 * (ipc / lru_ipc - 1.0))

    x = tuple(float(i) for i in range(len(benchmarks)))
    series = tuple(Series(policy, x, tuple(values))
                   for policy, values in per_policy.items())
    summary = {f"gmean_ipc_gain_pct_{policy}":
               100.0 * (gmean([1.0 + v / 100.0 for v in values]) - 1.0)
               for policy, values in per_policy.items()}
    summary.update({f"benchmark_{i}_{name}": float(i)
                    for i, name in enumerate(benchmarks)})
    return FigureResult(figure="Figure 11",
                        title=f"IPC over LRU at {size_mb:g} MB",
                        series=series, summary=summary)
