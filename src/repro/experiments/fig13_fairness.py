"""Figure 13: fairness case studies — eight copies of one benchmark.

Eight copies of libquantum, omnetpp or xalancbmk share the LLC as its size
sweeps from 1 MB to 72 MB.  Schemes: fair (equal) partitioning on
Talus+V/LRU, fair partitioning on LRU, Lookahead on LRU, and TA-DRRIP; the
baseline for execution time is unpartitioned LRU with a 1 MB LLC.  The
paper reports execution time (left panels, lower is better) and the
coefficient of variation of per-core IPC (right panels, lower is fairer).

Claims to reproduce:

* fair partitioning on plain LRU gives no speedup until each copy's whole
  working set fits (cliffs make equal shares useless);
* Lookahead improves performance but by giving the cache to a few copies —
  large CoV (unfair);
* Talus with naive equal allocations gets steady gains with increasing LLC
  size *and* near-zero CoV.
"""

from __future__ import annotations

import numpy as np

from ..sim.multicore import SharedCacheExperiment
from ..workloads.mixes import homogeneous_mix
from ..workloads.spec_profiles import get_profile
from .common import FigureResult, Series, fast_mode

__all__ = ["run_fig13", "FIG13_SCHEMES"]

FIG13_SCHEMES = {
    "talus-fair": "Talus+V/LRU (Fair)",
    "lru-lookahead": "Lookahead",
    "ta-drrip": "TA-DRRIP",
    "lru-fair": "Fair LRU",
}


def run_fig13(benchmark: str = "libquantum", copies: int = 8,
              sizes_mb: tuple[float, ...] | None = None,
              ) -> tuple[FigureResult, FigureResult]:
    """Reproduce one row of Fig. 13.

    Returns two figures: normalized execution time vs LLC size, and CoV of
    per-core IPC vs LLC size.
    """
    profile = get_profile(benchmark)
    if sizes_mb is None:
        if fast_mode():
            sizes_mb = (1.0, 4.0, 8.0, 16.0, 24.0, 32.0, 48.0, 72.0)
        else:
            sizes_mb = (1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 32.0, 40.0,
                        48.0, 56.0, 64.0, 72.0)
    mix = homogeneous_mix(benchmark, copies=copies)

    # Baseline: unpartitioned LRU at the smallest size (1 MB in the paper).
    base_experiment = SharedCacheExperiment(mix, total_mb=sizes_mb[0],
                                            curve_max_mb=4 * max(sizes_mb))
    base_ipc = float(np.mean(base_experiment.evaluate("lru-shared").ipcs))

    exec_time: dict[str, list[float]] = {k: [] for k in FIG13_SCHEMES}
    cov: dict[str, list[float]] = {k: [] for k in FIG13_SCHEMES}
    for size in sizes_mb:
        experiment = SharedCacheExperiment(mix, total_mb=size,
                                           curve_max_mb=4 * max(sizes_mb))
        for key in FIG13_SCHEMES:
            result = experiment.evaluate(key)
            # Fixed work per thread: normalized execution time is the ratio
            # of baseline IPC to the mix's average IPC (lower is better).
            exec_time[key].append(base_ipc / float(np.mean(result.ipcs)))
            cov[key].append(result.cov_ipc)

    x = tuple(float(s) for s in sizes_mb)
    time_series = tuple(Series(label, x, tuple(exec_time[key]))
                        for key, label in FIG13_SCHEMES.items())
    cov_series = tuple(Series(label, x, tuple(cov[key]))
                       for key, label in FIG13_SCHEMES.items())

    cliff = profile.cliff_mb or 0.0
    time_summary = {
        "cliff_mb": float(cliff),
        **{f"exec_time_at_max_{label}": values[-1]
           for label, values in ((FIG13_SCHEMES[k], exec_time[k])
                                 for k in FIG13_SCHEMES)},
    }
    cov_summary = {
        **{f"max_cov_{label}": float(np.max(values))
           for label, values in ((FIG13_SCHEMES[k], cov[k])
                                 for k in FIG13_SCHEMES)},
    }
    time_fig = FigureResult(figure="Figure 13 (execution time)",
                            title=f"8x {benchmark}: execution time vs LLC size",
                            series=time_series, summary=time_summary)
    cov_fig = FigureResult(figure="Figure 13 (CoV of IPC)",
                           title=f"8x {benchmark}: unfairness vs LLC size",
                           series=cov_series, summary=cov_summary)
    return time_fig, cov_fig
