"""Ablations of the design choices the paper calls out.

Three knobs of the Talus implementation (Sec. VI) get dedicated sweeps:

* **Safety margin on rho** — the paper uses 5 % to keep interval-to-interval
  variation from "pushing beta up the performance cliff".  The ablation
  sweeps the margin and reports simulated miss rates at a mid-plateau size:
  too little margin risks falling off the convex hull, too much gives away
  part of the hull's benefit.
* **Monitor coverage** — the secondary, low-rate UMON extends curve coverage
  beyond the LLC (Sec. VI-C).  Without it Talus cannot see cliffs past the
  LLC size (libquantum) and degenerates to plain LRU there.
* **Vantage unmanaged fraction** — how much of the cache the partitioning
  scheme cannot manage; Futility-Scaling-style schemes make this 0.

A fourth harness checks Corollary 7 (optimal replacement is convex) by
measuring Belady's MIN on a cliffy workload.
"""

from __future__ import annotations

import numpy as np

from ..cache.replacement.belady import belady_miss_curve_points
from ..core.convexhull import convex_hull, is_convex
from ..core.misscurve import MissCurve
from ..core.talus import talus_miss_curve
from ..sim.engine import talus_sweep_configs
from ..sim.sweep import run_sweep
from ..workloads.generators import scan_plus_random
from ..workloads.scale import paper_mb_to_lines
from ..workloads.spec_profiles import get_profile
from .common import FigureResult, Series, trace_length

__all__ = [
    "run_safety_margin_ablation",
    "run_monitor_coverage_ablation",
    "run_unmanaged_fraction_ablation",
    "run_min_convexity_check",
]


def run_safety_margin_ablation(benchmark: str = "omnetpp",
                               target_mb: float = 1.5,
                               margins: tuple[float, ...] = (0.0, 0.02, 0.05,
                                                             0.10, 0.20),
                               n_accesses: int | None = None) -> FigureResult:
    """Sweep the sampling-rate safety margin at a mid-plateau cache size.

    All margin variants are planned up front and the trace is streamed once
    through every planned Talus cache (one batched
    :func:`repro.sim.sweep.run_sweep` pass).
    """
    profile = get_profile(benchmark)
    n = n_accesses if n_accesses is not None else trace_length()
    lru = profile.lru_curve(max_mb=4 * target_mb, points=65, n_accesses=n)
    hull = convex_hull(lru)
    configs = []
    for margin in margins:
        configs.extend(talus_sweep_configs(
            [target_mb], scheme="ideal", planning_curve=lru,
            safety_margin=margin, label=("margin", margin)))
    sweep = run_sweep(profile.trace(n_accesses=n), configs, backend="object")
    simulated = [sweep.mpki((("margin", margin), float(target_mb)))
                 for margin in margins]
    predicted = [float(talus_miss_curve(lru, sizes=np.array([target_mb]),
                                        safety_margin=margin)(target_mb))
                 for margin in margins]
    x = tuple(float(m) for m in margins)
    series = (
        Series("Talus simulated MPKI", x, tuple(simulated)),
        Series("Talus predicted MPKI", x, tuple(predicted)),
        Series("LRU MPKI", x, tuple(float(lru(target_mb)) for _ in margins)),
        Series("Hull MPKI", x, tuple(float(hull(target_mb)) for _ in margins)),
    )
    summary = {
        "target_mb": float(target_mb),
        "lru_mpki": float(lru(target_mb)),
        "hull_mpki": float(hull(target_mb)),
        "best_margin": float(margins[int(np.argmin(simulated))]),
    }
    return FigureResult(figure="Ablation: safety margin",
                        title=f"{benchmark} at {target_mb:g} MB, margin sweep",
                        series=series, summary=summary)


def run_monitor_coverage_ablation(benchmark: str = "libquantum",
                                  target_mb: float = 8.0,
                                  coverages: tuple[float, ...] = (1.0, 2.0, 4.0),
                                  n_accesses: int | None = None) -> FigureResult:
    """Sweep the miss-curve coverage (as a multiple of the LLC size).

    With coverage 1x (no secondary monitor) the planner cannot see
    libquantum's 32 MB cliff from an 8 MB cache, so Talus has no hull
    segment to interpolate along and delivers LRU's plateau performance;
    with 4x coverage it recovers the proportional hull benefit.
    """
    profile = get_profile(benchmark)
    n = n_accesses if n_accesses is not None else trace_length()
    full = profile.lru_curve(max_mb=48.0, points=97, n_accesses=n)
    predicted = []
    for coverage in coverages:
        visible = full.restricted(target_mb * coverage)
        talus = talus_miss_curve(visible, sizes=np.array([target_mb]))
        predicted.append(float(talus(target_mb)))
    x = tuple(float(c) for c in coverages)
    series = (
        Series("Talus predicted MPKI", x, tuple(predicted)),
        Series("LRU MPKI", x, tuple(float(full(target_mb)) for _ in coverages)),
    )
    summary = {
        "lru_mpki_at_target": float(full(target_mb)),
        "talus_mpki_with_min_coverage": predicted[0],
        "talus_mpki_with_max_coverage": predicted[-1],
    }
    return FigureResult(figure="Ablation: monitor coverage",
                        title=f"{benchmark} at {target_mb:g} MB, coverage sweep",
                        series=series, summary=summary)


def run_unmanaged_fraction_ablation(benchmark: str = "omnetpp",
                                    target_mb: float = 1.5,
                                    fractions: tuple[float, ...] = (0.0, 0.05,
                                                                    0.10, 0.20),
                                    n_accesses: int | None = None) -> FigureResult:
    """Sweep Vantage's unmanaged fraction (0 == Futility-Scaling-like).

    All fraction variants ride one batched trace pass, exactly like the
    safety-margin ablation.
    """
    profile = get_profile(benchmark)
    n = n_accesses if n_accesses is not None else trace_length()
    lru = profile.lru_curve(max_mb=4 * target_mb, points=65, n_accesses=n)
    hull = convex_hull(lru)
    configs = []
    for fraction in fractions:
        if fraction == 0.0:
            scheme = "futility"
            scheme_kwargs = None
        else:
            scheme = "vantage"
            scheme_kwargs = {"unmanaged_fraction": fraction}
        configs.extend(talus_sweep_configs(
            [target_mb], scheme=scheme, planning_curve=lru,
            safety_margin=0.05, scheme_kwargs=scheme_kwargs,
            label=("unmanaged", fraction)))
    sweep = run_sweep(profile.trace(n_accesses=n), configs, backend="object")
    simulated = [sweep.mpki((("unmanaged", fraction), float(target_mb)))
                 for fraction in fractions]
    x = tuple(float(f) for f in fractions)
    series = (
        Series("Talus simulated MPKI", x, tuple(simulated)),
        Series("Hull MPKI", x, tuple(float(hull(target_mb)) for _ in fractions)),
        Series("LRU MPKI", x, tuple(float(lru(target_mb)) for _ in fractions)),
    )
    summary = {
        "hull_mpki": float(hull(target_mb)),
        "lru_mpki": float(lru(target_mb)),
        "mpki_with_no_unmanaged": simulated[0],
        "mpki_with_max_unmanaged": simulated[-1],
    }
    return FigureResult(figure="Ablation: unmanaged fraction",
                        title=f"{benchmark} at {target_mb:g} MB, unmanaged sweep",
                        series=series, summary=summary)


def run_min_convexity_check(random_mb: float = 0.5, scan_mb: float = 1.0,
                            n_accesses: int = 40_000,
                            num_sizes: int = 8) -> FigureResult:
    """Corollary 7: Belady's MIN has a (near-)convex miss curve.

    LRU on a scan-plus-random workload has a cliff; MIN on the same trace
    does not — its measured curve's total convexity gap is a small fraction
    of LRU's.
    """
    trace = scan_plus_random(paper_mb_to_lines(random_mb),
                             paper_mb_to_lines(scan_mb),
                             n_accesses=n_accesses, random_fraction=0.5, seed=3)
    max_lines = paper_mb_to_lines(random_mb + scan_mb) + 64
    capacities = np.linspace(max_lines / num_sizes, max_lines, num_sizes,
                             dtype=int)
    min_points = belady_miss_curve_points(trace.addresses, capacities)
    min_curve = MissCurve.from_points([(c, m) for c, m in min_points])
    from ..monitor.stack_distance import lru_miss_curve
    lru_curve = lru_miss_curve(trace.addresses,
                               sizes=[float(c) for c in capacities])
    from ..core.convexity import total_convexity_gap
    min_gap = total_convexity_gap(min_curve)
    lru_gap = total_convexity_gap(lru_curve)
    x = tuple(float(c) for c in capacities)
    series = (
        Series("MIN misses", x, tuple(float(m) for _, m in min_points)),
        Series("LRU misses", x, tuple(float(lru_curve(c)) for c in capacities)),
    )
    summary = {
        "min_convexity_gap": float(min_gap),
        "lru_convexity_gap": float(lru_gap),
        "min_is_convex": float(is_convex(min_curve, tolerance=5e-3)),
    }
    return FigureResult(figure="Corollary 7",
                        title="Optimal replacement (MIN) is convex; LRU is not",
                        series=series, summary=summary)
