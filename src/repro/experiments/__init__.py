"""Per-figure experiment harnesses.

Each module reproduces one figure (or analysis section) of the paper's
evaluation and returns plain data (:class:`~repro.experiments.common.FigureResult`)
that the benchmark suite prints.  See DESIGN.md for the experiment index.
"""

from .ablations import (run_min_convexity_check, run_monitor_coverage_ablation,
                        run_safety_margin_ablation,
                        run_unmanaged_fraction_ablation)
from .common import FigureResult, Series, format_table
from .fig1_libquantum import run_fig1
from .fig3_example import paper_example_curve, run_fig3
from .fig6_bypass import run_fig6
from .fig8_schemes import FIG8_SCHEMES, run_fig8
from .fig9_srrip import run_fig9, srrip_curve_from_monitor
from .fig10_policies import FIG10_POLICIES, run_fig10, run_fig10_benchmark
from .fig11_ipc import FIG11_POLICIES, run_fig11
from .fig12_multiprogram import FIG12_SCHEMES, run_fig12
from .fig13_fairness import FIG13_SCHEMES, run_fig13
from .overheads import OverheadReport, run_overheads

__all__ = [
    "FigureResult",
    "Series",
    "format_table",
    "run_fig1",
    "run_fig3",
    "paper_example_curve",
    "run_fig6",
    "run_fig8",
    "FIG8_SCHEMES",
    "run_fig9",
    "srrip_curve_from_monitor",
    "run_fig10",
    "run_fig10_benchmark",
    "FIG10_POLICIES",
    "run_fig11",
    "FIG11_POLICIES",
    "run_fig12",
    "FIG12_SCHEMES",
    "run_fig13",
    "FIG13_SCHEMES",
    "run_overheads",
    "OverheadReport",
    "run_safety_margin_ablation",
    "run_monitor_coverage_ablation",
    "run_unmanaged_fraction_ablation",
    "run_min_convexity_check",
]
