"""Shared helpers for the per-figure experiment harnesses.

Every harness returns plain data structures (dataclasses of floats/lists)
and offers a ``format_*`` helper that renders the same rows/series the
paper's figure shows, so the benchmark suite can simply print them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Sequence

__all__ = ["Series", "FigureResult", "format_table", "fast_mode",
           "trace_length", "num_mixes"]


@dataclass(frozen=True)
class Series:
    """One labelled curve of a figure: y-values over a shared x-axis."""

    label: str
    x: tuple[float, ...]
    y: tuple[float, ...]

    def __post_init__(self):
        if len(self.x) != len(self.y):
            raise ValueError("x and y must have the same length")

    def as_dict(self) -> Dict[float, float]:
        """Mapping from x to y."""
        return dict(zip(self.x, self.y))


@dataclass(frozen=True)
class FigureResult:
    """A reproduced figure: several series plus free-form summary scalars."""

    figure: str
    title: str
    series: tuple[Series, ...]
    summary: Dict[str, float]

    def series_by_label(self, label: str) -> Series:
        """Find a series by its label."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series labelled {label!r} in {self.figure}")


def format_table(result: FigureResult, x_name: str = "x",
                 float_fmt: str = "{:8.2f}") -> str:
    """Render a FigureResult as an aligned text table (one row per x value)."""
    if not result.series:
        return f"{result.figure}: (no series)"
    xs = result.series[0].x
    header = [f"{x_name:>10s}"] + [f"{s.label:>16s}" for s in result.series]
    lines = [f"== {result.figure}: {result.title} ==", " ".join(header)]
    for i, x in enumerate(xs):
        row = [f"{x:10.3f}"]
        for s in result.series:
            row.append(f"{float_fmt.format(s.y[i]):>16s}")
        lines.append(" ".join(row))
    if result.summary:
        lines.append("-- summary --")
        for key, value in result.summary.items():
            lines.append(f"  {key}: {value:.4f}")
    return "\n".join(lines)


def fast_mode() -> bool:
    """Whether the benches should run in reduced-size mode.

    Set ``REPRO_FAST=0`` to run the full-size experiments; the default keeps
    the complete benchmark suite runnable in a few minutes on a laptop.
    """
    return os.environ.get("REPRO_FAST", "1") != "0"


def trace_length(full: int = 150_000, fast: int = 60_000) -> int:
    """Trace length to use given the current mode."""
    return fast if fast_mode() else full


def num_mixes(full: int = 100, fast: int = 12) -> int:
    """Number of random mixes to evaluate given the current mode."""
    return fast if fast_mode() else full
