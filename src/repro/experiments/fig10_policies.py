"""Figure 10: MPKI vs LLC size for Talus+V/LRU and high-performance policies.

The paper compares Talus on LRU against SRRIP, DRRIP and PDP (with LRU for
reference) on six representative SPEC CPU2006 benchmarks over 128 KB–16 MB.
The qualitative claims to reproduce:

* Talus+V/LRU eliminates LRU's cliffs and is competitive with the
  high-performance policies;
* Talus never does worse than LRU (it only bridges non-convex regions),
  while the empirical policies sometimes do (e.g. RRIP on lbm-like
  streaming workloads, PDP on perlbench/cactusADM-like shapes).

LRU curves come from exact stack-distance analysis, Talus from the planner's
predicted curve with the 5 % safety margin, and SRRIP/DRRIP/PDP from
trace-driven simulation at each size.
"""

from __future__ import annotations

import numpy as np

from ..core.talus import talus_miss_curve
from ..sim.engine import lru_mpki_curve
from ..sim.sweep import SweepSpec, run_sweep
from ..workloads.spec_profiles import FIG10_BENCHMARKS, get_profile
from .common import FigureResult, Series, fast_mode, trace_length

__all__ = ["run_fig10", "run_fig10_benchmark", "FIG10_POLICIES"]

#: Simulated comparison policies, in the paper's legend order.
FIG10_POLICIES = ("PDP", "DRRIP", "SRRIP")


def run_fig10_benchmark(benchmark: str,
                        min_mb: float = 0.125, max_mb: float = 16.0,
                        num_sizes: int | None = None,
                        safety_margin: float = 0.05,
                        n_accesses: int | None = None,
                        policies: tuple[str, ...] = FIG10_POLICIES,
                        backend: str = "auto",
                        max_workers: int = 1) -> FigureResult:
    """Reproduce one panel of Fig. 10 (one benchmark, all policies).

    All (policy, size) points are simulated in one batched sweep over a
    single materialized trace; ``backend``/``max_workers`` are forwarded to
    :func:`repro.sim.sweep.run_sweep`.
    """
    profile = get_profile(benchmark)
    if num_sizes is None:
        num_sizes = 6 if fast_mode() else 12
    n = n_accesses if n_accesses is not None else trace_length()
    trace = profile.trace(n_accesses=n)

    sizes_mb = np.geomspace(min_mb, max_mb, num_sizes)
    lru = lru_mpki_curve(trace, np.concatenate(([0.0], sizes_mb,
                                                [max_mb * 2.5])))
    talus = talus_miss_curve(lru, safety_margin=safety_margin)

    sweep = run_sweep(trace, SweepSpec(
        sizes_mb=tuple(float(s) for s in sizes_mb), policies=policies,
        backend=backend, max_workers=max_workers))

    sizes = tuple(float(s) for s in sizes_mb)
    series = [
        Series("Talus+V/LRU", sizes, tuple(float(talus(s)) for s in sizes)),
        Series("LRU", sizes, tuple(float(lru(s)) for s in sizes)),
    ]
    for policy in policies:
        curve = sweep.mpki_curve(policy)
        series.append(Series(policy, sizes,
                             tuple(float(curve(s)) for s in sizes)))

    # Summary: worst-case regression of each policy vs LRU (positive means
    # the policy is worse than LRU somewhere), plus Talus's.
    summary = {}
    for s in series:
        if s.label == "LRU":
            continue
        worst = max(y - float(lru(x)) for x, y in zip(s.x, s.y))
        summary[f"max_regression_vs_lru_{s.label}"] = float(worst)
    return FigureResult(figure="Figure 10",
                        title=f"MPKI vs LLC size ({benchmark})",
                        series=tuple(series), summary=summary)


def run_fig10(benchmarks: tuple[str, ...] = FIG10_BENCHMARKS,
              **kwargs) -> dict[str, FigureResult]:
    """Reproduce all panels of Fig. 10 (one per benchmark)."""
    return {b: run_fig10_benchmark(b, **kwargs) for b in benchmarks}
