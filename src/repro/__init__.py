"""repro: a reproduction of Talus (Beckmann & Sanchez, HPCA 2015).

Talus removes performance cliffs in caches by splitting each logical cache
partition into two *shadow partitions* that emulate a smaller and a larger
cache, steering a hashed fraction of accesses to each so that the combined
miss rate traces the convex hull of the underlying policy's miss curve.

Package layout
--------------
``repro.core``
    Miss curves, convex hulls, the Talus planner, bypassing analysis.
``repro.cache``
    Trace-driven set-associative cache simulator, replacement policies
    (LRU, SRRIP, DRRIP, DIP, PDP, Belady MIN, Random), partitioning schemes
    (way, set, Vantage-like, ideal), and the Talus hardware wrapper.
``repro.monitor``
    Stack-distance / UMON miss-curve monitors and multi-point monitors.
``repro.workloads``
    Synthetic access-stream generators and SPEC-CPU2006-like profiles.
``repro.partitioning``
    Software partitioning algorithms (hill climbing, Lookahead, fair,
    optimal DP) and the Talus software wrapper.
``repro.sim``
    Simulation drivers, the analytic performance model, multi-programmed
    shared-cache experiments, and metrics.
``repro.experiments``
    One harness per paper figure; used by the benchmark suite.
"""

from .core import (MissCurve, TalusConfig, convex_hull, plan_shadow_partitions,
                   predicted_miss, talus_miss_curve)

__version__ = "1.0.0"

__all__ = [
    "MissCurve",
    "TalusConfig",
    "convex_hull",
    "plan_shadow_partitions",
    "predicted_miss",
    "talus_miss_curve",
    "__version__",
]
