"""Optimal partitioning by dynamic programming.

Minimizing total misses over arbitrary (possibly non-convex) miss curves is
NP-complete in general formulations, but on a fixed granularity grid it
admits an exact O(P · N²) dynamic program over "capacity given to the first
k partitions".  The paper uses such exhaustive solutions only implicitly
(as the target Lookahead approximates); here the DP serves as the reference
optimum in tests and ablations — e.g. verifying that hill climbing on convex
hulls matches the DP's total misses.
"""

from __future__ import annotations

import numpy as np

from .base import Allocation, PartitioningProblem, total_misses

__all__ = ["optimal_dp"]


def optimal_dp(problem: PartitioningProblem) -> Allocation:
    """Exact minimum-miss allocation on the granularity grid."""
    step = problem.granularity
    units = problem.steps
    min_units = int(problem.minimum / step + 1e-9)
    num = problem.num_partitions

    # miss[i][u] = misses of partition i when given u units.
    miss = np.empty((num, units + 1))
    for i, curve in enumerate(problem.curves):
        for u in range(units + 1):
            miss[i, u] = float(curve(u * step))

    # dp[u] = minimal total misses using exactly u units over partitions
    # processed so far; choice[i][u] = units given to partition i.
    dp = np.full(units + 1, np.inf)
    dp[0] = 0.0
    choice = np.zeros((num, units + 1), dtype=int)
    for i in range(num):
        new_dp = np.full(units + 1, np.inf)
        for u in range(units + 1):
            if not np.isfinite(dp[u]):
                continue
            for give in range(min_units, units - u + 1):
                total = dp[u] + miss[i, give]
                if total < new_dp[u + give]:
                    new_dp[u + give] = total
                    choice[i, u + give] = give
        dp = new_dp

    # The best end state is the one with minimal misses over all used-unit
    # counts (unused capacity is allowed, though it never helps with
    # monotone curves).
    best_units = int(np.argmin(dp))
    sizes = [0.0] * num
    remaining = best_units
    for i in range(num - 1, -1, -1):
        give = int(choice[i, remaining])
        sizes[i] = give * step
        remaining -= give
    return Allocation(sizes=tuple(sizes),
                      total_misses=total_misses(problem.curves, sizes),
                      algorithm="optimal_dp")
