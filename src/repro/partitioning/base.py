"""Shared definitions for software partitioning algorithms.

A partitioning algorithm takes one miss curve per partition (core, thread,
or application) and a total capacity, and returns an allocation vector.
All algorithms here work on :class:`~repro.core.misscurve.MissCurve` objects
in arbitrary but consistent units (the experiments use paper-MB / MPKI).

Allocations are computed on a discrete grid of ``granularity`` units
(e.g. 0.25 MB steps), mirroring the way-granularity or bucket-granularity
decisions real partitioning hardware exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.misscurve import MissCurve

__all__ = ["PartitioningProblem", "Allocation", "total_misses"]


@dataclass(frozen=True)
class PartitioningProblem:
    """A capacity-partitioning problem instance.

    Attributes
    ----------
    curves:
        One miss curve per partition.  Miss values must be in commensurable
        units across partitions (e.g. all MPKI weighted by access rate, or
        all absolute misses) since algorithms sum them.
    total_size:
        Total capacity to distribute, in the curves' size units.
    granularity:
        Allocation step.  All allocations are integer multiples of this.
    minimum:
        Minimum allocation per partition (default 0).
    minimums:
        Optional per-partition minimum allocations (QoS floors).  When
        given, it must have one entry per curve and overrides ``minimum``;
        algorithms start every partition at its own floor and only
        distribute the remaining budget.
    """

    curves: tuple[MissCurve, ...]
    total_size: float
    granularity: float
    minimum: float = 0.0
    minimums: tuple[float, ...] | None = None

    def __post_init__(self):
        if not self.curves:
            raise ValueError("at least one miss curve is required")
        if self.total_size < 0:
            raise ValueError("total_size must be non-negative")
        if self.granularity <= 0:
            raise ValueError("granularity must be positive")
        if self.minimum < 0:
            raise ValueError("minimum must be non-negative")
        if self.minimums is not None:
            object.__setattr__(self, "minimums", tuple(self.minimums))
            if len(self.minimums) != len(self.curves):
                raise ValueError("minimums must have one entry per curve")
            if any(m < 0 for m in self.minimums):
                raise ValueError("minimums must be non-negative")
            if sum(self.minimums) > self.total_size + 1e-9:
                raise ValueError("minimum allocations exceed total capacity")
        elif self.minimum * len(self.curves) > self.total_size + 1e-9:
            raise ValueError("minimum allocations exceed total capacity")

    def floors(self) -> tuple[float, ...]:
        """The effective per-partition minimums (``minimums`` if given,
        else ``minimum`` replicated)."""
        if self.minimums is not None:
            return self.minimums
        return (self.minimum,) * len(self.curves)

    @property
    def num_partitions(self) -> int:
        return len(self.curves)

    @property
    def steps(self) -> int:
        """Number of granularity units available to distribute."""
        return int(self.total_size / self.granularity + 1e-9)


@dataclass(frozen=True)
class Allocation:
    """The result of a partitioning algorithm."""

    sizes: tuple[float, ...]
    total_misses: float
    algorithm: str

    def __post_init__(self):
        if any(s < -1e-9 for s in self.sizes):
            raise ValueError("allocations must be non-negative")

    def __iter__(self):
        return iter(self.sizes)

    def __len__(self) -> int:
        return len(self.sizes)


def total_misses(curves: Sequence[MissCurve], sizes: Sequence[float]) -> float:
    """Sum of per-partition misses at the given allocation."""
    if len(curves) != len(sizes):
        raise ValueError("curves and sizes must have the same length")
    return float(sum(curve(size) for curve, size in zip(curves, sizes)))
