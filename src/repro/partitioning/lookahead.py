"""The Lookahead partitioning algorithm (Qureshi & Patt, MICRO 2006).

Lookahead is the quadratic heuristic UCP uses to cope with non-convex miss
curves: instead of considering only the next granularity unit (hill
climbing), each round considers, for every partition, the best *multi-unit*
jump — the allocation increase with the highest miss reduction per unit —
and grants the winning jump in full.  This lets it leap across plateaus to
the far side of a cliff, at the price of "all-or-nothing" allocations
(Sec. VII-D of the Talus paper) and O(P · N²) work.
"""

from __future__ import annotations

from .base import Allocation, PartitioningProblem, total_misses

__all__ = ["lookahead"]


def _best_jump(curve, current: float, budget: float, step: float) -> tuple[float, float]:
    """Best (utility-per-unit, jump_size) for one partition.

    Scans every candidate jump of 1..K granularity units within ``budget``
    and returns the one with the highest miss reduction per unit of space.
    """
    best_rate = 0.0
    best_jump = 0.0
    base = float(curve(current))
    units = int(budget / step + 1e-9)
    for k in range(1, units + 1):
        jump = k * step
        gain = base - float(curve(current + jump))
        if gain <= 0:
            continue
        rate = gain / jump
        if rate > best_rate + 1e-15:
            best_rate = rate
            best_jump = jump
    return best_rate, best_jump


def lookahead(problem: PartitioningProblem) -> Allocation:
    """UCP Lookahead allocation over possibly non-convex curves.

    Per-partition floors (``problem.minimums``) are honoured by starting
    every partition at its floor and jumping only within the remaining
    budget.
    """
    if problem.minimums is not None:
        sizes = list(problem.minimums)
        budget = problem.total_size - sum(sizes)
    else:
        sizes = [problem.minimum] * problem.num_partitions
        budget = problem.total_size - problem.minimum * problem.num_partitions
    step = problem.granularity
    while budget >= step - 1e-9:
        best_index = -1
        best_rate = 0.0
        best_jump = 0.0
        for i, curve in enumerate(problem.curves):
            rate, jump = _best_jump(curve, sizes[i], budget, step)
            if jump > 0 and rate > best_rate + 1e-15:
                best_rate = rate
                best_jump = jump
                best_index = i
        if best_index < 0:
            break  # nobody benefits from more capacity
        sizes[best_index] += best_jump
        budget -= best_jump
    return Allocation(sizes=tuple(sizes),
                      total_misses=total_misses(problem.curves, sizes),
                      algorithm="lookahead")
