"""Software cache-partitioning algorithms and the Talus wrapper."""

from .base import Allocation, PartitioningProblem, total_misses
from .fair import fair
from .hill_climbing import hill_climbing
from .lookahead import lookahead
from .optimal import optimal_dp
from .talus_wrap import TalusOutcome, TalusPartitioning

__all__ = [
    "PartitioningProblem",
    "Allocation",
    "total_misses",
    "hill_climbing",
    "lookahead",
    "fair",
    "optimal_dp",
    "TalusPartitioning",
    "TalusOutcome",
    "ALGORITHMS",
]

#: Registry of plain partitioning algorithms by name.
ALGORITHMS = {
    "hill_climbing": hill_climbing,
    "lookahead": lookahead,
    "fair": fair,
    "optimal_dp": optimal_dp,
}
