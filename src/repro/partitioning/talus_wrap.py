"""The Talus software wrapper around a partitioning algorithm (Fig. 7a).

Talus does not propose its own partitioning algorithm.  Instead it wraps the
system's algorithm with two steps:

* **pre-processing** — replace each partition's measured miss curve with its
  convex hull, so the algorithm can safely assume convexity (and therefore a
  simple algorithm like hill climbing is optimal), and
* **post-processing** — turn the algorithm's allocations into shadow
  partition sizes and sampling rates via Theorem 6
  (:func:`repro.core.talus.plan_shadow_partitions`).

:class:`TalusPartitioning` packages both steps; the result carries the
allocations, the per-partition :class:`~repro.core.talus.TalusConfig`, and
the miss values Talus commits to (hull values), ready either for analytic
performance models or to program a
:class:`~repro.cache.talus_cache.TalusCache`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.convexhull import convex_hull
from ..core.misscurve import MissCurve
from ..core.talus import TalusConfig, plan_shadow_partitions
from .base import Allocation, PartitioningProblem
from .hill_climbing import hill_climbing

__all__ = ["TalusPartitioning", "TalusOutcome"]

Algorithm = Callable[[PartitioningProblem], Allocation]


@dataclass(frozen=True)
class TalusOutcome:
    """Everything the Talus wrapper produces for one reconfiguration."""

    allocation: Allocation
    configs: tuple[TalusConfig, ...]
    expected_misses: tuple[float, ...]

    @property
    def sizes(self) -> tuple[float, ...]:
        """Per-partition capacity allocations."""
        return self.allocation.sizes

    @property
    def total_expected_misses(self) -> float:
        """Sum of the hull miss values Talus commits to."""
        return float(sum(self.expected_misses))


class TalusPartitioning:
    """Pre-/post-processing wrapper making any partitioning algorithm convex.

    Parameters
    ----------
    algorithm:
        The system's partitioning algorithm (default: hill climbing, which
        convexity makes optimal).
    safety_margin:
        Sampling-rate safety margin passed to the planner (Sec. VI-B; the
        hardware implementation uses 0.05).
    """

    def __init__(self, algorithm: Algorithm = hill_climbing,
                 safety_margin: float = 0.0):
        if safety_margin < 0 or safety_margin >= 1:
            raise ValueError("safety_margin must be in [0, 1)")
        self.algorithm = algorithm
        self.safety_margin = safety_margin

    def partition(self, curves: Sequence[MissCurve], total_size: float,
                  granularity: float, minimum: float = 0.0,
                  minimums: Sequence[float] | None = None) -> TalusOutcome:
        """Run the wrapped algorithm on convex hulls and plan shadow partitions.

        ``minimums`` (per-partition QoS floors) overrides the scalar
        ``minimum`` when given; both are forwarded to the
        :class:`~repro.partitioning.base.PartitioningProblem` unchanged.
        """
        hulls = tuple(convex_hull(curve) for curve in curves)
        problem = PartitioningProblem(
            curves=hulls, total_size=total_size, granularity=granularity,
            minimum=minimum,
            minimums=None if minimums is None else tuple(minimums))
        allocation = self.algorithm(problem)
        configs = []
        expected = []
        for curve, hull, size in zip(curves, hulls, allocation.sizes):
            config = plan_shadow_partitions(curve, size,
                                            safety_margin=self.safety_margin)
            configs.append(config)
            expected.append(float(hull(size)))
        return TalusOutcome(allocation=allocation, configs=tuple(configs),
                            expected_misses=tuple(expected))
