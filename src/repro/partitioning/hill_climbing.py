"""Hill climbing (marginal-utility greedy) partitioning.

The simplest possible allocator: hand out capacity one granularity unit at a
time, always to the partition whose miss curve drops the most for that unit.
Its implementation really is "a trivial linear-time for-loop" (Sec. VII-D).

Hill climbing is *optimal* when all miss curves are convex — which is
exactly what Talus guarantees — but it gets stuck in local optima on
non-convex (cliffy) curves, which is why plain LRU partitioning sees little
benefit from it (Fig. 12).
"""

from __future__ import annotations

from .base import Allocation, PartitioningProblem, total_misses

__all__ = ["hill_climbing"]


def hill_climbing(problem: PartitioningProblem) -> Allocation:
    """Greedy marginal-utility allocation.

    At each step the next ``granularity`` units go to the partition with the
    largest miss reduction for that increment.  Ties go to the lowest
    partition index (deterministic).  Per-partition floors
    (``problem.minimums``) are honoured by starting every partition at its
    floor and distributing only the remaining budget.
    """
    if problem.minimums is not None:
        sizes = list(problem.minimums)
        budget = problem.total_size - sum(sizes)
    else:
        sizes = [problem.minimum] * problem.num_partitions
        budget = problem.total_size - problem.minimum * problem.num_partitions
    step = problem.granularity
    current_misses = [float(curve(size))
                      for curve, size in zip(problem.curves, sizes)]
    remaining_steps = int(budget / step + 1e-9)
    for _ in range(remaining_steps):
        best_index = -1
        best_gain = -1.0
        for i, curve in enumerate(problem.curves):
            gain = current_misses[i] - float(curve(sizes[i] + step))
            if gain > best_gain + 1e-15:
                best_gain = gain
                best_index = i
        if best_index < 0:
            break
        sizes[best_index] += step
        current_misses[best_index] = float(
            problem.curves[best_index](sizes[best_index]))
    return Allocation(sizes=tuple(sizes),
                      total_misses=total_misses(problem.curves, sizes),
                      algorithm="hill_climbing")
