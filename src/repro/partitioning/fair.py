"""Fair (equal) partitioning.

The paper's fairness case studies (Fig. 13) partition the cache equally
among the eight identical applications.  With convex miss curves (Talus),
equal allocations are simultaneously the most fair and — for homogeneous
threads — the maximum-utility point (Sec. II-D); with cliffy curves they
can be useless (all copies stuck on the plateau).
"""

from __future__ import annotations

from .base import Allocation, PartitioningProblem, total_misses

__all__ = ["fair"]


def fair(problem: PartitioningProblem) -> Allocation:
    """Equal allocations, rounded down to the granularity grid.

    Leftover capacity (from rounding) is distributed one unit at a time,
    lowest partition index first, so the result never exceeds the total.
    Per-partition floors (``problem.minimums``) are honoured: enforcing a
    floor may overshoot the total, in which case capacity is shaved from
    the largest partition that still has slack above its own floor.
    """
    step = problem.granularity
    per_partition_units = int(problem.total_size / step / problem.num_partitions + 1e-9)
    sizes = [per_partition_units * step] * problem.num_partitions
    leftover_units = problem.steps - per_partition_units * problem.num_partitions
    for i in range(leftover_units):
        sizes[i % problem.num_partitions] += step
    floors = problem.floors()
    sizes = [max(s, m) for s, m in zip(sizes, floors)]
    # Enforcing the minimum may overshoot the total; shave from the largest
    # partition that can still give a unit back without dipping below its
    # floor (ties: lowest index).
    while sum(sizes) > problem.total_size + 1e-9:
        slack = [i for i in range(problem.num_partitions)
                 if sizes[i] - step >= floors[i] - 1e-9]
        if not slack:
            break
        sizes[max(slack, key=lambda i: sizes[i])] -= step
    return Allocation(sizes=tuple(sizes),
                      total_misses=total_misses(problem.curves, sizes),
                      algorithm="fair")
