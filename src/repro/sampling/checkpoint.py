"""Warm-state checkpoints of the array cache tier.

A :class:`CacheCheckpoint` captures everything a replay mutates — the
caller-owned numpy/flat-buffer state plus policy bookkeeping (RNG
streams, PSEL duelling counters, PDP histograms, Vantage linked lists,
Talus sampler registers) and the statistics counters — alongside the
cache's own :meth:`to_spec` description.  The pair is:

* **picklable** — checkpoints cross process boundaries, so sample
  windows fan out over the worker pool from warm state;
* **content-hashable** — :meth:`CacheCheckpoint.digest` is a stable
  sha256 of spec + state, so two checkpoints with the same digest will
  replay bit-identically;
* **rebuildable** — :meth:`CacheCheckpoint.build` reconstructs the
  cache from scratch (``build(spec)`` then an in-place restore), and
  ``cache.restore(ckpt)`` rewinds an existing compatible cache.

Ownership rules: a checkpoint owns deep *copies* of the state arrays
(taking one never aliases the live cache), and restoring copies back
*in place* — which is what keeps the flat-buffer aliasing of
:class:`~repro.cache.partition.array.ArrayPartitionedCache` intact
(region matrices are views into the flat tags/stamp/RRPV buffers; the
restore writes through those views rather than re-pointing them).

State that is a pure function of the spec (set-dueling role maps, H3
hash matrices, geometry arrays) is deliberately *not* captured: the
rebuild re-derives it, and excluding it keeps digests minimal.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..cache.arraycache import ArrayBeladyCache, ArraySetAssociativeCache
from ..cache.cache import CacheStats
from ..cache.partition.array import (ArrayPartitionedCache, ArrayVantageCache,
                                     _FastIdealLRURegion)
from ..cache.replacement.lru import LRUPolicy
from ..cache.talus_cache import TalusCache
from ..jobs.keys import canonical_json

__all__ = ["CacheCheckpoint", "snapshot", "restore_into"]


def _stats_state(stats: CacheStats) -> dict:
    return {"accesses": int(stats.accesses), "hits": int(stats.hits),
            "misses": int(stats.misses),
            "instructions": int(stats.instructions),
            "bypasses": int(stats.bypasses)}


def _stats_from(state: dict) -> CacheStats:
    return CacheStats(**{k: int(v) for k, v in state.items()})


@dataclass
class CacheCheckpoint:
    """One warm cache state, content-addressed and rebuildable."""

    kind: str          #: "array" | "partitioned" | "vantage" | "talus"
    spec: object       #: CacheSpec | PartitionSpec | TalusSpec
    state: dict        #: copied arrays + scalar bookkeeping
    position: int = 0  #: trace accesses consumed when the snapshot was taken
    meta: dict = field(default_factory=dict)

    def digest(self) -> str:
        """Stable sha256 over kind, spec, position and every state byte."""
        h = hashlib.sha256()
        h.update(self.kind.encode())
        h.update(canonical_json(self.spec).encode())
        h.update(str(int(self.position)).encode())
        _digest_update(h, self.state)
        return h.hexdigest()

    def build(self):
        """Reconstruct the cache: ``build(spec)`` + in-place restore."""
        from ..cache.spec import build
        cache = build(self.spec)
        restore_into(cache, self)
        return cache


def _digest_update(h, obj) -> None:
    if isinstance(obj, np.ndarray):
        h.update(str(obj.dtype).encode())
        h.update(repr(obj.shape).encode())
        h.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, CacheCheckpoint):
        h.update(obj.digest().encode())
    elif isinstance(obj, dict):
        for key in sorted(obj):
            h.update(str(key).encode())
            h.update(b"\0")
            _digest_update(h, obj[key])
    elif isinstance(obj, (list, tuple)):
        for value in obj:
            _digest_update(h, value)
            h.update(b"\1")
    else:
        h.update(repr(obj).encode())
        h.update(b"\2")


def _copy_in_place(target: np.ndarray, saved: np.ndarray, name: str) -> None:
    if target.shape != saved.shape:
        raise ValueError(
            f"checkpoint mismatch: {name} has shape {saved.shape}, the "
            f"cache expects {target.shape}; restore into a cache built "
            f"from the checkpoint's own spec (CacheCheckpoint.build())")
    target[:] = saved


# --------------------------------------------------------------------- #
# ArraySetAssociativeCache
# --------------------------------------------------------------------- #
def _array_state(cache: ArraySetAssociativeCache) -> dict:
    state = {
        "policy": cache.policy,
        "tags": cache.tags.copy(),
        "stamp": cache.stamp.copy(),
        "rrpv": cache.rrpv.copy(),
        "counter": cache._counter.copy(),
        "rng_state": cache._rng_state.copy(),
        "psel": cache._psel.copy(),
        "stats": _stats_state(cache.stats),
    }
    if cache.policy == "TA-DRRIP":
        state["tad_misses"] = cache._tad_misses.copy()
    if cache.policy == "PDP":
        state["pdp"] = {
            "expires": cache.expires.copy(),
            "clock": cache._pdp_clock.copy(),
            "dp": cache._pdp_dp.copy(),
            "samples": cache._pdp_samples.copy(),
            "hist": cache._pdp_hist.copy(),
            "ls_tags": cache._ls_tags.copy(),
            "ls_clocks": cache._ls_clocks.copy(),
            "ls_count": cache._ls_count.copy(),
            "interval": int(cache._pdp_interval),
            "initial_dp": int(cache._pdp_initial_dp),
        }
    return state


def _restore_array(cache: ArraySetAssociativeCache, state: dict,
                   policy: str) -> None:
    if cache.policy != policy:
        raise ValueError(f"checkpoint is for policy {policy!r}, "
                         f"cache runs {cache.policy!r}")
    _copy_in_place(cache.tags, state["tags"], "tags")
    _copy_in_place(cache.stamp, state["stamp"], "stamp")
    _copy_in_place(cache.rrpv, state["rrpv"], "rrpv")
    cache._counter[:] = state["counter"]
    cache._rng_state[:] = state["rng_state"]
    cache._psel[:] = state["psel"]
    cache.stats = _stats_from(state["stats"])
    if policy == "TA-DRRIP":
        cache._tad_misses[:] = state["tad_misses"]
    if policy == "PDP":
        pdp = state["pdp"]
        if int(cache._pdp_interval) != pdp["interval"]:
            raise ValueError(
                f"checkpoint PDP recompute interval {pdp['interval']} does "
                f"not match the cache's {cache._pdp_interval}")
        _copy_in_place(cache.expires, pdp["expires"], "expires")
        _copy_in_place(cache._pdp_hist, pdp["hist"], "pdp_hist")
        _copy_in_place(cache._ls_tags, pdp["ls_tags"], "ls_tags")
        _copy_in_place(cache._ls_clocks, pdp["ls_clocks"], "ls_clocks")
        cache._pdp_clock[:] = pdp["clock"]
        cache._pdp_dp[:] = pdp["dp"]
        cache._pdp_samples[:] = pdp["samples"]
        cache._ls_count[:] = pdp["ls_count"]


# --------------------------------------------------------------------- #
# ArrayPartitionedCache (way/set/ideal regions over flat buffers)
# --------------------------------------------------------------------- #
def _region_state(region) -> dict | None:
    if region is None:
        return None
    if isinstance(region, _FastIdealLRURegion):
        resident = np.asarray(list(region._policy.resident()),
                              dtype=np.int64)
        return {"kind": "ideal", "capacity": int(region.capacity),
                "resident": resident}
    return {"kind": "array", **_array_state(region)}


def _restore_region(region, state: dict | None, index: int) -> None:
    if (region is None) != (state is None):
        raise ValueError(f"checkpoint/cache partition {index} allocation "
                         f"mismatch (one side is empty)")
    if state is None:
        return
    if state["kind"] == "ideal":
        if not isinstance(region, _FastIdealLRURegion):
            raise ValueError(f"partition {index}: checkpoint holds an ideal "
                             f"region, cache has {type(region).__name__}")
        if region.capacity != state["capacity"]:
            raise ValueError(f"partition {index}: ideal region capacity "
                             f"{region.capacity} != checkpoint "
                             f"{state['capacity']}")
        # An LRU stack is fully determined by its resident lines in
        # LRU -> MRU order: re-accessing them into a fresh policy of the
        # same capacity reproduces it exactly (no evictions can occur).
        policy = LRUPolicy(region.capacity)
        for tag in state["resident"].tolist():
            policy.access(int(tag))
        region._policy = policy
    else:
        _restore_array(region, state, state["policy"])


def _partitioned_state(cache: ArrayPartitionedCache) -> dict:
    return {
        "granted": [int(g) for g in cache.granted_allocations()],
        "partition_stats": [_stats_state(s) for s in cache.partition_stats],
        "regions": [_region_state(r) for r in cache._regions],
    }


def _restore_partitioned(cache: ArrayPartitionedCache, state: dict) -> None:
    granted = [int(g) for g in cache.granted_allocations()]
    if granted != list(state["granted"]):
        raise ValueError(
            f"checkpoint allocations {state['granted']} do not match the "
            f"cache's {granted}; build from the checkpoint instead "
            f"(CacheCheckpoint.build())")
    # Region arrays are views into the flat buffers (when flat-linked), so
    # the in-place region restores below also rewrite the flat state the
    # kernels replay; the shared access counter is aliased by every
    # region's ``_counter`` and lands with the last region restored.
    for index, (region, sub) in enumerate(zip(cache._regions,
                                              state["regions"])):
        _restore_region(region, sub, index)
    cache.partition_stats = [_stats_from(s)
                             for s in state["partition_stats"]]


# --------------------------------------------------------------------- #
# ArrayVantageCache (node pool + hash table + per-region lists, plus the
# non-LRU region policies' per-node and per-region bookkeeping; the
# derived tuning constants — roles, leader levels, PDP intervals — are a
# pure function of the spec and re-derived by the rebuild)
# --------------------------------------------------------------------- #
_VANTAGE_ARRAYS = ("_caps", "_node_tag", "_node_prev", "_node_next",
                   "_head", "_tail", "_occ", "_free",
                   "_ht_tag", "_ht_reg", "_ht_node",
                   "_counter", "_rng_state", "_psel",
                   "_node_aux", "_node_stamp",
                   "_pdp_clock", "_pdp_dp", "_pdp_samples", "_pdp_hist",
                   "_ls_tags", "_ls_clocks", "_ls_count")


def _vantage_state(cache: ArrayVantageCache) -> dict:
    state = {name: getattr(cache, name).copy() for name in _VANTAGE_ARRAYS}
    state["partition_stats"] = [_stats_state(s)
                                for s in cache.partition_stats]
    return state


def _restore_vantage(cache: ArrayVantageCache, state: dict) -> None:
    for name in _VANTAGE_ARRAYS:
        _copy_in_place(getattr(cache, name), state[name], name)
    cache.partition_stats = [_stats_from(s)
                             for s in state["partition_stats"]]


# --------------------------------------------------------------------- #
# ArrayBeladyCache (offline MIN: replay cursor + residency table + heap)
# --------------------------------------------------------------------- #
def _belady_state(cache: ArrayBeladyCache) -> dict:
    return {
        "cursor": int(cache._cursor),
        "trace_sha": hashlib.sha256(cache._trace.tobytes()).hexdigest(),
        "ht_tag": cache._ht_tag.copy(),
        "ht_val": cache._ht_val.copy(),
        "heap_key": cache._heap_key.copy(),
        "heap_tag": cache._heap_tag.copy(),
        "heap_io": cache._heap_io.copy(),
        "stats": _stats_state(cache.stats),
    }


def _restore_belady(cache: ArrayBeladyCache, state: dict) -> None:
    sha = hashlib.sha256(cache._trace.tobytes()).hexdigest()
    if sha != state["trace_sha"]:
        raise ValueError(
            "checkpoint mismatch: Belady MIN is offline, its state is "
            "meaningful only against the exact trace it was warmed on; "
            "the cache's attached trace differs")
    _copy_in_place(cache._ht_tag, state["ht_tag"], "ht_tag")
    _copy_in_place(cache._ht_val, state["ht_val"], "ht_val")
    _copy_in_place(cache._heap_key, state["heap_key"], "heap_key")
    _copy_in_place(cache._heap_tag, state["heap_tag"], "heap_tag")
    cache._heap_io[:] = state["heap_io"]
    cache._cursor = int(state["cursor"])
    cache.stats = _stats_from(state["stats"])


# --------------------------------------------------------------------- #
# TalusCache (base checkpoint + sampler registers + logical stats)
# --------------------------------------------------------------------- #
def _talus_state(cache: TalusCache) -> dict:
    return {
        "base": snapshot(cache.base),
        "limits": [int(pair.sampler.limit) for pair in cache._pairs],
        "logical_stats": [_stats_state(s) for s in cache.logical_stats],
    }


def _restore_talus(cache: TalusCache, ckpt: "CacheCheckpoint") -> None:
    state = ckpt.state
    if cache.num_logical != len(state["limits"]):
        raise ValueError(
            f"checkpoint has {len(state['limits'])} logical partitions, "
            f"cache has {cache.num_logical}")
    restore_into(cache.base, state["base"])
    configs = getattr(ckpt.spec, "configs", ()) or \
        (None,) * cache.num_logical
    for pair, limit, config in zip(cache._pairs, state["limits"], configs):
        pair.sampler.limit = int(limit)
        pair.config = config
    cache.logical_stats = [_stats_from(s) for s in state["logical_stats"]]


# --------------------------------------------------------------------- #
# Dispatch
# --------------------------------------------------------------------- #
def snapshot(cache, position: int = 0,
             meta: dict | None = None) -> CacheCheckpoint:
    """Capture ``cache``'s warm state into a :class:`CacheCheckpoint`.

    ``position`` records how many trace accesses the cache had consumed
    (pure provenance — it parameterizes the digest but not the restore);
    ``meta`` is free-form provenance excluded from the digest.
    """
    meta = dict(meta or {})
    if isinstance(cache, TalusCache):
        return CacheCheckpoint("talus", cache.to_spec(),
                               _talus_state(cache), position, meta)
    if isinstance(cache, ArrayVantageCache):
        return CacheCheckpoint("vantage", cache.to_spec(),
                               _vantage_state(cache), position, meta)
    if isinstance(cache, ArrayPartitionedCache):
        return CacheCheckpoint("partitioned", cache.to_spec(),
                               _partitioned_state(cache), position, meta)
    if isinstance(cache, ArraySetAssociativeCache):
        return CacheCheckpoint("array", cache.to_spec(),
                               _array_state(cache), position, meta)
    if isinstance(cache, ArrayBeladyCache):
        # Offline MIN: the spec must carry its trace or build() cannot
        # reconstruct the oracle (with_trace is excluded from spec
        # equality, so attaching it leaves the canonical identity alone;
        # the state's trace_sha keeps the digest trace-sensitive).
        spec = cache.to_spec()
        if getattr(spec, "trace", None) is None:
            spec = spec.with_trace(cache._trace)
        return CacheCheckpoint("belady", spec,
                               _belady_state(cache), position, meta)
    raise TypeError(
        f"snapshot() supports the array cache tier "
        f"(ArraySetAssociativeCache, ArrayBeladyCache, "
        f"ArrayPartitionedCache, ArrayVantageCache, TalusCache), "
        f"not {type(cache).__name__}")


def restore_into(cache, checkpoint: CacheCheckpoint) -> None:
    """Rewind ``cache`` to ``checkpoint``'s state, in place.

    The cache must be structurally compatible (same policy, geometry and
    allocations — anything built from the checkpoint's spec is); state
    arrays are copied through the existing buffers so flat-buffer views
    and kernel pointers stay valid.
    """
    kind = checkpoint.kind
    if kind == "talus":
        if not isinstance(cache, TalusCache):
            raise TypeError(f"talus checkpoint cannot restore a "
                            f"{type(cache).__name__}")
        _restore_talus(cache, checkpoint)
    elif kind == "vantage":
        if not isinstance(cache, ArrayVantageCache):
            raise TypeError(f"vantage checkpoint cannot restore a "
                            f"{type(cache).__name__}")
        _restore_vantage(cache, checkpoint.state)
    elif kind == "partitioned":
        if not isinstance(cache, ArrayPartitionedCache):
            raise TypeError(f"partitioned checkpoint cannot restore a "
                            f"{type(cache).__name__}")
        _restore_partitioned(cache, checkpoint.state)
    elif kind == "array":
        if not isinstance(cache, ArraySetAssociativeCache):
            raise TypeError(f"array checkpoint cannot restore a "
                            f"{type(cache).__name__}")
        _restore_array(cache, checkpoint.state, checkpoint.state["policy"])
    elif kind == "belady":
        if not isinstance(cache, ArrayBeladyCache):
            raise TypeError(f"belady checkpoint cannot restore a "
                            f"{type(cache).__name__}")
        _restore_belady(cache, checkpoint.state)
    else:
        raise ValueError(f"unknown checkpoint kind {kind!r}")
