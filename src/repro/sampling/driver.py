"""Sampled simulation driver: detailed windows out of a long trace.

The pFSA/SMARTS recipe for traces too long to replay exactly:

1. place *detailed windows* through the trace (:class:`SamplingSpec`:
   window length plus an inter-window gap or a target window count);
2. warm each window's cache state — either per-window
   (``warming="window"``: replay a bounded warmup prefix into a cold
   cache and discard its statistics) or by a serial *functional
   fast-forward* pass that streams the whole trace once and emits a
   :class:`~repro.sampling.checkpoint.CacheCheckpoint` at every window
   boundary (``warming="checkpoint"``);
3. simulate the windows in detail — serially, as one threaded native
   batch (``parallel="threads"`` via :mod:`repro.cache.threadbatch`), or
   fanned over a process pool (``parallel="processes"``, the trace
   shared through a :class:`~repro.workloads.tracestore.TraceStore`
   memmap or generated on demand from a
   :class:`~repro.workloads.scale.ChunkedTrace`);
4. aggregate the per-window miss rates into a point estimate with a
   confidence interval (:class:`~repro.sampling.estimator.SampledResult`).

``warming="window"`` is what buys wall-clock speedup: only
``n_windows * (warmup + window)`` accesses are ever simulated (and, for
a :class:`ChunkedTrace`, *generated*).  ``warming="checkpoint"`` still
pays one full-speed pass but yields *exact* warm state — every window
then reproduces the uninterrupted replay bit for bit, which is how the
tests prove the checkpoint layer end to end — and is the natural mode
when many policies/sizes will be sampled from the same warmed positions.
In this codebase the fast-forward runs at full fidelity: the array
kernels are already tag/recency-only (there is no data state to skip),
so reduced-fidelity warming would change nothing.

Determinism: windows draw per-window seeds through the shared
identity-derived helper (:func:`repro.cache.hashing.derive_seed`, token
``"sampling-window|<start>"``) — a function of the window's *position*,
never of execution order, worker identity or resume history — so
serial, threaded, pooled and resumed-from-bank runs are bit-identical.

``supervise=True`` routes the windows through the fault-tolerant job
runtime (:mod:`repro.jobs`): each window banks under its own content
address, so a SIGKILLed worker resumes mid-estimate without recomputing
finished windows.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..cache._native import resolve_threads
from ..cache.cache import CacheStats
from ..cache.factory import SEEDED_POLICIES
from ..cache.hashing import derive_seed
from ..cache.spec import CacheSpec, PartitionSpec, TalusSpec, build
from ..cache.talus_cache import TalusCache
from ..cache.threadbatch import resolve_parallel, run_tasks
from ..workloads.access import Trace
from ..workloads.scale import ChunkedTrace
from ..workloads.tracestore import TraceHandle, TraceStore
from .checkpoint import CacheCheckpoint, snapshot
from .estimator import SampledResult, WindowResult

__all__ = ["SamplingSpec", "run_sampled", "run_exact", "warm_checkpoints",
           "window_seed"]

WARMING_MODES = ("window", "checkpoint")

#: Fast-forward / exact-replay streaming chunk (accesses per step).
DEFAULT_CHUNK = 1 << 16


def window_seed(base_seed: int, start: int) -> int:
    """Identity-derived seed of the window at trace position ``start``."""
    return derive_seed(base_seed, f"sampling-window|{int(start)}")


@dataclass(frozen=True)
class SamplingSpec:
    """Declarative description of one sampled replay.

    Exactly one of ``gap`` (accesses skipped between consecutive
    windows) or ``n_windows`` (evenly spaced window count) places the
    windows; ``offset`` shifts the first window (set it to at least
    ``warmup`` so even the first window gets a full warmup prefix).
    """

    window: int                 #: detailed window length in accesses
    gap: int | None = None      #: accesses between consecutive windows
    n_windows: int | None = None  #: alternatively: evenly spaced count
    warmup: int | None = None   #: per-window warmup accesses
    confidence: float = 0.95    #: two-sided confidence level of the CI
    warming: str = "window"     #: "window" | "checkpoint"
    offset: int = 0             #: trace position of the first window
    base_seed: int | None = None  #: root of per-window seed derivation

    def __post_init__(self):
        if self.window <= 0:
            raise ValueError("window must be positive")
        if (self.gap is None) == (self.n_windows is None):
            raise ValueError("set exactly one of gap= or n_windows=")
        if self.gap is not None and self.gap < 0:
            raise ValueError("gap must be non-negative")
        if self.n_windows is not None and self.n_windows <= 0:
            raise ValueError("n_windows must be positive")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if self.warming not in WARMING_MODES:
            raise ValueError(f"warming must be one of {WARMING_MODES}, "
                             f"got {self.warming!r}")
        if self.offset < 0:
            raise ValueError("offset must be non-negative")
        if self.warmup is not None and self.warmup < 0:
            raise ValueError("warmup must be non-negative")

    @property
    def warmup_accesses(self) -> int:
        """Effective warmup length (default: two windows; 0 when the
        checkpoint pass provides exact warm state)."""
        if self.warmup is not None:
            return self.warmup
        return 2 * self.window if self.warming == "window" else 0

    def windows_for(self, n_accesses: int) -> tuple[tuple[int, int], ...]:
        """Systematic ``(start, stop)`` window placement over a trace."""
        w = self.window
        if self.offset + w > n_accesses:
            raise ValueError(
                f"trace of {n_accesses} accesses cannot fit one "
                f"{w}-access window at offset {self.offset}")
        if self.n_windows is not None:
            span = n_accesses - self.offset
            period = max(w, span // self.n_windows)
            starts = [self.offset + k * period
                      for k in range(self.n_windows)]
            starts = [s for s in starts if s + w <= n_accesses]
        else:
            starts = list(range(self.offset, n_accesses - w + 1,
                                w + self.gap))
        return tuple((s, s + w) for s in starts)


# --------------------------------------------------------------------- #
# Trace views: uniform random access over every trace flavour
# --------------------------------------------------------------------- #
@dataclass
class _ArrayView:
    addresses: np.ndarray
    instructions: int = 0

    @property
    def n_accesses(self) -> int:
        return int(self.addresses.size)

    def segment(self, start: int, stop: int) -> np.ndarray:
        return self.addresses[max(0, start):stop]


def _as_view(trace):
    """Anything the driver accepts -> an object with ``segment``/
    ``n_accesses``/``instructions`` (ChunkedTrace already is one)."""
    if isinstance(trace, ChunkedTrace):
        return trace
    if isinstance(trace, _ArrayView):
        return trace
    if isinstance(trace, TraceHandle):
        return _ArrayView(trace.array(), int(trace.instructions))
    if isinstance(trace, Trace):
        return _ArrayView(
            np.ascontiguousarray(trace.addresses, dtype=np.int64),
            int(trace.instructions))
    addrs = np.ascontiguousarray(np.asarray(trace, dtype=np.int64))
    if addrs.ndim != 1:
        raise ValueError("trace must be one-dimensional")
    return _ArrayView(addrs)


def _check_cache_spec(cache):
    if isinstance(cache, (CacheSpec, TalusSpec)):
        return cache
    if isinstance(cache, PartitionSpec):
        raise ValueError(
            "run_sampled drives single-stream caches; a bare PartitionSpec "
            "needs per-access partition ids — wrap it in a TalusSpec or "
            "sample each partition's stream separately")
    raise TypeError(f"cache must be a CacheSpec or TalusSpec, "
                    f"got {type(cache).__name__}")


def _spec_with_seed(cache, seed):
    if seed is None or not isinstance(cache, CacheSpec):
        return cache
    return replace(cache, seed=seed)


def _seeded(cache) -> bool:
    return isinstance(cache, CacheSpec) and cache.policy in SEEDED_POLICIES


def _replay(cache, addrs) -> None:
    if len(addrs) == 0:
        return
    if isinstance(cache, TalusCache):
        cache.run(addrs, 0)
    else:
        cache.run(addrs)


def _replay_task(cache, addrs):
    """This cache's ReplayTask for ``addrs``, or ``None`` when the cache
    has no batch entry point (object backend) — callers then fall back
    to the serial path, as :mod:`repro.sim.sweep` does."""
    maker = getattr(cache, "replay_task", None)
    if maker is None:
        return None
    if isinstance(cache, TalusCache):
        return maker(addrs, 0)
    return maker(addrs)


def _counts(cache) -> tuple[int, int]:
    """(accesses, misses) consumed by ``cache`` so far."""
    stats = (cache.total_stats() if isinstance(cache, TalusCache)
             else cache.stats)
    return int(stats.accesses), int(stats.misses)


# --------------------------------------------------------------------- #
# Window units (shared by the serial, pooled and supervised paths)
# --------------------------------------------------------------------- #
def window_units(spec: SamplingSpec, cache, n_accesses: int) -> tuple:
    """Per-window work units ``(index, warm_start, start, stop, seed)``.

    Seeds are derived here, in the parent, as a pure function of window
    identity — executors (threads, pools, supervised workers, bank
    resumes) receive them readymade and cannot diverge.
    """
    windows = spec.windows_for(n_accesses)
    warmup = spec.warmup_accesses
    seeded = spec.base_seed is not None and _seeded(cache)
    units = []
    for index, (start, stop) in enumerate(windows):
        seed = window_seed(spec.base_seed, start) if seeded else None
        units.append((index, start - min(warmup, start), start, stop, seed))
    return tuple(units)


def simulate_window_units(source, cache, units) -> list[tuple]:
    """Replay window units against ``source`` (worker entry point).

    ``source`` may be a ChunkedTrace, TraceHandle, Trace or address
    array; returns ``(index, start, accesses, misses, warmup)`` tuples.
    Pure function of its arguments — every execution strategy funnels
    through it (or through its threaded twin) and agrees bit for bit.
    """
    view = _as_view(source)
    out = []
    for index, warm_start, start, stop, seed in units:
        replayer = build(_spec_with_seed(cache, seed))
        _replay(replayer, view.segment(warm_start, start))
        a0, m0 = _counts(replayer)
        _replay(replayer, view.segment(start, stop))
        a1, m1 = _counts(replayer)
        out.append((index, start, a1 - a0, m1 - m0, start - warm_start))
    return out


def _simulate_windows_threaded(view, cache, units, threads) -> list[tuple]:
    """Threaded twin of :func:`simulate_window_units`: two native batch
    dispatches (all warmups, then all windows) over per-window caches."""
    caches = [build(_spec_with_seed(cache, seed))
              for _, _, _, _, seed in units]
    if not caches or getattr(caches[0], "replay_task", None) is None:
        return simulate_window_units(view, cache, units)
    warm_tasks = []
    for replayer, (_, warm_start, start, _, _) in zip(caches, units):
        seg = view.segment(warm_start, start)
        if len(seg):
            warm_tasks.append(_replay_task(replayer, seg))
    if warm_tasks:
        run_tasks(warm_tasks, threads=threads)
    baselines = [_counts(replayer) for replayer in caches]
    run_tasks([_replay_task(replayer, view.segment(start, stop))
               for replayer, (_, _, start, stop, _) in zip(caches, units)],
              threads=threads)
    out = []
    for replayer, (index, warm_start, start, stop, _), (a0, m0) in zip(
            caches, units, baselines):
        a1, m1 = _counts(replayer)
        out.append((index, start, a1 - a0, m1 - m0, start - warm_start))
    return out


def simulate_checkpoint_units(source, cache, units) -> list[tuple]:
    """Replay ``(index, checkpoint, start, stop)`` units (worker entry
    point of the checkpoint-warming mode)."""
    view = _as_view(source)
    out = []
    for index, ckpt, start, stop in units:
        replayer = ckpt.build()
        a0, m0 = _counts(replayer)
        _replay(replayer, view.segment(start, stop))
        a1, m1 = _counts(replayer)
        out.append((index, start, a1 - a0, m1 - m0, 0))
    return out


# --------------------------------------------------------------------- #
# Functional-warming fast-forward
# --------------------------------------------------------------------- #
def warm_checkpoints(trace, cache, spec: SamplingSpec, *,
                     chunk: int = DEFAULT_CHUNK) -> list[CacheCheckpoint]:
    """Stream the trace once, emitting a checkpoint at each window start.

    The serial functional-warming pass of ``warming="checkpoint"``: the
    cache consumes every access (windows included — state at window
    ``k`` reflects the full prefix), and the returned checkpoints carry
    ``position`` = the window's start.  The trace is consumed in
    ``chunk``-access steps, so a :class:`ChunkedTrace` is never
    materialized.
    """
    _check_cache_spec(cache)
    view = _as_view(trace)
    windows = spec.windows_for(view.n_accesses)
    replayer = build(cache)
    checkpoints = []
    pos = 0
    for start, _ in windows:
        while pos < start:
            step = min(chunk, start - pos)
            _replay(replayer, view.segment(pos, pos + step))
            pos += step
        checkpoints.append(snapshot(replayer, position=start))
    return checkpoints


def run_exact(trace, cache, *, chunk: int = DEFAULT_CHUNK) -> CacheStats:
    """Exact streaming replay of the whole trace (the validation
    baseline for :func:`run_sampled`; works on a ChunkedTrace without
    materializing it)."""
    _check_cache_spec(cache)
    view = _as_view(trace)
    replayer = build(cache)
    pos = 0
    while pos < view.n_accesses:
        _replay(replayer, view.segment(pos, pos + chunk))
        pos += chunk
    accesses, misses = _counts(replayer)
    return CacheStats(accesses=accesses, hits=accesses - misses,
                      misses=misses, instructions=view.instructions)


# --------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------- #
def _pool_source(trace, view, trace_store):
    """A picklable trace source for process workers (+ owned store)."""
    if isinstance(trace, (ChunkedTrace, TraceHandle)):
        return trace, None
    store = trace_store if trace_store is not None else TraceStore()
    handle = store.put(view.addresses)
    return handle, (store if trace_store is None else None)


def _fan_out(trace, view, cache, units, simulate, max_workers,
             trace_store) -> list[tuple]:
    from concurrent.futures import ProcessPoolExecutor
    workers = min(max_workers, len(units))
    shards = [units[i::workers] for i in range(workers)]
    source, owned = _pool_source(trace, view, trace_store)
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(simulate, source, cache, shard)
                       for shard in shards if shard]
            return [row for future in futures for row in future.result()]
    finally:
        if owned is not None:
            owned.close()


def run_sampled(trace, cache, spec: SamplingSpec, *,
                parallel: str = "auto", threads: int | None = None,
                max_workers: int | None = None,
                trace_store: TraceStore | None = None,
                supervise: bool = False, bank=None, queue=None,
                faults=None) -> SampledResult:
    """Estimate ``cache``'s MPKI on ``trace`` from sampled windows.

    Parameters mirror :func:`repro.sim.sweep.run_sweep`: ``parallel``
    picks threads (one GIL-releasing native batch over all windows) or
    a process pool (windows sharded round-robin; the trace rides a
    TraceStore memmap, or is regenerated block-on-demand when it is a
    :class:`ChunkedTrace`); ``supervise=True`` runs the windows through
    the fault-tolerant job runtime with per-window banking in ``bank``
    (``faults`` is the fault-injection hook, tests only).  Results are
    bit-identical across all execution strategies.

    Returns a :class:`~repro.sampling.estimator.SampledResult`; compare
    against :func:`run_exact` with ``result.error_vs_exact(...)``.
    """
    _check_cache_spec(cache)
    view = _as_view(trace)
    n = view.n_accesses
    max_workers = max_workers if max_workers is not None else 1

    if spec.warming == "checkpoint":
        if supervise:
            raise ValueError(
                "warming='checkpoint' is a serial validation pass and is "
                "not supervised; use warming='window' with supervise=True")
        checkpoints = warm_checkpoints(trace, cache, spec)
        units = [(i, ckpt, ckpt.position, ckpt.position + spec.window)
                 for i, ckpt in enumerate(checkpoints)]
        mode = resolve_parallel(parallel)
        caches = ([ckpt.build() for _, ckpt, _, _ in units]
                  if mode == "threads" else [])
        if (mode == "threads" and caches
                and getattr(caches[0], "replay_task", None) is not None):
            baselines = [_counts(c) for c in caches]
            width = resolve_threads(
                threads if threads is not None
                else (max_workers if max_workers > 1 else None))
            run_tasks([_replay_task(c, view.segment(start, stop))
                       for c, (_, _, start, stop) in zip(caches, units)],
                      threads=width)
            rows = []
            for c, (index, _, start, _), (a0, m0) in zip(caches, units,
                                                         baselines):
                a1, m1 = _counts(c)
                rows.append((index, start, a1 - a0, m1 - m0, 0))
        elif max_workers > 1 and len(units) > 1:
            rows = _fan_out(trace, view, cache, units,
                            simulate_checkpoint_units, max_workers,
                            trace_store)
        else:
            rows = simulate_checkpoint_units(view, cache, units)
    else:
        units = window_units(spec, cache, n)
        if supervise:
            from ..jobs.drivers import run_sampled_supervised
            rows = run_sampled_supervised(
                trace, cache, spec, units, max_workers=max_workers,
                bank=bank, queue=queue, faults=faults)
        else:
            mode = resolve_parallel(parallel)
            if mode == "threads":
                width = resolve_threads(
                    threads if threads is not None
                    else (max_workers if max_workers > 1 else None))
                rows = _simulate_windows_threaded(view, cache, units, width)
            elif max_workers > 1 and len(units) > 1:
                rows = _fan_out(trace, view, cache, units,
                                simulate_window_units, max_workers,
                                trace_store)
            else:
                rows = simulate_window_units(view, cache, units)

    windows = tuple(WindowResult(index=index, start=start,
                                 accesses=accesses, misses=misses,
                                 warmup_accesses=warmup)
                    for index, start, accesses, misses, warmup
                    in sorted(rows))
    return SampledResult(windows=windows, total_accesses=n,
                         instructions=view.instructions,
                         confidence=spec.confidence, warming=spec.warming)
