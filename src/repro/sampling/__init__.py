"""Checkpointed sampled simulation with confidence intervals.

Exact replay of a billion-access trace is off the table; this package
estimates a cache's MPKI from sampled detailed windows instead, the
SMARTS/pFSA recipe adapted to this codebase's declarative spec +
parallel driver architecture:

* :mod:`repro.sampling.checkpoint` — ``snapshot()``/``restore()`` of
  warm cache state for every array backend (set-associative, way/set/
  ideal partitioned, Vantage, Talus), picklable and content-hashable;
* :mod:`repro.sampling.driver` — :class:`SamplingSpec` window
  placement, functional-warming fast-forward (:func:`warm_checkpoints`),
  and :func:`run_sampled`, fanning detailed windows over threads, a
  process pool, or the fault-tolerant job runtime (``supervise=True``);
* :mod:`repro.sampling.estimator` — per-window aggregation into a
  :class:`SampledResult` with Student-t confidence intervals and an
  :meth:`~SampledResult.error_vs_exact` validator.

The long traces themselves come from
:func:`repro.workloads.scale.long_trace`, which generates blocks on
demand and never materializes the trace.
"""

from .checkpoint import CacheCheckpoint, restore_into, snapshot
from .driver import (SamplingSpec, run_exact, run_sampled, warm_checkpoints,
                     window_seed)
from .estimator import (SampledResult, WindowResult, normal_quantile,
                        student_t_critical)

__all__ = [
    "CacheCheckpoint", "snapshot", "restore_into",
    "SamplingSpec", "run_sampled", "run_exact", "warm_checkpoints",
    "window_seed",
    "SampledResult", "WindowResult", "student_t_critical",
    "normal_quantile",
]
