"""Statistical estimator for sampled simulation.

Sampled replay simulates only a handful of *detailed windows* out of a
long trace and treats each window's miss rate as one observation of the
trace's steady-state behaviour.  The aggregation here is the classic
SMARTS/pFSA recipe:

* the **point estimate** is the mean of the per-window miss rates (each
  window contributes equally — windows have equal length, so this is
  also the miss rate of the union of the sampled accesses);
* the **confidence interval** is the CLT interval around that mean,
  ``t_{1-a/2, n-1} * s / sqrt(n)``, using the Student-t critical value
  (windows are few, so the normal approximation alone would understate
  the error);
* windows are placed *systematically* (fixed period through the trace),
  which for the phase-structured traces we model behaves like stratified
  sampling — one observation per equal stratum of the trace — and makes
  the CLT interval conservative rather than optimistic when phases are
  longer than the sampling period.

No SciPy is available in this environment, so the t quantile is
computed from Acklam's inverse-normal approximation plus the
Cornish-Fisher expansion in ``1/df`` (exact published values are used
for the very small degrees of freedom where the expansion is weak).
Accuracy is ~1e-4 for df >= 5 — far below the sampling noise the
interval is quantifying.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["WindowResult", "SampledResult", "normal_quantile",
           "student_t_critical"]


def normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation)."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return ((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4])
                 * q + c[5])
                / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1))
    if p > p_high:
        q = math.sqrt(-2 * math.log(1 - p))
        return -((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4])
                  * q + c[5])
                 / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1))
    q = p - 0.5
    r = q * q
    return ((((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4])
             * r + a[5]) * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4])
               * r + 1))


# Exact two-sided critical values where the 1/df expansion is weakest.
_T_EXACT = {
    (1, 0.90): 6.3138, (1, 0.95): 12.7062, (1, 0.99): 63.6567,
    (2, 0.90): 2.9200, (2, 0.95): 4.3027, (2, 0.99): 9.9248,
    (3, 0.90): 2.3534, (3, 0.95): 3.1824, (3, 0.99): 5.8409,
    (4, 0.90): 2.1318, (4, 0.95): 2.7764, (4, 0.99): 4.6041,
}


def student_t_critical(confidence: float, df: int) -> float:
    """Two-sided Student-t critical value ``t_{1-(1-confidence)/2, df}``."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if df <= 0:
        return math.inf
    exact = _T_EXACT.get((df, round(confidence, 4)))
    if exact is not None:
        return exact
    z = normal_quantile(0.5 + confidence / 2.0)
    # Cornish-Fisher expansion of the t quantile around the normal one.
    g1 = (z ** 3 + z) / 4.0
    g2 = (5 * z ** 5 + 16 * z ** 3 + 3 * z) / 96.0
    g3 = (3 * z ** 7 + 19 * z ** 5 + 17 * z ** 3 - 15 * z) / 384.0
    return z + g1 / df + g2 / df ** 2 + g3 / df ** 3


@dataclass(frozen=True)
class WindowResult:
    """Detailed statistics of one sampled window."""

    index: int           #: window number (0-based, in trace order)
    start: int           #: first trace position measured by this window
    accesses: int        #: measured accesses (the window length)
    misses: int          #: misses among the measured accesses
    warmup_accesses: int = 0   #: unmeasured warmup accesses replayed first

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class SampledResult:
    """Point estimate + confidence interval of one sampled replay.

    ``windows`` carries every per-window observation, so callers can
    recompute any statistic; the properties below implement the standard
    CLT aggregation described in the module docstring.
    """

    windows: tuple          #: tuple[WindowResult, ...] in trace order
    total_accesses: int     #: length of the full (unsampled) trace
    instructions: int = 0   #: instruction count of the full trace
    confidence: float = 0.95
    warming: str = "window"
    meta: tuple = field(default=(), compare=False)

    @property
    def n_windows(self) -> int:
        return len(self.windows)

    @property
    def sampled_accesses(self) -> int:
        """Accesses actually simulated, warmup included (the cost)."""
        return sum(w.accesses + w.warmup_accesses for w in self.windows)

    @property
    def measured_accesses(self) -> int:
        return sum(w.accesses for w in self.windows)

    @property
    def miss_rate(self) -> float:
        """Point estimate: mean of the per-window miss rates."""
        if not self.windows:
            return 0.0
        return sum(w.miss_rate for w in self.windows) / len(self.windows)

    @property
    def miss_rate_std(self) -> float:
        """Sample standard deviation of the window miss rates (ddof=1)."""
        n = len(self.windows)
        if n < 2:
            return 0.0
        mean = self.miss_rate
        var = sum((w.miss_rate - mean) ** 2 for w in self.windows) / (n - 1)
        return math.sqrt(var)

    @property
    def miss_rate_halfwidth(self) -> float:
        """Half-width of the confidence interval on the miss rate."""
        n = len(self.windows)
        if n < 2:
            return math.inf
        t = student_t_critical(self.confidence, n - 1)
        return t * self.miss_rate_std / math.sqrt(n)

    @property
    def estimated_misses(self) -> float:
        """Estimated miss count of the full trace."""
        return self.miss_rate * self.total_accesses

    @property
    def mpki(self) -> float:
        """Estimated misses per kilo-instruction of the full trace."""
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.estimated_misses / self.instructions

    @property
    def mpki_halfwidth(self) -> float:
        """Half-width of the confidence interval on the MPKI estimate."""
        if self.instructions <= 0:
            return 0.0
        return (1000.0 * self.miss_rate_halfwidth * self.total_accesses
                / self.instructions)

    @property
    def mpki_interval(self) -> tuple[float, float]:
        hw = self.mpki_halfwidth
        return (self.mpki - hw, self.mpki + hw)

    @property
    def speedup(self) -> float:
        """Simulated-access reduction vs an exact replay.

        ``warming="window"`` pays only the sampled windows and their
        warmup prefixes; ``warming="checkpoint"`` also pays the full
        functional fast-forward pass (its speedup is therefore < 1 —
        that mode buys exactness, not time).
        """
        cost = self.sampled_accesses
        if self.warming == "checkpoint":
            cost += self.total_accesses
        return self.total_accesses / cost if cost else math.inf

    def error_vs_exact(self, exact_mpki: float) -> dict:
        """Validator: compare the estimate against an exact-replay MPKI.

        Returns a report dict used by tier-1 tests and the accuracy
        benchmark; ``within_ci`` is the headline claim (the true value
        lies inside the reported interval).
        """
        err = self.mpki - exact_mpki
        hw = self.mpki_halfwidth
        return {
            "exact_mpki": float(exact_mpki),
            "sampled_mpki": float(self.mpki),
            "error": float(err),
            "abs_error": abs(float(err)),
            "relative_error": (abs(err) / exact_mpki if exact_mpki else 0.0),
            "ci_halfwidth": float(hw),
            "confidence": self.confidence,
            "within_ci": bool(abs(err) <= hw),
            "n_windows": self.n_windows,
            "speedup": float(self.speedup),
        }
