"""Miss-curve monitoring: stack-distance analysis, UMONs, multi-point monitors.

These are the software equivalents of the hardware monitors of Sec. VI-C of
the paper: they turn an access stream into the miss curves Talus plans with.
"""

from .drift import CurveDriftTracker, curve_drift
from .multipoint import MultiPointMonitor
from .stack_distance import (StackDistanceMonitor, lru_miss_curve,
                             stack_distance_histogram)
from .umon import UMON, CombinedUMON

__all__ = [
    "StackDistanceMonitor",
    "lru_miss_curve",
    "stack_distance_histogram",
    "UMON",
    "CombinedUMON",
    "MultiPointMonitor",
    "CurveDriftTracker",
    "curve_drift",
]
