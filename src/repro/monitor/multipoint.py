"""Multi-point monitors for non-stack replacement policies (Sec. VI-C).

High-performance policies such as SRRIP do not obey the stack property, so
no single auxiliary structure yields their whole miss curve.  The paper's
workaround — acknowledged to be impractically large in hardware, but
sufficient to show Talus is policy agnostic — is an array of monitors, one
per desired curve point, each sampling the access stream at a different
rate so that a fixed-size monitor models a different cache size
(Theorem 4 again).

:class:`MultiPointMonitor` reproduces that arrangement in software: each
point is a small simulated cache fed a hashed sample of the stream, and the
measured misses are scaled back up by the inverse sampling rate.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.misscurve import MissCurve
from ..cache.cache import SetAssociativeCache
from ..cache.hashing import mix64
from ..cache.replacement.base import EvictionPolicy

__all__ = ["MultiPointMonitor"]


class MultiPointMonitor:
    """One sampled monitor per miss-curve point, for arbitrary policies.

    Parameters
    ----------
    sizes:
        Cache sizes (in lines of the full cache) at which to measure the
        curve.  The paper uses 64 points.
    policy_factory:
        ``(set_index, ways) -> EvictionPolicy`` for the monitored policy.
    monitor_lines:
        Tag-array size of each per-point monitor.  Each point's sampling
        rate is ``monitor_lines / size`` (capped at 1), so bigger modelled
        sizes are sampled more sparsely — exactly how the hardware keeps
        per-point cost constant.
    ways:
        Associativity of the per-point monitor caches.
    seed:
        Base seed for the per-point sampling hashes.
    """

    def __init__(self, sizes: Sequence[int],
                 policy_factory: Callable[[int, int], EvictionPolicy],
                 monitor_lines: int = 1024,
                 ways: int = 16,
                 seed: int = 13):
        sizes = [int(s) for s in sizes]
        if not sizes:
            raise ValueError("sizes must not be empty")
        if any(s < 0 for s in sizes):
            raise ValueError("sizes must be non-negative")
        if monitor_lines <= 0:
            raise ValueError("monitor_lines must be positive")
        self.sizes = sorted(set(sizes))
        self.monitor_lines = monitor_lines
        self.seed = seed
        self._total = 0
        self._points: list[dict] = []
        for i, size in enumerate(self.sizes):
            if size == 0:
                self._points.append({"size": 0, "rate": 1.0, "cache": None,
                                     "sampled": 0, "misses": 0})
                continue
            rate = min(1.0, monitor_lines / size)
            capacity = max(1, int(round(size * rate)))
            if capacity < ways:
                num_sets, eff_ways = 1, capacity
            else:
                num_sets, eff_ways = capacity // ways, ways
            cache = SetAssociativeCache(num_sets, eff_ways, policy_factory,
                                        index_seed=seed + i)
            self._points.append({"size": size, "rate": rate, "cache": cache,
                                 "sampled": 0, "misses": 0,
                                 "threshold": int(rate * (1 << 30)),
                                 "hash_seed": seed + 101 * (i + 1)})

    # ------------------------------------------------------------------ #
    def record(self, address: int) -> None:
        """Observe one access with every per-point monitor."""
        self._total += 1
        for point in self._points:
            if point["size"] == 0:
                point["misses"] += 1
                point["sampled"] += 1
                continue
            if point["rate"] >= 1.0:
                sampled = True
            else:
                sampled = (mix64(address ^ (point["hash_seed"] * 0x9E3779B97F4A7C15))
                           % (1 << 30)) < point["threshold"]
            if not sampled:
                continue
            point["sampled"] += 1
            if not point["cache"].access(address):
                point["misses"] += 1

    def record_trace(self, trace: Iterable[int]) -> None:
        """Observe every access of a trace."""
        for address in trace:
            self.record(int(address))

    @property
    def total_accesses(self) -> int:
        """Accesses observed (sampled or not)."""
        return self._total

    def miss_curve(self) -> MissCurve:
        """Estimated full-stream miss curve of the monitored policy."""
        sizes = []
        misses = []
        for point in self._points:
            sizes.append(float(point["size"]))
            if point["size"] == 0:
                misses.append(float(self._total))
                continue
            rate = point["rate"]
            estimate = point["misses"] / rate if rate > 0 else 0.0
            misses.append(min(float(estimate), float(self._total)))
        curve = MissCurve(np.asarray(sizes), np.asarray(misses))
        # Independent per-point sampling noise can break monotonicity; clean
        # it up the same way hardware post-processing would.
        return curve.monotone_envelope()

    def storage_lines(self) -> int:
        """Total monitor tag-array entries — the hardware cost the paper
        calls out as impractical (64 points x 1 K lines ≈ 256 KB of tags)."""
        return sum(p["cache"].capacity_lines for p in self._points if p["cache"])
