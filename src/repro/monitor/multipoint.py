"""Multi-point monitors for non-stack replacement policies (Sec. VI-C).

High-performance policies such as SRRIP do not obey the stack property, so
no single auxiliary structure yields their whole miss curve.  The paper's
workaround — acknowledged to be impractically large in hardware, but
sufficient to show Talus is policy agnostic — is an array of monitors, one
per desired curve point, each sampling the access stream at a different
rate so that a fixed-size monitor models a different cache size
(Theorem 4 again).

:class:`MultiPointMonitor` reproduces that arrangement in software.  Each
point samples by *set* (UMON-DSS style): a seeded hash picks which sets of
the modelled cache the monitor follows, and the monitor cache holds exactly
those sets.  Every monitored set therefore receives precisely the lines its
modelled set would, which preserves the per-set balance that sharp
capacity cliffs depend on — plain address-hash sampling feeds each monitor
set a binomially imbalanced subset and smears cliffs (the planning-curve
noise that used to make Talus degrade SRRIP past libquantum's cliff).

Fast path
---------
The per-point sub-streams are selected and remapped with vectorized numpy
(:meth:`MultiPointMonitor.record_trace`), and each point's cache is an
array-backend cache (:mod:`repro.cache.arraycache`) replayed by the native
kernel in one call per point — no per-access Python.  The scalar
:meth:`MultiPointMonitor.record` path makes identical sampling decisions,
so online and batch recording interleave freely.  With ``backend="object"``
the same sampling drives reference object-model caches; for LRU/SRRIP (and
the other bit-exact policies) the two backends produce identical curves.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.misscurve import MissCurve
from ..cache.arraycache import ArraySetAssociativeCache
from ..cache.cache import SetAssociativeCache, materialize_addresses
from ..cache.factory import (SEEDED_POLICIES, cache_geometry,
                             named_policy_factory, resolve_backend)
from ..cache.hashing import mix64_array, seed_mix
from ..cache.replacement.base import EvictionPolicy

__all__ = ["MultiPointMonitor"]


class MultiPointMonitor:
    """One sampled monitor per miss-curve point, for arbitrary policies.

    Parameters
    ----------
    sizes:
        Cache sizes (in lines of the full cache) at which to measure the
        curve.  The paper uses 64 points.
    policy_factory:
        ``(set_index, ways) -> EvictionPolicy`` for the monitored policy.
        Forces the object backend; prefer ``policy`` for named policies.
    monitor_lines:
        Tag-array budget of each per-point monitor.  Points modelling up to
        ``monitor_lines`` lines are simulated exactly; larger points follow
        ``monitor_lines / size`` of the modelled sets, so bigger modelled
        sizes are sampled more sparsely — exactly how the hardware keeps
        per-point cost constant.
    ways:
        Associativity of the modelled (and therefore monitor) caches.
    seed:
        Base seed for the per-point set-selection hashes (and, with
        ``policy``, for randomized policies' insertion streams).
    policy:
        Name of the monitored policy (e.g. ``"SRRIP"``); enables the
        array/native backend.  Exactly one of ``policy``/``policy_factory``
        must be given.
    backend:
        "object", "array" or "auto" (only with ``policy``); "auto" picks
        the array backend where it is bit-identical to the object model.

    Notes
    -----
    Sampled points remap each line to its monitor set with a
    zigzag-encoded tag, so any int64 address is accepted.  Points small
    enough to be simulated exactly feed addresses through unchanged, so
    on the array backend they inherit its one reserved address (-1).
    """

    def __init__(self, sizes: Sequence[int],
                 policy_factory: Callable[[int, int], EvictionPolicy] | None = None,
                 monitor_lines: int = 1024,
                 ways: int = 16,
                 seed: int = 13,
                 policy: str | None = None,
                 backend: str = "auto"):
        sizes = [int(s) for s in sizes]
        if not sizes:
            raise ValueError("sizes must not be empty")
        if any(s < 0 for s in sizes):
            raise ValueError("sizes must be non-negative")
        if monitor_lines <= 0:
            raise ValueError("monitor_lines must be positive")
        if (policy is None) == (policy_factory is None):
            raise ValueError("exactly one of policy/policy_factory required")
        self.sizes = sorted(set(sizes))
        self.monitor_lines = monitor_lines
        self.ways = ways
        self.seed = seed
        self.policy = policy
        self.backend = ("object" if policy is None
                        else resolve_backend(backend, policy))
        self._total = 0
        self._points: list[dict] = []
        for i, size in enumerate(self.sizes):
            if size == 0:
                self._points.append({"size": 0, "rate": 1.0, "cache": None,
                                     "lut": None})
                continue
            mod_sets, mod_ways = cache_geometry(size, ways)
            if size <= monitor_lines:
                # Small point: simulate the modelled cache exactly.
                m, lut, rate = mod_sets, None, 1.0
            else:
                m = min(mod_sets, max(1, monitor_lines // mod_ways))
                rate = m / mod_sets
                # Seeded hash ranks the modelled sets; the monitor follows
                # the first m of them.  lut[s] = monitor set of modelled
                # set s, or -1 when s is not monitored.
                seed_mul = seed_mix(seed + 101 * (i + 1))
                keys = mix64_array(np.arange(mod_sets).astype(np.uint64)
                                   ^ np.uint64(seed_mul))
                chosen = np.argsort(keys, kind="stable")[:m]
                lut = np.full(mod_sets, -1, dtype=np.int64)
                lut[chosen] = np.arange(m, dtype=np.int64)
            cache = self._build_cache(m, mod_ways, policy_factory, i)
            self._points.append({"size": size, "rate": rate, "cache": cache,
                                 "lut": lut, "mod_sets": mod_sets, "m": m})

    def _build_cache(self, num_sets: int, ways: int,
                     policy_factory, point_index: int):
        if self.backend == "array":
            return ArraySetAssociativeCache(num_sets, ways,
                                            policy=self.policy,
                                            seed=self.seed + point_index)
        if policy_factory is None:
            kwargs = ({"seed": self.seed + point_index}
                      if self.policy in SEEDED_POLICIES else {})
            policy_factory = named_policy_factory(self.policy, num_sets,
                                                  **kwargs)
        return SetAssociativeCache(num_sets, ways, policy_factory)

    # ------------------------------------------------------------------ #
    def record(self, address: int) -> None:
        """Observe one access with every per-point monitor."""
        address = int(address)
        self._total += 1
        for point in self._points:
            if point["size"] == 0:
                continue
            lut = point["lut"]
            if lut is None:
                sampled_address = address
            else:
                mod_sets = point["mod_sets"]
                rank = int(lut[address % mod_sets])
                if rank < 0:
                    continue
                # Remap so the monitor's modulo indexing lands the line in
                # the monitor set that mirrors its modelled set.  The tag
                # part is zigzag-encoded to keep remapped addresses
                # non-negative (the array backend reserves -1).
                q = address // mod_sets
                q = 2 * q if q >= 0 else -2 * q - 1
                sampled_address = q * point["m"] + rank
            point["cache"].access(sampled_address)

    def record_trace(self, trace: Iterable[int]) -> None:
        """Observe every access of a trace (vectorized, batch fast path).

        For each point the sampled sub-stream is selected and remapped in
        a few numpy operations, then replayed through the point's cache in
        one :meth:`run` call (a single native-kernel invocation on the
        array backend) — the batched-sweep pattern of
        :mod:`repro.sim.sweep` applied to monitoring.
        """
        addrs = materialize_addresses(trace)
        self._total += int(addrs.size)
        if not addrs.size:
            return
        for point in self._points:
            if point["size"] == 0:
                continue
            lut = point["lut"]
            if lut is None:
                sub = addrs
            else:
                mod_sets = point["mod_sets"]
                ranks = lut[np.mod(addrs, mod_sets)]
                mask = ranks >= 0
                q = np.floor_divide(addrs[mask], mod_sets)
                q = np.where(q >= 0, 2 * q, -2 * q - 1)
                sub = q * point["m"] + ranks[mask]
            point["cache"].run(sub)

    @property
    def total_accesses(self) -> int:
        """Accesses observed (sampled or not)."""
        return self._total

    def sampled_accesses(self, size: int) -> int:
        """Accesses the monitor of ``size`` actually simulated."""
        for point in self._points:
            if point["size"] == size:
                return (self._total if point["cache"] is None
                        else point["cache"].stats.accesses)
        raise KeyError(f"no monitor point of size {size}")

    def miss_curve(self) -> MissCurve:
        """Estimated full-stream miss curve of the monitored policy."""
        sizes = []
        misses = []
        for point in self._points:
            sizes.append(float(point["size"]))
            if point["size"] == 0:
                misses.append(float(self._total))
                continue
            rate = point["rate"]
            estimate = point["cache"].stats.misses / rate if rate > 0 else 0.0
            misses.append(min(float(estimate), float(self._total)))
        curve = MissCurve(np.asarray(sizes), np.asarray(misses))
        # Independent per-point sampling noise can break monotonicity; clean
        # it up the same way hardware post-processing would.
        return curve.monotone_envelope()

    def storage_lines(self) -> int:
        """Total monitor tag-array entries — the hardware cost the paper
        calls out as impractical (64 points x 1 K lines ≈ 256 KB of tags)."""
        return sum(p["cache"].capacity_lines for p in self._points
                   if p["cache"] is not None)
