"""Utility monitors (UMONs) — hardware-style sampled LRU miss-curve monitors.

A UMON (Qureshi & Patt, MICRO 2006) is a small auxiliary tag array that
samples a subset of accesses and exploits LRU's stack property to measure
the whole miss curve at once.  The Talus paper uses:

* a conventional UMON covering sizes up to the LLC capacity, and
* a second, lower-rate *sampled* UMON that — by Theorem 4 — models a
  proportionally larger cache, extending curve coverage to 4x the LLC size
  with 1/16 of the sampling rate (Sec. VI-C).  This matters for benchmarks
  whose cliffs lie beyond the LLC (libquantum).

Sampling is by address hash, which per Assumption 3 yields a statistically
self-similar stream, so the measured curve scales back up by the sampling
factor on both axes.

Fast path
---------
The monitor is incremental end to end: :meth:`UMON.record_trace` selects
the sampled sub-stream with one vectorized splitmix64 pass
(:func:`repro.cache.hashing.mix64_array`) instead of one Python hash call
per access, and the sub-stream advances a persistent native
stack-distance state
(:class:`repro.monitor.stack_distance.IncrementalStackMonitor`) on the
first curve read after new data — accumulated accesses are never
re-replayed, so a reconfiguration loop that reads the curve every
interval does O(sub-stream length) total monitoring work.  The scalar
:meth:`UMON.record` path selects exactly the same sub-stream, so online
and batch recording are interchangeable and the produced curves are
bit-identical to the pre-vectorization implementation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..core.misscurve import MissCurve
from ..cache.cache import materialize_addresses as _materialize
from ..cache.hashing import mix64, mix64_array, seed_mix
from .stack_distance import IncrementalStackMonitor

__all__ = ["UMON", "CombinedUMON"]


class UMON:
    """An address-sampled LRU miss-curve monitor.

    Parameters
    ----------
    sampling_rate:
        Fraction of accesses the monitor observes (1/64 is a typical
        hardware rate; 1.0 observes everything, useful for exact curves).
    max_size:
        Largest cache size (in lines of the *full* cache) the monitor should
        report.  Internally the monitor only needs ``max_size *
        sampling_rate`` tag entries, which is what makes UMONs cheap.
    points:
        Number of evenly spaced sizes at which :meth:`miss_curve` samples
        the curve (the paper's UMONs have 64 ways -> 64 points).
    seed:
        Seed of the sampling hash.
    """

    def __init__(self, sampling_rate: float = 1.0 / 64.0,
                 max_size: int = 1 << 14,
                 points: int = 64,
                 seed: int = 11):
        if not 0.0 < sampling_rate <= 1.0:
            raise ValueError("sampling_rate must be in (0, 1]")
        if max_size <= 0:
            raise ValueError("max_size must be positive")
        if points < 2:
            raise ValueError("points must be >= 2")
        self.sampling_rate = sampling_rate
        self.max_size = max_size
        self.points = points
        self.seed = seed
        self._threshold = int(sampling_rate * (1 << 30))
        self._seed_mul = np.uint64(seed_mix(seed))
        self._chunks: list[np.ndarray] = []
        self._pending: list[int] = []
        self._observed = 0
        self._total = 0
        # Cached (histogram, cold) keyed by the observed count at the time.
        self._hist_cache: tuple[int, np.ndarray, int] | None = None
        # Persistent stack-distance state; pending chunks are folded in
        # lazily at the first curve read after new data.
        self._monitor: IncrementalStackMonitor | None = None

    # ------------------------------------------------------------------ #
    def _sampled(self, address: int) -> bool:
        return (mix64(address ^ seed_mix(self.seed)) % (1 << 30)
                < self._threshold)

    def _sample_mask(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorized twin of :meth:`_sampled` (same sub-stream exactly)."""
        hashed = mix64_array(addrs.astype(np.uint64) ^ self._seed_mul)
        return (hashed & np.uint64((1 << 30) - 1)) < np.uint64(self._threshold)

    def record(self, address: int) -> None:
        """Observe one access (the monitor decides whether to sample it)."""
        self._total += 1
        if self._sampled(address):
            self._observed += 1
            self._pending.append(int(address))

    def record_trace(self, trace: Iterable[int]) -> None:
        """Observe every access of a trace (one vectorized sampling pass)."""
        addrs = _materialize(trace)
        self._total += int(addrs.size)
        if not addrs.size:
            return
        if self._pending:
            # Keep the sub-stream in access order when scalar record()
            # calls preceded this batch.
            self._chunks.append(np.asarray(self._pending, dtype=np.int64))
            self._pending = []
        sub = addrs[self._sample_mask(addrs)]
        if sub.size:
            self._observed += int(sub.size)
            self._chunks.append(sub)

    @property
    def total_accesses(self) -> int:
        """Accesses seen (sampled or not)."""
        return self._total

    @property
    def sampled_accesses(self) -> int:
        """Accesses actually sampled into the monitor."""
        return self._observed

    # ------------------------------------------------------------------ #
    def _histogram(self) -> tuple[np.ndarray, int]:
        """(stack-distance histogram, cold misses) of the sub-stream.

        Chunks recorded since the last read are folded into the
        persistent :class:`IncrementalStackMonitor` (native state when a
        kernel is available, the online reference monitor otherwise), so
        each sampled access is processed exactly once no matter how often
        the curve is read — the resumable-runtime contract the
        reconfiguration loop relies on.
        """
        if self._hist_cache is not None \
                and self._hist_cache[0] == self._observed:
            return self._hist_cache[1], self._hist_cache[2]
        if self._pending:
            self._chunks.append(np.asarray(self._pending, dtype=np.int64))
            self._pending = []
        if self._monitor is None:
            self._monitor = IncrementalStackMonitor(
                capacity_hint=max(1024, self._observed))
        for chunk in self._chunks:
            self._monitor.record_trace(chunk)
        self._chunks = []
        dense, cold = self._monitor.histogram(), self._monitor.cold_misses
        self._hist_cache = (self._observed, dense, cold)
        return dense, cold

    def miss_curve(self, sizes: Sequence[float] | None = None) -> MissCurve:
        """Estimated full-stream LRU miss curve.

        The monitor's internal curve covers sampled sizes up to
        ``max_size * sampling_rate``; Theorem 4 scales it back up: sizes are
        divided by the sampling rate and miss counts are multiplied by the
        inverse rate.
        """
        if sizes is None:
            sizes = np.linspace(0, self.max_size, self.points)
        sizes = np.asarray(sizes, dtype=float)
        sampled_sizes = sizes * self.sampling_rate
        dense, cold = self._histogram()
        sampled_curve = MissCurve.from_stack_distances(
            dense, cold_misses=cold, sizes=sampled_sizes)
        scale = 1.0 / self.sampling_rate if self._observed else 1.0
        misses = sampled_curve.misses * scale
        # Guard against sampling noise: the curve should not exceed the
        # total access count.
        misses = np.minimum(misses, self._total)
        return MissCurve(sizes, misses)


class CombinedUMON:
    """The paper's two-monitor arrangement: full-rate plus low-rate coverage.

    The primary UMON covers sizes up to the LLC; the secondary samples at a
    fraction ``coverage_ratio`` of the primary's rate and therefore covers
    ``1 / coverage_ratio`` times the size range.  :meth:`miss_curve` splices
    the two: primary below the LLC size, secondary above.
    """

    def __init__(self, llc_size: int,
                 primary_rate: float = 1.0 / 64.0,
                 coverage_ratio: float = 1.0 / 16.0,
                 points: int = 64,
                 seed: int = 11):
        if llc_size <= 0:
            raise ValueError("llc_size must be positive")
        if not 0.0 < coverage_ratio < 1.0:
            raise ValueError("coverage_ratio must be in (0, 1)")
        self.llc_size = llc_size
        self.coverage_ratio = coverage_ratio
        self.primary = UMON(sampling_rate=primary_rate, max_size=llc_size,
                            points=points, seed=seed)
        extended = int(round(llc_size / coverage_ratio))
        self.secondary = UMON(sampling_rate=primary_rate * coverage_ratio,
                              max_size=extended, points=points, seed=seed + 1)

    def record(self, address: int) -> None:
        """Observe one access with both monitors."""
        self.primary.record(address)
        self.secondary.record(address)

    def record_trace(self, trace: Iterable[int]) -> None:
        """Observe every access of a trace (vectorized, both monitors)."""
        addrs = _materialize(trace)
        self.primary.record_trace(addrs)
        self.secondary.record_trace(addrs)

    @property
    def max_size(self) -> int:
        """Largest size covered (the secondary monitor's range)."""
        return self.secondary.max_size

    def miss_curve(self, sizes: Sequence[float] | None = None) -> MissCurve:
        """Spliced miss curve covering up to ``llc_size / coverage_ratio``."""
        if sizes is None:
            sizes = np.linspace(0, self.max_size, 2 * self.primary.points)
        sizes = np.asarray(sizes, dtype=float)
        primary_curve = self.primary.miss_curve(
            sizes=sizes[sizes <= self.llc_size])
        secondary_curve = self.secondary.miss_curve(
            sizes=sizes[sizes > self.llc_size])
        all_sizes = np.concatenate([primary_curve.sizes, secondary_curve.sizes])
        all_misses = np.concatenate([primary_curve.misses, secondary_curve.misses])
        if all_sizes.size == 0:
            raise ValueError("no sizes requested")
        curve = MissCurve(all_sizes, all_misses)
        # Splicing two independently sampled monitors can introduce a small
        # upward step at the boundary; enforce monotonicity.
        return curve.monotone_envelope()
