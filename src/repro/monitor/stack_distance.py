"""Mattson stack-distance analysis for LRU miss curves.

LRU obeys the *stack property* (Mattson et al., 1970): the contents of a
smaller LRU cache are always a subset of a larger one's.  Consequently a
single pass over a trace — recording, for each access, the number of
distinct lines touched since that line's previous access (its *stack
distance*) — yields the complete LRU miss curve at every capacity at once.

The implementation uses the classic Fenwick-tree (binary indexed tree)
formulation: keep each line's last access position, mark positions as live,
and count live positions newer than the line's last access in O(log n).

Two execution paths share that algorithm:

* :class:`StackDistanceMonitor` — the online reference: feed accesses one
  at a time, read the histogram or curve at any point.
* :func:`stack_distance_histogram` / :func:`lru_miss_curve` — the batch
  fast path over a materialized trace: one call into the native
  ``stack_hist_run`` kernel (:mod:`repro.cache._native`), which produces
  the identical histogram 20-50x faster; without a compiler it falls back
  to the online monitor.

This is the algorithmic core of the UMON monitors in :mod:`repro.monitor.umon`
and of the fast exact LRU miss curves used throughout the experiments.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..cache._native import get_kernel
from ..core.misscurve import MissCurve

__all__ = ["StackDistanceMonitor", "lru_miss_curve", "stack_distance_histogram"]


class _Fenwick:
    """Binary indexed tree over access positions (1-based, prefix sums)."""

    def __init__(self, size: int):
        self._tree = np.zeros(size + 1, dtype=np.int64)
        self._size = size

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        while i <= self._size:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries at positions [0, index]."""
        i = index + 1
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return int(total)


class StackDistanceMonitor:
    """Online stack-distance monitor producing LRU miss curves.

    Feed accesses with :meth:`record`; read the distance histogram or an LRU
    miss curve at any point.  Distances are in *lines* (distinct lines
    accessed since the previous touch), so ``histogram[d]`` accesses hit in
    any LRU cache of more than ``d`` lines.

    Parameters
    ----------
    capacity_hint:
        Expected number of accesses (the position tree grows in chunks of
        this size).  Purely a performance knob.
    """

    def __init__(self, capacity_hint: int = 1 << 16):
        if capacity_hint < 1:
            raise ValueError("capacity_hint must be positive")
        self._chunk = capacity_hint
        self._tree = _Fenwick(capacity_hint)
        self._tree_size = capacity_hint
        self._last_position: dict[int, int] = {}
        self._position = 0
        self._histogram: dict[int, int] = {}
        self.cold_misses = 0

    @property
    def accesses(self) -> int:
        """Total accesses recorded."""
        return self._position

    def _grow(self) -> None:
        new_size = self._tree_size + self._chunk
        new_tree = _Fenwick(new_size)
        # Re-mark currently-live positions (one per tracked line).
        for pos in self._last_position.values():
            new_tree.add(pos, 1)
        self._tree = new_tree
        self._tree_size = new_size

    def record(self, address: int) -> int | None:
        """Record one access; returns its stack distance (None if cold)."""
        if self._position >= self._tree_size:
            self._grow()
        last = self._last_position.get(address)
        if last is None:
            distance = None
            self.cold_misses += 1
        else:
            # Distinct lines touched after `last`: live markers in (last, now).
            newer = (self._tree.prefix_sum(self._position - 1)
                     - self._tree.prefix_sum(last))
            distance = int(newer)
            self._histogram[distance] = self._histogram.get(distance, 0) + 1
            self._tree.add(last, -1)
        self._tree.add(self._position, 1)
        self._last_position[address] = self._position
        self._position += 1
        return distance

    def record_trace(self, trace: Iterable[int]) -> None:
        """Record every access of a trace."""
        for address in trace:
            self.record(int(address))

    def histogram(self, max_distance: int | None = None) -> np.ndarray:
        """Dense stack-distance histogram up to ``max_distance`` (inclusive)."""
        if not self._histogram:
            return np.zeros(0 if max_distance is None else max_distance + 1)
        top = max(self._histogram)
        limit = top if max_distance is None else max_distance
        dense = np.zeros(limit + 1, dtype=float)
        for distance, count in self._histogram.items():
            if distance <= limit:
                dense[distance] += count
        return dense

    def miss_curve(self, sizes: Sequence[float] | None = None) -> MissCurve:
        """The LRU miss curve implied by the recorded distances.

        Misses are absolute counts over the recorded accesses; divide by
        instructions (or use :meth:`MissCurve.scaled`) for MPKI.
        """
        dense = self.histogram()
        beyond = 0
        if sizes is not None and len(dense):
            # Counts beyond the largest requested size still contribute to
            # the miss totals at the requested sizes via cold_misses below,
            # handled by from_stack_distances clamping.
            beyond = 0
        return MissCurve.from_stack_distances(
            dense, cold_misses=self.cold_misses + beyond, sizes=sizes)


def stack_distance_histogram(trace: Sequence[int]) -> tuple[np.ndarray, int]:
    """One-shot stack-distance histogram of a trace.

    Returns ``(histogram, cold_misses)``.  Runs the native
    ``stack_hist_run`` kernel when available (bit-identical to the online
    monitor, enforced by ``tests/test_monitors.py``), the
    :class:`StackDistanceMonitor` otherwise.
    """
    addrs = np.ascontiguousarray(np.asarray(trace, dtype=np.int64))
    if addrs.ndim != 1:
        raise ValueError("trace must be one-dimensional")
    n = int(addrs.size)
    if n == 0:
        return np.zeros(0), 0
    kernel = get_kernel()
    if kernel is not None:
        hist = np.zeros(n, dtype=np.int64)
        cold = kernel.stack_hist_run(addrs, hist)
        if cold >= 0:    # -1 == scratch allocation failed; fall back
            nonzero = np.nonzero(hist)[0]
            top = int(nonzero[-1]) + 1 if nonzero.size else 0
            return hist[:top].astype(float), int(cold)
    monitor = StackDistanceMonitor(capacity_hint=max(1024, n))
    monitor.record_trace(addrs)
    return monitor.histogram(), monitor.cold_misses


def lru_miss_curve(trace: Sequence[int],
                   sizes: Sequence[float] | None = None) -> MissCurve:
    """Exact LRU miss curve (fully associative) of a trace in one pass."""
    dense, cold = stack_distance_histogram(trace)
    return MissCurve.from_stack_distances(dense, cold_misses=cold,
                                          sizes=sizes)
