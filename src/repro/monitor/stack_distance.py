"""Mattson stack-distance analysis for LRU miss curves.

LRU obeys the *stack property* (Mattson et al., 1970): the contents of a
smaller LRU cache are always a subset of a larger one's.  Consequently a
single pass over a trace — recording, for each access, the number of
distinct lines touched since that line's previous access (its *stack
distance*) — yields the complete LRU miss curve at every capacity at once.

The implementation uses the classic Fenwick-tree (binary indexed tree)
formulation: keep each line's last access position, mark positions as live,
and count live positions newer than the line's last access in O(log n).

Three execution paths share that algorithm:

* :class:`StackDistanceMonitor` — the online reference: feed accesses one
  at a time, read the histogram or curve at any point.
* :func:`stack_distance_histogram` / :func:`lru_miss_curve` — the batch
  fast path over a materialized trace: one call into the native
  ``stack_hist_run`` kernel (:mod:`repro.cache._native`), which produces
  the identical histogram 20-50x faster; without a compiler it falls back
  to the online monitor.
* :class:`IncrementalStackMonitor` — the *resumable* fast path: the hash
  table, Fenwick tree, position counter and histogram persist in numpy
  arrays across ``record_trace`` calls, so a monitor that interleaves
  recording with curve reads (the interval-based reconfiguration loop)
  never re-replays its accumulated sub-stream.  Chunks advance the native
  ``stack_hist_chunk`` kernel; growth is amortized by geometric table
  rehashes and position-space compactions that preserve the relative
  order of live markers (the only thing distances read).  Without a
  compiler it degrades to the online monitor — identical results.

This is the algorithmic core of the UMON monitors in :mod:`repro.monitor.umon`
and of the fast exact LRU miss curves used throughout the experiments.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..cache._native import get_kernel
from ..core.misscurve import MissCurve

__all__ = ["StackDistanceMonitor", "IncrementalStackMonitor",
           "lru_miss_curve", "stack_distance_histogram"]


class _Fenwick:
    """Binary indexed tree over access positions (1-based, prefix sums)."""

    def __init__(self, size: int):
        self._tree = np.zeros(size + 1, dtype=np.int64)
        self._size = size

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        while i <= self._size:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries at positions [0, index]."""
        i = index + 1
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return int(total)


class StackDistanceMonitor:
    """Online stack-distance monitor producing LRU miss curves.

    Feed accesses with :meth:`record`; read the distance histogram or an LRU
    miss curve at any point.  Distances are in *lines* (distinct lines
    accessed since the previous touch), so ``histogram[d]`` accesses hit in
    any LRU cache of more than ``d`` lines.

    Parameters
    ----------
    capacity_hint:
        Expected number of accesses (the position tree grows in chunks of
        this size).  Purely a performance knob.
    """

    def __init__(self, capacity_hint: int = 1 << 16):
        if capacity_hint < 1:
            raise ValueError("capacity_hint must be positive")
        self._chunk = capacity_hint
        self._tree = _Fenwick(capacity_hint)
        self._tree_size = capacity_hint
        self._last_position: dict[int, int] = {}
        self._position = 0
        self._histogram: dict[int, int] = {}
        self.cold_misses = 0

    @property
    def accesses(self) -> int:
        """Total accesses recorded."""
        return self._position

    def _grow(self) -> None:
        new_size = self._tree_size + self._chunk
        new_tree = _Fenwick(new_size)
        # Re-mark currently-live positions (one per tracked line).
        for pos in self._last_position.values():
            new_tree.add(pos, 1)
        self._tree = new_tree
        self._tree_size = new_size

    def record(self, address: int) -> int | None:
        """Record one access; returns its stack distance (None if cold)."""
        if self._position >= self._tree_size:
            self._grow()
        last = self._last_position.get(address)
        if last is None:
            distance = None
            self.cold_misses += 1
        else:
            # Distinct lines touched after `last`: live markers in (last, now).
            newer = (self._tree.prefix_sum(self._position - 1)
                     - self._tree.prefix_sum(last))
            distance = int(newer)
            self._histogram[distance] = self._histogram.get(distance, 0) + 1
            self._tree.add(last, -1)
        self._tree.add(self._position, 1)
        self._last_position[address] = self._position
        self._position += 1
        return distance

    def record_trace(self, trace: Iterable[int]) -> None:
        """Record every access of a trace."""
        for address in trace:
            self.record(int(address))

    def histogram(self, max_distance: int | None = None) -> np.ndarray:
        """Dense stack-distance histogram up to ``max_distance`` (inclusive)."""
        if not self._histogram:
            return np.zeros(0 if max_distance is None else max_distance + 1)
        top = max(self._histogram)
        limit = top if max_distance is None else max_distance
        dense = np.zeros(limit + 1, dtype=float)
        for distance, count in self._histogram.items():
            if distance <= limit:
                dense[distance] += count
        return dense

    def miss_curve(self, sizes: Sequence[float] | None = None) -> MissCurve:
        """The LRU miss curve implied by the recorded distances.

        Misses are absolute counts over the recorded accesses; divide by
        instructions (or use :meth:`MissCurve.scaled`) for MPKI.
        """
        dense = self.histogram()
        beyond = 0
        if sizes is not None and len(dense):
            # Counts beyond the largest requested size still contribute to
            # the miss totals at the requested sizes via cold_misses below,
            # handled by from_stack_distances clamping.
            beyond = 0
        return MissCurve.from_stack_distances(
            dense, cold_misses=self.cold_misses + beyond, sizes=sizes)


class IncrementalStackMonitor:
    """Stateful chunked stack-distance monitor (native state, resumable).

    The incremental counterpart of :func:`stack_distance_histogram`: feed
    the trace in chunks with :meth:`record_trace`, read the histogram at
    any chunk boundary — total work is O(n log n) over the whole stream
    regardless of how often the histogram is read, where the one-shot
    batch path would re-replay everything per read.  Histograms are
    bit-identical to both other paths (enforced by
    ``tests/test_monitors.py``).

    Parameters
    ----------
    capacity_hint:
        Expected total accesses; purely a performance knob (state grows
        geometrically on demand).
    """

    def __init__(self, capacity_hint: int = 1 << 12):
        self._kernel = get_kernel()
        self.accesses = 0
        if self._kernel is None:
            self._online = StackDistanceMonitor(
                capacity_hint=max(1024, capacity_hint))
            return
        self._online = None
        cap = max(64, int(capacity_hint))
        self._tree = np.zeros(cap + 1, dtype=np.int64)
        self._hist = np.zeros(cap + 1, dtype=np.int64)
        tsize = 64
        while tsize < 2 * cap:
            tsize <<= 1
        self._tab_tags = np.zeros(tsize, dtype=np.int64)
        self._tab_vals = np.full(tsize, -1, dtype=np.int64)
        self._pos = np.zeros(1, dtype=np.int64)
        self._live = np.zeros(1, dtype=np.int64)
        self._cold = np.zeros(1, dtype=np.int64)

    @property
    def _cap(self) -> int:
        return int(self._tree.size - 1)

    @property
    def cold_misses(self) -> int:
        """Accesses that never hit at any finite capacity so far."""
        if self._online is not None:
            return self._online.cold_misses
        return int(self._cold[0])

    # -- growth ---------------------------------------------------------- #
    def _ensure_room(self, n: int) -> None:
        """Grow/compact state so one chunk of ``n`` accesses fits."""
        live = int(self._live[0])
        tsize = int(self._tab_tags.size)
        if 2 * (live + n) > tsize:
            new_size = tsize
            while 2 * (live + n) > new_size:
                new_size <<= 1
            new_tags = np.zeros(new_size, dtype=np.int64)
            new_vals = np.full(new_size, -1, dtype=np.int64)
            self._kernel.stack_state_rehash(self._tab_tags, self._tab_vals,
                                            new_tags, new_vals)
            self._tab_tags, self._tab_vals = new_tags, new_vals
        if int(self._pos[0]) + n <= self._cap:
            return
        # Compact positions: relabel live markers 0..live-1 in order.  The
        # relative order of live markers is all the distance computation
        # reads, so this is invisible in the histograms.
        occupied = self._tab_vals >= 0
        vals = self._tab_vals[occupied]
        ranks = np.empty(vals.size, dtype=np.int64)
        ranks[np.argsort(vals, kind="stable")] = np.arange(
            vals.size, dtype=np.int64)
        self._tab_vals[occupied] = ranks
        live = int(vals.size)
        cap = self._cap
        if live + 4 * n > cap:
            # Grow with headroom: a tight fit would force an O(cap) tree
            # rebuild on every subsequent chunk of an interval-sized feed.
            while live + 4 * n > cap:
                cap *= 2
            old_hist = self._hist
            self._hist = np.zeros(cap + 1, dtype=np.int64)
            self._hist[:old_hist.size] = old_hist
            self._tree = np.zeros(cap + 1, dtype=np.int64)
        # Fenwick tree of one live marker at each position 0..live-1.
        idx = np.arange(1, cap + 1, dtype=np.int64)
        low = idx & (-idx)
        self._tree[0] = 0
        self._tree[1:] = (np.minimum(idx, live)
                          - np.minimum(idx - low, live))
        self._pos[0] = live

    # -- recording ------------------------------------------------------- #
    def record_trace(self, trace: Iterable[int]) -> None:
        """Record every access of a chunk (one native-kernel call)."""
        addrs = np.ascontiguousarray(np.asarray(
            trace if isinstance(trace, np.ndarray)
            else np.fromiter((int(a) for a in trace), dtype=np.int64),
            dtype=np.int64))
        if addrs.ndim != 1:
            raise ValueError("trace must be one-dimensional")
        n = int(addrs.size)
        if n == 0:
            return
        self.accesses += n
        if self._online is not None:
            self._online.record_trace(addrs)
            return
        self._ensure_room(n)
        result = self._kernel.stack_hist_chunk(
            addrs, self._tab_tags, self._tab_vals, self._tree,
            self._pos, self._live, self._cold, self._hist)
        if result != 0:
            raise RuntimeError(
                f"incremental stack-distance kernel rejected a chunk "
                f"(code {result}); state sizing bug")

    def record(self, address: int) -> None:
        """Record one access (wraps it as a one-element chunk)."""
        self.record_trace(np.asarray([int(address)], dtype=np.int64))

    # -- reading --------------------------------------------------------- #
    def histogram(self) -> np.ndarray:
        """Dense stack-distance histogram (trailing zeros trimmed)."""
        if self._online is not None:
            return self._online.histogram()
        nonzero = np.nonzero(self._hist)[0]
        top = int(nonzero[-1]) + 1 if nonzero.size else 0
        return self._hist[:top].astype(float)

    def miss_curve(self, sizes: Sequence[float] | None = None) -> MissCurve:
        """The LRU miss curve implied by the recorded distances."""
        return MissCurve.from_stack_distances(
            self.histogram(), cold_misses=self.cold_misses, sizes=sizes)


def stack_distance_histogram(trace: Sequence[int]) -> tuple[np.ndarray, int]:
    """One-shot stack-distance histogram of a trace.

    Returns ``(histogram, cold_misses)``.  Runs the native
    ``stack_hist_run`` kernel when available (bit-identical to the online
    monitor, enforced by ``tests/test_monitors.py``), the
    :class:`StackDistanceMonitor` otherwise.
    """
    addrs = np.ascontiguousarray(np.asarray(trace, dtype=np.int64))
    if addrs.ndim != 1:
        raise ValueError("trace must be one-dimensional")
    n = int(addrs.size)
    if n == 0:
        return np.zeros(0), 0
    kernel = get_kernel()
    if kernel is not None:
        hist = np.zeros(n, dtype=np.int64)
        cold = kernel.stack_hist_run(addrs, hist)
        if cold >= 0:    # -1 == scratch allocation failed; fall back
            nonzero = np.nonzero(hist)[0]
            top = int(nonzero[-1]) + 1 if nonzero.size else 0
            return hist[:top].astype(float), int(cold)
    monitor = StackDistanceMonitor(capacity_hint=max(1024, n))
    monitor.record_trace(addrs)
    return monitor.histogram(), monitor.cold_misses


def lru_miss_curve(trace: Sequence[int],
                   sizes: Sequence[float] | None = None) -> MissCurve:
    """Exact LRU miss curve (fully associative) of a trace in one pass."""
    dense, cold = stack_distance_histogram(trace)
    return MissCurve.from_stack_distances(dense, cold_misses=cold,
                                          sizes=sizes)
