"""Miss-curve drift detection for the online controller.

The streaming controller (:mod:`repro.sim.controller`) needs a scalar
signal that says "this application's miss curve is changing" so it can
shorten its replanning interval during phase changes and lengthen it when
the workload is stable.  :func:`curve_drift` compares two miss-curve
snapshots on the union of their sample grids and returns the normalised
mean absolute difference; :class:`CurveDriftTracker` keeps the previous
snapshot per stream and turns successive snapshots into drift scores.

The score is deliberately simple and fully deterministic: it is a pure
function of the two curves, so native and pure-Python monitor paths that
produce identical curves produce identical drift (pinned by the monitor
parity tests).
"""

from __future__ import annotations

import numpy as np

from ..core.misscurve import MissCurve

__all__ = ["curve_drift", "CurveDriftTracker"]


def curve_drift(previous: MissCurve, current: MissCurve) -> float:
    """Normalised distance between two miss-curve snapshots.

    Both curves are evaluated on the union of their sample grids; the
    score is the mean absolute difference divided by the larger curve's
    maximum value (0 when both curves are identically zero).  The result
    is in ``[0, 1]`` for curves whose values share a scale: 0 means "the
    curve did not move", 1 means "the curve moved by its own full height
    on average".
    """
    grid = np.union1d(previous.sizes, current.sizes)
    prev = np.asarray([float(previous(s)) for s in grid])
    curr = np.asarray([float(current(s)) for s in grid])
    scale = max(float(prev.max(initial=0.0)), float(curr.max(initial=0.0)))
    if scale <= 0.0:
        return 0.0
    return float(np.mean(np.abs(curr - prev)) / scale)


class CurveDriftTracker:
    """Turns a stream of miss-curve snapshots into drift scores.

    ``update(curve)`` returns the drift between ``curve`` and the
    previously seen snapshot (0.0 for the first snapshot), and remembers
    ``curve`` for the next call.  One tracker per monitored stream.
    """

    def __init__(self) -> None:
        self._previous: MissCurve | None = None
        self.last_drift: float = 0.0

    def update(self, curve: MissCurve) -> float:
        if self._previous is None:
            self.last_drift = 0.0
        else:
            self.last_drift = curve_drift(self._previous, curve)
        self._previous = curve
        return self.last_drift

    def reset(self) -> None:
        """Forget the previous snapshot (e.g. after the stream restarts)."""
        self._previous = None
        self.last_drift = 0.0
