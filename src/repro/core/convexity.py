"""Cliff detection and convexity diagnostics for miss curves.

A *performance cliff* is a region where the miss curve is flat (a plateau)
followed by a sudden drop.  Equivalently, cliffs are the non-convex regions
of the curve — the spans the convex hull bridges.  This module quantifies
them, which is useful both for reporting (e.g. "libquantum has a cliff at
32 MB") and for deciding whether Talus has any work to do at a given size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .convexhull import convex_hull, hull_segments
from .misscurve import MissCurve

__all__ = ["Cliff", "find_cliffs", "convexity_gap", "total_convexity_gap"]


@dataclass(frozen=True)
class Cliff:
    """A non-convex region of a miss curve.

    The region spans ``(start_size, end_size)``: the two hull vertices whose
    connecting hull segment lies strictly below the original curve somewhere
    in between.  ``drop`` is the miss reduction across the region and
    ``max_gap`` the largest vertical distance between curve and hull inside
    it (how much performance the cliff wastes at the worst point).
    """

    start_size: float
    end_size: float
    start_misses: float
    end_misses: float
    max_gap: float
    max_gap_size: float

    @property
    def span(self) -> float:
        """Width of the non-convex region along the size axis."""
        return self.end_size - self.start_size

    @property
    def drop(self) -> float:
        """Total miss reduction from the start to the end of the region."""
        return self.start_misses - self.end_misses


def convexity_gap(curve: MissCurve, size: float) -> float:
    """Vertical distance between the curve and its convex hull at ``size``.

    Zero wherever the curve is already convex; positive inside cliffs.  This
    is exactly the miss reduction Talus's analytic model promises at that
    size (before the safety margin).
    """
    hull = convex_hull(curve)
    return float(curve(size)) - float(hull(size))


def total_convexity_gap(curve: MissCurve) -> float:
    """Integral of the curve-minus-hull gap over the measured size range.

    A scalar summary of "how non-convex" a curve is; zero iff the curve is
    convex.  Uses the trapezoid rule over the union of curve and hull sample
    points.
    """
    hull = convex_hull(curve)
    sizes = np.union1d(curve.sizes, hull.sizes)
    gap = curve(sizes) - hull(sizes)
    gap = np.maximum(gap, 0.0)
    return float(np.trapezoid(gap, sizes))


def find_cliffs(curve: MissCurve,
                min_gap: float = 1e-9) -> List[Cliff]:
    """Identify the non-convex regions (cliffs) of a miss curve.

    Parameters
    ----------
    curve:
        The miss curve to analyze.
    min_gap:
        Regions whose maximum curve-to-hull gap is below this threshold are
        ignored (filters numerical noise).

    Returns
    -------
    list of Cliff
        One entry per hull segment under which the original curve rises
        above the hull by more than ``min_gap``, ordered by size.
    """
    cliffs: List[Cliff] = []
    for seg in hull_segments(curve):
        inside = (curve.sizes > seg.start_size) & (curve.sizes < seg.end_size)
        sizes_inside = curve.sizes[inside]
        if sizes_inside.size == 0:
            continue
        hull_vals = np.array([seg.interpolate(s) for s in sizes_inside])
        gaps = curve.misses[inside] - hull_vals
        max_idx = int(np.argmax(gaps))
        max_gap = float(gaps[max_idx])
        if max_gap <= min_gap:
            continue
        cliffs.append(Cliff(
            start_size=seg.start_size,
            end_size=seg.end_size,
            start_misses=seg.start_misses,
            end_misses=seg.end_misses,
            max_gap=max_gap,
            max_gap_size=float(sizes_inside[max_idx]),
        ))
    return cliffs
