"""Lower convex hulls of miss curves.

Talus traces the *convex hull* of the underlying policy's miss curve
(Theorem 6 of the paper).  The hull of a miss curve is the smallest convex
curve lying on or below it — "the curve produced by stretching a taut rubber
band across the curve from below."

The paper computes hulls with the three-coins algorithm; here we use the
equivalent monotone-chain (Andrew) lower-hull scan, which is also a single
linear pass over the size-sorted points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .misscurve import MissCurve

__all__ = [
    "lower_convex_hull_points",
    "convex_hull",
    "hull_neighbors",
    "is_convex",
    "HullSegment",
    "hull_segments",
]


def _cross(o: Tuple[float, float], a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Z component of the cross product of vectors OA and OB."""
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def lower_convex_hull_points(points: Sequence[Tuple[float, float]],
                             tolerance: float = 0.0,
                             ) -> List[Tuple[float, float]]:
    """Return the lower convex hull of ``(x, y)`` points sorted by ``x``.

    The input must be sorted by strictly increasing ``x``.  The output is the
    subset of input points that lie on the lower hull, in increasing ``x``
    order, always including the first and last point.

    Parameters
    ----------
    points:
        ``(x, y)`` pairs with strictly increasing ``x``.
    tolerance:
        Points within ``tolerance`` of a hull edge (by cross-product measure)
        are dropped from the hull, which removes collinear points.  With the
        default ``0.0``, exactly-collinear interior points are removed but
        any point strictly below the chord is kept.
    """
    pts = list(points)
    if len(pts) < 2:
        return list(pts)
    xs = [p[0] for p in pts]
    if any(x2 <= x1 for x1, x2 in zip(xs, xs[1:])):
        raise ValueError("points must have strictly increasing x")
    hull: List[Tuple[float, float]] = []
    for p in pts:
        # Keep turning clockwise (cross <= 0 would mean the middle point is
        # above or on the chord for a lower hull).
        while len(hull) >= 2 and _cross(hull[-2], hull[-1], p) <= tolerance:
            hull.pop()
        hull.append(p)
    return hull


def convex_hull(curve: MissCurve, tolerance: float = 0.0) -> MissCurve:
    """Return the lower convex hull of a miss curve as a new :class:`MissCurve`.

    The hull is sampled only at its vertex points (the sizes where the
    original curve and the hull coincide); since :class:`MissCurve`
    interpolates linearly, evaluating the returned curve at any size yields
    the hull value there.
    """
    hull_pts = lower_convex_hull_points(curve.points(), tolerance=tolerance)
    return MissCurve.from_points(hull_pts)


def hull_neighbors(curve: MissCurve, size: float) -> Tuple[float, float]:
    """Return hull vertices ``(alpha, beta)`` bracketing ``size``.

    ``alpha`` is the largest hull-vertex size that is ``<= size`` and ``beta``
    is the smallest hull-vertex size that is ``> size`` (Theorem 6).  If
    ``size`` is at or beyond the last hull vertex, both are that last vertex
    — the degenerate case where no interpolation is needed.

    Raises
    ------
    ValueError
        If ``size`` is below the curve's smallest sampled size.
    """
    if size < curve.min_size:
        raise ValueError(
            f"size {size} below curve's smallest sample {curve.min_size}")
    hull = convex_hull(curve)
    vertices = hull.sizes
    if size >= vertices[-1]:
        return float(vertices[-1]), float(vertices[-1])
    alpha = float(vertices[vertices <= size][-1])
    beta = float(vertices[vertices > size][0])
    return alpha, beta


def is_convex(curve: MissCurve, tolerance: float = 1e-9) -> bool:
    """Whether a miss curve is convex (slopes non-decreasing), within tolerance.

    Tolerance is relative to the curve's miss-value range, so it is unit
    independent.
    """
    if len(curve) < 3:
        return True
    scale = max(float(curve.misses.max() - curve.misses.min()), 1.0)
    dx = np.diff(curve.sizes)
    dy = np.diff(curve.misses)
    slopes = dy / dx
    return bool(np.all(np.diff(slopes) >= -tolerance * scale))


@dataclass(frozen=True)
class HullSegment:
    """One linear segment of a convex hull.

    Attributes
    ----------
    start_size, end_size:
        Sizes of the two hull vertices the segment connects.
    start_misses, end_misses:
        Miss values at those vertices.
    """

    start_size: float
    end_size: float
    start_misses: float
    end_misses: float

    @property
    def slope(self) -> float:
        """Miss reduction per unit of size along this segment (usually <= 0)."""
        return (self.end_misses - self.start_misses) / (self.end_size - self.start_size)

    @property
    def span(self) -> float:
        """Length of the segment along the size axis."""
        return self.end_size - self.start_size

    def contains(self, size: float) -> bool:
        """Whether ``size`` falls within this segment (inclusive)."""
        return self.start_size <= size <= self.end_size

    def interpolate(self, size: float) -> float:
        """Hull miss value at ``size`` (must lie within the segment)."""
        if not self.contains(size):
            raise ValueError(f"size {size} outside segment "
                             f"[{self.start_size}, {self.end_size}]")
        return self.start_misses + self.slope * (size - self.start_size)


def hull_segments(curve: MissCurve) -> List[HullSegment]:
    """Return the convex hull of ``curve`` as a list of linear segments."""
    hull = convex_hull(curve)
    segments = []
    for i in range(len(hull) - 1):
        segments.append(HullSegment(
            start_size=float(hull.sizes[i]),
            end_size=float(hull.sizes[i + 1]),
            start_misses=float(hull.misses[i]),
            end_misses=float(hull.misses[i + 1]),
        ))
    return segments
