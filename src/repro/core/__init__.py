"""Core Talus machinery: miss curves, convex hulls, and shadow-partition planning.

This subpackage contains the paper's primary analytical contribution
(Sections III–V): everything needed to go from a measured miss curve to a
Talus shadow-partition configuration, plus the bypassing comparison and
cliff diagnostics.
"""

from .bypass import BypassChoice, bypass_miss_value, optimal_bypass, optimal_bypass_curve
from .convexhull import (HullSegment, convex_hull, hull_neighbors,
                         hull_segments, is_convex, lower_convex_hull_points)
from .convexity import Cliff, convexity_gap, find_cliffs, total_convexity_gap
from .misscurve import MissCurve
from .sampling import (emulated_size, sampled_miss_curve, sampled_miss_value,
                       shadow_miss_rate)
from .atomicio import atomic_write_bytes, atomic_write_json, atomic_write_text
from .talus import (DEFAULT_SAFETY_MARGIN, TalusConfig, convexified_curve,
                    plan_shadow_partitions, predicted_miss, talus_miss_curve)

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "MissCurve",
    "convex_hull",
    "lower_convex_hull_points",
    "hull_neighbors",
    "hull_segments",
    "is_convex",
    "HullSegment",
    "Cliff",
    "find_cliffs",
    "convexity_gap",
    "total_convexity_gap",
    "sampled_miss_value",
    "sampled_miss_curve",
    "shadow_miss_rate",
    "emulated_size",
    "TalusConfig",
    "plan_shadow_partitions",
    "predicted_miss",
    "talus_miss_curve",
    "convexified_curve",
    "DEFAULT_SAFETY_MARGIN",
    "BypassChoice",
    "bypass_miss_value",
    "optimal_bypass",
    "optimal_bypass_curve",
]
