"""Atomic file writes for every persistent result artifact.

JSON result banks (:meth:`repro.sim.mixsweep.MixSweepResult.save_json`,
the benchmark timing banks, the job runtime's :class:`~repro.jobs.bank.
ResultBank`) are written by long-running sweeps that can be interrupted at
any moment — a ``KeyboardInterrupt``, an OOM-killed worker, a CI timeout.
A plain ``write_text`` interrupted mid-call leaves a torn file that later
readers crash on; these helpers write through a temporary file in the
*same directory* followed by :func:`os.replace`, which POSIX (and Windows,
for same-volume renames) guarantees to be atomic: readers observe either
the complete old contents or the complete new contents, never a prefix.

``fsync`` before the rename makes the contents durable against power loss
as well as process death; it costs one syscall per write and is on by
default because every caller here writes results worth keeping.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_text", "atomic_write_bytes", "atomic_write_json"]


def atomic_write_bytes(path: str | os.PathLike, data: bytes,
                       fsync: bool = True) -> Path:
    """Atomically replace ``path``'s contents with ``data``.

    The temporary file lives next to the target (``os.replace`` must not
    cross filesystems) and is cleaned up if the write itself fails, so an
    interrupted call leaves the target untouched.  Parent directories are
    created as needed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                    prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: str | os.PathLike, text: str,
                      fsync: bool = True) -> Path:
    """Atomically replace ``path``'s contents with ``text`` (UTF-8)."""
    return atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


def atomic_write_json(path: str | os.PathLike, payload,
                      indent: int | None = 2, sort_keys: bool = True,
                      fsync: bool = True) -> Path:
    """Atomically serialize ``payload`` as JSON to ``path``.

    The serialization happens *before* the file is touched, so a payload
    that is not JSON-able leaves the existing file intact.
    """
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    return atomic_write_text(path, text, fsync=fsync)
