"""Miss curves: the central data structure of Talus.

A *miss curve* ``m(s)`` gives the miss rate of a replacement policy on a
fixed access stream as a function of the cache capacity ``s``.  Talus
(Beckmann & Sanchez, HPCA 2015) operates exclusively on miss curves: it
never inspects individual lines, only the curve.

This module provides :class:`MissCurve`, a sampled miss curve with linear
interpolation between sample points, plus constructors from stack-distance
histograms and from raw (size, misses) tables.

Units
-----
Sizes are unit-agnostic non-negative floats.  Throughout the repository we
use *cache lines* for simulated experiments and *paper-equivalent megabytes*
for analytic experiments; :class:`MissCurve` does not care, as Talus's math
is scale invariant.  Miss values are also unit-agnostic: misses-per-access
(a rate in ``[0, 1]``), misses-per-kilo-instruction (MPKI), or absolute miss
counts all work, because Talus only ever takes convex combinations of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = ["MissCurve"]


def _as_float_array(values: Iterable[float], name: str) -> np.ndarray:
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                     dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    return arr


@dataclass(frozen=True)
class MissCurve:
    """A sampled miss curve with linear interpolation.

    Parameters
    ----------
    sizes:
        Strictly increasing, non-negative cache sizes at which the curve is
        sampled.  The first size is usually ``0`` (the compulsory/always-miss
        point); if it is not, evaluation below the first sample clamps to the
        first sample value.
    misses:
        Miss values at each size.  Values must be non-negative.  Most curves
        are non-increasing, but :class:`MissCurve` does not require it (some
        empirical policies exhibit small non-monotonicities); helpers that do
        require monotone input state so explicitly.
    """

    sizes: np.ndarray
    misses: np.ndarray

    def __init__(self, sizes: Iterable[float], misses: Iterable[float]):
        sizes_arr = _as_float_array(sizes, "sizes")
        misses_arr = _as_float_array(misses, "misses")
        if sizes_arr.shape != misses_arr.shape:
            raise ValueError(
                f"sizes and misses must have the same length "
                f"({sizes_arr.size} != {misses_arr.size})")
        if np.any(sizes_arr < 0):
            raise ValueError("sizes must be non-negative")
        if np.any(np.diff(sizes_arr) <= 0):
            raise ValueError("sizes must be strictly increasing")
        if np.any(misses_arr < 0):
            raise ValueError("misses must be non-negative")
        object.__setattr__(self, "sizes", sizes_arr)
        object.__setattr__(self, "misses", misses_arr)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_points(cls, points: Sequence[Tuple[float, float]]) -> "MissCurve":
        """Build a curve from an iterable of ``(size, misses)`` pairs.

        Points are sorted by size; duplicate sizes are an error.
        """
        pts = sorted(points, key=lambda p: p[0])
        if not pts:
            raise ValueError("points must not be empty")
        sizes = [p[0] for p in pts]
        misses = [p[1] for p in pts]
        return cls(sizes, misses)

    @classmethod
    def from_stack_distances(cls,
                             histogram: Sequence[float],
                             cold_misses: float = 0.0,
                             sizes: Sequence[float] | None = None,
                             ) -> "MissCurve":
        """Build an LRU miss curve from a stack-distance histogram.

        ``histogram[d]`` counts accesses with LRU stack distance ``d`` (i.e.
        hits in a cache of at least ``d + 1`` lines).  ``cold_misses`` counts
        accesses with infinite distance (compulsory misses).  The resulting
        curve gives, at each capacity ``c`` (in lines), the number of misses
        an LRU cache of that capacity would incur — the Mattson construction.

        Parameters
        ----------
        histogram:
            Stack-distance counts, index = distance.
        cold_misses:
            Number of accesses that never hit at any finite capacity.
        sizes:
            Optional capacities (in lines) at which to sample the curve.
            Defaults to ``0..len(histogram)`` (every line count).
        """
        hist = np.asarray(histogram, dtype=float)
        if hist.ndim != 1:
            raise ValueError("histogram must be one-dimensional")
        if np.any(hist < 0) or cold_misses < 0:
            raise ValueError("histogram counts must be non-negative")
        total = float(hist.sum() + cold_misses)
        # misses(c) = accesses with distance >= c  (plus cold misses)
        # cumulative hits at capacity c = sum(hist[:c])
        cum_hits = np.concatenate(([0.0], np.cumsum(hist)))
        full_sizes = np.arange(len(hist) + 1, dtype=float)
        full_misses = total - cum_hits
        if sizes is None:
            return cls(full_sizes, full_misses)
        sizes = np.asarray(list(sizes), dtype=float)
        sampled = np.interp(sizes, full_sizes, full_misses,
                            left=full_misses[0], right=full_misses[-1])
        return cls(sizes, sampled)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def __call__(self, size: float | np.ndarray) -> float | np.ndarray:
        """Evaluate the curve at ``size`` via linear interpolation.

        Sizes below the first sample clamp to the first value; sizes above
        the last sample clamp to the last value (the curve is assumed flat
        beyond its measured range).
        """
        result = np.interp(size, self.sizes, self.misses,
                           left=self.misses[0], right=self.misses[-1])
        if np.isscalar(size):
            return float(result)
        return result

    def __len__(self) -> int:
        return int(self.sizes.size)

    def __iter__(self):
        return iter(zip(self.sizes.tolist(), self.misses.tolist()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MissCurve):
            return NotImplemented
        return (self.sizes.shape == other.sizes.shape
                and np.allclose(self.sizes, other.sizes)
                and np.allclose(self.misses, other.misses))

    def __hash__(self) -> int:  # frozen dataclass with arrays: hash by bytes
        return hash((self.sizes.tobytes(), self.misses.tobytes()))

    def __repr__(self) -> str:
        return (f"MissCurve({len(self)} points, "
                f"sizes [{self.sizes[0]:g}, {self.sizes[-1]:g}], "
                f"misses [{self.misses.min():g}, {self.misses.max():g}])")

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def max_size(self) -> float:
        """Largest sampled size."""
        return float(self.sizes[-1])

    @property
    def min_size(self) -> float:
        """Smallest sampled size."""
        return float(self.sizes[0])

    def points(self) -> list[Tuple[float, float]]:
        """Return the curve as a list of ``(size, misses)`` pairs."""
        return list(zip(self.sizes.tolist(), self.misses.tolist()))

    def is_monotone(self, tolerance: float = 1e-9) -> bool:
        """Whether misses never increase with size (within ``tolerance``)."""
        return bool(np.all(np.diff(self.misses) <= tolerance))

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def scaled(self, size_factor: float = 1.0, miss_factor: float = 1.0) -> "MissCurve":
        """Return a curve with sizes and/or misses multiplied by constants.

        Useful to convert units, e.g. from lines to bytes (``size_factor=64``)
        or from miss counts to MPKI (``miss_factor=1000/instructions``).
        """
        if size_factor <= 0:
            raise ValueError("size_factor must be positive")
        if miss_factor < 0:
            raise ValueError("miss_factor must be non-negative")
        return MissCurve(self.sizes * size_factor, self.misses * miss_factor)

    def resampled(self, sizes: Sequence[float]) -> "MissCurve":
        """Return the curve resampled (by interpolation) at the given sizes."""
        sizes_arr = _as_float_array(sizes, "sizes")
        return MissCurve(sizes_arr, self(sizes_arr))

    def restricted(self, max_size: float) -> "MissCurve":
        """Return the curve truncated to sizes ``<= max_size``.

        The point at exactly ``max_size`` is included (interpolated if it is
        not a sample point), so the restricted curve still covers the
        capacity of interest.
        """
        if max_size < self.min_size:
            raise ValueError(
                f"max_size {max_size} below smallest sample {self.min_size}")
        keep = self.sizes <= max_size
        sizes = self.sizes[keep]
        misses = self.misses[keep]
        if sizes[-1] < max_size:
            sizes = np.append(sizes, max_size)
            misses = np.append(misses, self(max_size))
        return MissCurve(sizes, misses)

    def monotone_envelope(self) -> "MissCurve":
        """Return the tightest non-increasing curve that lower-bounds misses.

        Running minimum from the left: enforces the intuition that a bigger
        cache never hurts.  Used to clean up noisy measured curves before
        convex-hull computation.
        """
        return MissCurve(self.sizes, np.minimum.accumulate(self.misses))

    def shifted(self, delta_misses: float) -> "MissCurve":
        """Return a curve with a constant added to all miss values."""
        shifted = self.misses + delta_misses
        if np.any(shifted < 0):
            raise ValueError("shift would make miss values negative")
        return MissCurve(self.sizes, shifted)

    def __add__(self, other: "MissCurve") -> "MissCurve":
        """Pointwise sum of two curves over the union of their sample sizes.

        Models the aggregate misses of two independent streams sharing a
        statically split cache where each keeps its own curve.
        """
        if not isinstance(other, MissCurve):
            return NotImplemented
        sizes = np.union1d(self.sizes, other.sizes)
        return MissCurve(sizes, self(sizes) + other(sizes))
