"""Talus shadow-partition planning (Sections III, IV and VI of the paper).

Given the miss curve ``m`` of the underlying replacement policy and a target
capacity ``s``, Talus divides the cache into two shadow partitions:

* the **alpha** partition, of size ``s1 = rho * alpha``, which receives a
  fraction ``rho`` of accesses and therefore behaves like a cache of size
  ``alpha`` (Theorem 4), and
* the **beta** partition, of size ``s2 = s - s1``, which receives the
  remaining ``1 - rho`` of accesses and behaves like a cache of size ``beta``.

``alpha`` and ``beta`` are the convex-hull vertices bracketing ``s``, and

    rho = (beta - s) / (beta - alpha)                            (Eq. 4)

With this choice the combined miss rate linearly interpolates between
``m(alpha)`` and ``m(beta)`` (Lemma 5), i.e. the cache traces the convex hull
of ``m`` (Theorem 6).

The implementation details of Sec. VI are also provided: a configurable
safety margin on ``rho`` (the paper uses 5 %), and the way-partitioning
correction that recomputes ``rho`` from coarsened partition sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .convexhull import convex_hull, hull_neighbors
from .misscurve import MissCurve
from .sampling import shadow_miss_rate

__all__ = [
    "TalusConfig",
    "plan_shadow_partitions",
    "talus_miss_curve",
    "predicted_miss",
    "DEFAULT_SAFETY_MARGIN",
]

#: Safety margin applied to the sampling rate, as used by the paper's
#: implementation (Sec. VI-B): "an increase of 5% ensures convexity with
#: little loss in performance."
DEFAULT_SAFETY_MARGIN = 0.05


@dataclass(frozen=True)
class TalusConfig:
    """A complete Talus shadow-partition configuration for one logical partition.

    Attributes
    ----------
    total_size:
        Capacity of the logical (software-visible) partition.
    alpha, beta:
        Hull-vertex sizes the two shadow partitions emulate
        (``alpha <= total_size <= beta``).
    rho:
        Fraction of accesses sampled into the alpha shadow partition.
    s1, s2:
        Shadow partition capacities (``s1 + s2 == total_size``).
    degenerate:
        True when no interpolation is needed (``total_size`` is itself a hull
        vertex, or lies at/beyond the last measured point).  In that case the
        whole capacity goes to a single partition and ``rho`` is 0.
    """

    total_size: float
    alpha: float
    beta: float
    rho: float
    s1: float
    s2: float
    degenerate: bool = False

    def __post_init__(self):
        if self.total_size < 0:
            raise ValueError("total_size must be non-negative")
        if not 0.0 <= self.rho <= 1.0:
            raise ValueError(f"rho must be in [0, 1], got {self.rho}")
        if self.s1 < -1e-9 or self.s2 < -1e-9:
            raise ValueError(f"negative shadow partition size "
                             f"(s1={self.s1}, s2={self.s2})")
        if abs((self.s1 + self.s2) - self.total_size) > 1e-6 * max(self.total_size, 1.0):
            raise ValueError("shadow partition sizes must sum to total_size")

    @property
    def beta_sampling_rate(self) -> float:
        """Fraction of accesses sent to the beta shadow partition."""
        return 1.0 - self.rho

    def emulated_sizes(self) -> tuple[float, float]:
        """The cache sizes each shadow partition emulates, ``(s1/rho, s2/(1-rho))``."""
        alpha_emu = self.s1 / self.rho if self.rho > 0 else 0.0
        beta_emu = self.s2 / (1.0 - self.rho) if self.rho < 1 else 0.0
        return alpha_emu, beta_emu


def plan_shadow_partitions(curve: MissCurve,
                           total_size: float,
                           safety_margin: float = 0.0,
                           ) -> TalusConfig:
    """Choose ``alpha``, ``beta``, ``rho``, ``s1`` and ``s2`` for a capacity.

    This is the Theorem 6 construction: pick the convex-hull vertices
    bracketing ``total_size`` and interpolate.

    Parameters
    ----------
    curve:
        Miss curve of the underlying replacement policy for this partition's
        access stream.
    total_size:
        The logical partition's capacity, in the same units as ``curve``.
    safety_margin:
        Fractional adjustment of ``rho`` (Sec. VI-B).  Increasing ``rho`` by
        ``X`` effectively decreases ``alpha`` and increases ``beta`` by ``X``,
        building slack against interval-to-interval variation.  The paper
        uses 0.05 in hardware; the analytic default here is 0 (exact hull).

    Returns
    -------
    TalusConfig
        The shadow-partition configuration.  When ``total_size`` coincides
        with a hull vertex (or exceeds the measured range), the config is
        degenerate: all capacity in the beta partition, ``rho == 0``.
    """
    if total_size < curve.min_size:
        raise ValueError(
            f"total_size {total_size} below curve's smallest sample "
            f"{curve.min_size}")
    if safety_margin < 0 or safety_margin >= 1:
        raise ValueError("safety_margin must be in [0, 1)")

    alpha, beta = hull_neighbors(curve, total_size)

    scale = max(abs(total_size), 1.0)
    if beta <= alpha or total_size >= beta or abs(total_size - alpha) <= 1e-12 * scale:
        # Degenerate: at a hull vertex or beyond the measured curve.  A
        # single partition of the full size already achieves hull performance.
        return TalusConfig(total_size=total_size, alpha=total_size,
                           beta=total_size, rho=0.0, s1=0.0,
                           s2=total_size, degenerate=True)

    # If interpolating between the hull vertices does not actually improve on
    # the curve's own value at this size (e.g. the hull segment is flat, as
    # happens just past a cliff), use the degenerate single-partition
    # configuration: it achieves the same miss rate without exposing a
    # shadow partition to a knife-edge emulated size where sampling noise
    # could push it back up the cliff.
    weight = (beta - total_size) / (beta - alpha)
    interpolated = weight * float(curve(alpha)) + (1 - weight) * float(curve(beta))
    span = max(abs(float(curve(curve.min_size)) - float(curve(curve.max_size))),
               1e-12)
    if interpolated >= float(curve(total_size)) - 1e-6 * span:
        return TalusConfig(total_size=total_size, alpha=total_size,
                           beta=total_size, rho=0.0, s1=0.0,
                           s2=total_size, degenerate=True)

    rho = (beta - total_size) / (beta - alpha)
    if safety_margin:
        rho = min(1.0, rho * (1.0 + safety_margin))
    s1 = rho * alpha
    # Clamp in case the safety margin pushed s1 past the total capacity.
    s1 = min(s1, total_size)
    s2 = total_size - s1
    return TalusConfig(total_size=total_size, alpha=alpha, beta=beta,
                       rho=rho, s1=s1, s2=s2, degenerate=False)


def predicted_miss(curve: MissCurve, config: TalusConfig) -> float:
    """Analytic miss value of a Talus configuration (Eq. 2 / Eq. 5)."""
    if config.degenerate:
        return float(curve(config.total_size))
    return shadow_miss_rate(curve, config.total_size, config.s1, config.rho)


def talus_miss_curve(curve: MissCurve,
                     sizes: np.ndarray | None = None,
                     safety_margin: float = 0.0) -> MissCurve:
    """Return the miss curve Talus achieves on top of ``curve``.

    With a zero safety margin this is exactly the lower convex hull of
    ``curve`` (Theorem 6); with a nonzero margin it lies slightly above the
    hull inside non-convex regions.  Talus's software pre-processing step
    hands the *hull* to the partitioning algorithm, so the hull is what the
    system plans with; this function reports what the shadow-partitioned
    cache is predicted to achieve.

    Parameters
    ----------
    curve:
        Underlying policy's miss curve.
    sizes:
        Sizes at which to sample the Talus curve (default: the original
        curve's sample sizes).
    safety_margin:
        Passed through to :func:`plan_shadow_partitions`.
    """
    if sizes is None:
        sizes = curve.sizes
    sizes = np.asarray(sizes, dtype=float)
    misses = []
    for s in sizes:
        cfg = plan_shadow_partitions(curve, float(s), safety_margin=safety_margin)
        predicted = predicted_miss(curve, cfg)
        # A nonzero safety margin shifts beta below the planned hull vertex,
        # which right after a cliff can predict slightly *worse* than the
        # underlying policy.  Talus can always fall back to the degenerate
        # (single-partition) configuration, so the effective curve is capped
        # at the original policy's value.
        misses.append(min(predicted, float(curve(s))))
    return MissCurve(sizes, np.asarray(misses))


def convexified_curve(curve: MissCurve) -> MissCurve:
    """The convex hull of ``curve`` — what Talus's pre-processing step exports.

    This is the curve handed to the system's partitioning algorithm
    (Fig. 7): guaranteed convex regardless of measurement noise, and what
    Talus commits to delivering.
    """
    return convex_hull(curve)
