"""Theorem 4: miss curves of pseudo-randomly sampled access streams.

The key analytical tool of Talus is the relation between the miss curve of a
full access stream, ``m(s)``, and the miss curve of a pseudo-randomly sampled
fraction ``rho`` of that stream, ``m'(s')``:

    m'(s') = rho * m(s' / rho)                                   (Eq. 1)

Intuitively, a partition that receives a fraction ``rho`` of accesses and has
capacity ``s'`` behaves like a proportionally larger cache of size
``s' / rho`` serving the full stream — it just sees fewer of everything.

This module provides that transform, its inverse, and the two-partition
shadow miss rate of Eq. 2.
"""

from __future__ import annotations

import numpy as np

from .misscurve import MissCurve

__all__ = [
    "sampled_miss_value",
    "sampled_miss_curve",
    "shadow_miss_rate",
    "emulated_size",
]


def sampled_miss_value(curve: MissCurve, size: float, rho: float) -> float:
    """Miss value of a partition of ``size`` receiving a fraction ``rho`` of accesses.

    Implements Eq. 1: ``m'(size) = rho * m(size / rho)``.

    Parameters
    ----------
    curve:
        Full-stream miss curve ``m``.
    size:
        Capacity of the sampled partition (same units as ``curve.sizes``).
    rho:
        Fraction of the access stream sent to the partition, in ``(0, 1]``.
        ``rho == 0`` is allowed only with ``size == 0`` and returns 0 misses
        (an empty partition receiving no accesses).
    """
    if not 0.0 <= rho <= 1.0:
        raise ValueError(f"rho must be in [0, 1], got {rho}")
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    if rho == 0.0:
        if size > 0:
            raise ValueError("a partition receiving no accesses (rho=0) "
                             "must have size 0")
        return 0.0
    return rho * float(curve(size / rho))


def sampled_miss_curve(curve: MissCurve, rho: float,
                       sizes: np.ndarray | None = None) -> MissCurve:
    """Return the miss curve of a stream sampled at rate ``rho``.

    The returned curve is sampled at ``sizes`` (default: the original sample
    sizes scaled by ``rho``, which maps each original point exactly).
    """
    if not 0.0 < rho <= 1.0:
        raise ValueError(f"rho must be in (0, 1], got {rho}")
    if sizes is None:
        sizes = curve.sizes * rho
    sizes = np.asarray(sizes, dtype=float)
    misses = np.array([sampled_miss_value(curve, s, rho) for s in sizes])
    return MissCurve(sizes, misses)


def emulated_size(partition_size: float, rho: float) -> float:
    """Size of the full-stream cache a sampled partition emulates (``s'/rho``)."""
    if rho <= 0:
        raise ValueError("rho must be positive")
    return partition_size / rho


def shadow_miss_rate(curve: MissCurve, total_size: float,
                     s1: float, rho: float) -> float:
    """Miss rate of a Talus shadow-partitioned cache (Eq. 2).

    A cache of ``total_size`` is split into two shadow partitions of sizes
    ``s1`` and ``total_size - s1``; a fraction ``rho`` of accesses goes to the
    first and ``1 - rho`` to the second.  The combined miss rate is::

        m_shadow = rho * m(s1 / rho) + (1 - rho) * m((s - s1) / (1 - rho))

    Degenerate sampling rates (``rho`` of exactly 0 or 1) are handled by
    sending everything to the other partition.
    """
    if total_size < 0:
        raise ValueError("total_size must be non-negative")
    if not 0.0 <= rho <= 1.0:
        raise ValueError(f"rho must be in [0, 1], got {rho}")
    s2 = total_size - s1
    if s1 < -1e-12 or s2 < -1e-12:
        raise ValueError(
            f"partition sizes must be non-negative (s1={s1}, s2={s2})")
    s1 = max(s1, 0.0)
    s2 = max(s2, 0.0)
    first = sampled_miss_value(curve, s1, rho) if rho > 0 else 0.0
    second = sampled_miss_value(curve, s2, 1.0 - rho) if rho < 1 else 0.0
    if rho == 0.0 and s1 > 0:
        # Capacity assigned to a partition receiving no accesses is wasted,
        # not an error at this level: it simply contributes no misses and no
        # hits.  The second partition still only has s2.
        first = 0.0
    return first + second
