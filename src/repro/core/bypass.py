"""Optimal bypassing analysis (Sec. V-C and Corollary 8).

Bypassing sends a fraction ``1 - rho`` of accesses straight to memory and
caches only the remaining fraction ``rho``.  By Theorem 4 the cached fraction
behaves like a cache of size ``s / rho``, so bypassing trades guaranteed
misses on the bypassed accesses for a larger effective cache for the rest:

    m_bypass(s; rho) = rho * m(s / rho) + (1 - rho) * m(0)       (Eq. 6)

Corollary 8 shows this can never beat the convex hull of ``m`` — i.e. Talus
is always at least as good as optimal bypassing on the same policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .misscurve import MissCurve

__all__ = [
    "bypass_miss_value",
    "optimal_bypass",
    "optimal_bypass_curve",
    "BypassChoice",
]


def bypass_miss_value(curve: MissCurve, size: float, rho: float) -> float:
    """Miss value at ``size`` when caching a fraction ``rho`` of accesses.

    Implements Eq. 6.  ``rho = 1`` is "no bypassing" and returns the original
    curve's value.  ``rho = 0`` bypasses everything and returns ``m(0)``.
    """
    if not 0.0 <= rho <= 1.0:
        raise ValueError(f"rho must be in [0, 1], got {rho}")
    if size < 0:
        raise ValueError("size must be non-negative")
    m0 = float(curve(0.0))
    if rho == 0.0:
        return m0
    return rho * float(curve(size / rho)) + (1.0 - rho) * m0


@dataclass(frozen=True)
class BypassChoice:
    """Result of optimizing the bypass fraction at one cache size.

    Attributes
    ----------
    size:
        Cache capacity being optimized for.
    rho:
        Optimal fraction of accesses to cache (``1 - rho`` bypassed).
    misses:
        Miss value achieved with that fraction.
    target_size:
        The larger cache size the non-bypassed stream emulates (``size/rho``).
    """

    size: float
    rho: float
    misses: float

    @property
    def bypass_fraction(self) -> float:
        """Fraction of accesses bypassed."""
        return 1.0 - self.rho

    @property
    def target_size(self) -> float:
        """Effective cache size experienced by non-bypassed accesses."""
        return self.size / self.rho if self.rho > 0 else 0.0


def optimal_bypass(curve: MissCurve, size: float) -> BypassChoice:
    """Find the bypass fraction minimizing misses at ``size``.

    The optimum always emulates some size ``s0 = size / rho`` that is a
    sample point of the curve at or beyond ``size`` (the objective is linear
    in ``m`` between sample points), so we evaluate Eq. 6 with ``s0`` swept
    over sample points ``>= size`` plus ``size`` itself (no bypassing) and
    take the best.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    best_rho = 1.0
    best_miss = bypass_miss_value(curve, size, 1.0)
    if size > 0:
        candidate_sizes = curve.sizes[curve.sizes >= size]
        for s0 in candidate_sizes:
            rho = size / float(s0) if s0 > 0 else 1.0
            miss = bypass_miss_value(curve, size, rho)
            if miss < best_miss - 1e-12:
                best_miss = miss
                best_rho = rho
    return BypassChoice(size=float(size), rho=float(best_rho),
                        misses=float(best_miss))


def optimal_bypass_curve(curve: MissCurve,
                         sizes: np.ndarray | None = None) -> MissCurve:
    """Miss curve achieved by optimal bypassing at every size.

    By Corollary 8 this curve lies on or above the convex hull of ``curve``
    (and on or below the original curve).
    """
    if sizes is None:
        sizes = curve.sizes
    sizes = np.asarray(sizes, dtype=float)
    misses = np.array([optimal_bypass(curve, float(s)).misses for s in sizes])
    return MissCurve(sizes, misses)
