"""Zero-copy shared trace store for sweep and mix-sweep workers.

Before this module, every process-pool worker either re-pickled the full
address array through IPC (:func:`repro.sim.sweep.run_sweep`) or — worse —
regenerated its whole trace from the synthetic profile
(:func:`repro.sim.mixsweep.run_mix_sweep`).  A :class:`TraceStore`
materializes each trace exactly once and hands out lightweight, picklable
:class:`TraceHandle` objects; workers (threaded or pooled) *attach* to the
one materialized copy instead:

* ``backing="memmap"`` (default) — addresses live in a file under a
  private temporary directory; attaching maps it read-only with
  :func:`numpy.memmap`, so every process shares one page-cache copy.
* ``backing="shared_memory"`` — a :class:`multiprocessing.shared_memory.
  SharedMemory` segment per trace.  Attached segments are pinned by the
  returned trace's ``metadata``, keeping the buffer alive for the trace's
  lifetime.  (The store must outlive all attachments; pre-3.13 resource
  tracking makes cross-process attachment noisy, so memmap is the
  default.)
* ``backing="memory"`` — the handle simply carries the array (no
  sharing); pickling such a handle ships the data, which is exactly the
  pre-store behaviour and the graceful floor.

Traces are **content-addressed by (profile, seed, length)**: :meth:`get`
generates a profile's trace only on the first request of a given
``(profile.name, n_accesses, seed)`` key and returns the same handle for
every later request.  Raw arrays enter through :meth:`put`, keyed by a
digest of their bytes.

The store owns the backing storage: :meth:`close` (or exiting the context
manager) unlinks every file/segment.  Handles never unlink anything.

Abnormal-exit safety
--------------------
Backing cleanup does not rely on ``close`` being reached: every store
registers a :func:`weakref.finalize` finalizer (which the interpreter also
runs at exit, like ``atexit``) releasing its segments and files when the
store is garbage-collected or the process ends normally.  A process killed
by a signal runs no finalizers, so owned memmap directories additionally
carry an ``owner.pid`` marker and :meth:`TraceStore.gc_stale` sweeps
orphaned ``repro-traces-*`` directories whose owning process is gone —
the job runtime's ``gc`` command calls it.  Attaching a handle whose
backing has vanished raises :class:`TraceBackingError` with the likely
cause instead of a bare ``FileNotFoundError`` from deep inside numpy.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
import weakref
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .access import Trace

__all__ = ["TraceStore", "TraceHandle", "TraceBackingError",
           "TRACE_BACKINGS"]

#: Backings a :class:`TraceStore` supports ("auto" resolves to "memmap").
TRACE_BACKINGS = ("auto", "memory", "memmap", "shared_memory")

#: Prefix of the private temporary directories owned memmap backings live
#: in; :meth:`TraceStore.gc_stale` only ever touches directories matching
#: this prefix (and only with a dead or missing ``owner.pid``).
_TRACE_DIR_PREFIX = "repro-traces-"

#: Name of the owning-process marker file inside an owned backing
#: directory.
_PID_MARKER = "owner.pid"


class TraceBackingError(RuntimeError):
    """An attachment's backing storage is gone.

    Raised by :meth:`TraceHandle.attach`/:meth:`TraceHandle.array` when
    the memmap file or shared-memory segment behind a handle no longer
    exists — the owning :class:`TraceStore` was closed or garbage
    collected, the process that owned it died and a :meth:`TraceStore.
    gc_stale` sweep reclaimed the directory, or the handle outlived a
    ``with TraceStore() as store:`` block.
    """


def _backing_missing(handle: "TraceHandle",
                     truncated: bool = False) -> TraceBackingError:
    what = ("has been truncated below its recorded length"
            if truncated else "has vanished")
    return TraceBackingError(
        f"trace backing for {handle.name!r} {what} "
        f"({handle.backing} at {handle.location!r}).  The owning "
        f"TraceStore was closed, garbage-collected, or reclaimed by "
        f"TraceStore.gc_stale(); keep the store open for the lifetime of "
        f"every handle, or re-materialize the trace with store.put()/"
        f"store.get().")


def _pid_alive(pid: int) -> bool:
    """Whether a process with this pid exists (best effort)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return True
    return True


def _cleanup_backings(segments: list, directory: Path | None, own_dir: bool,
                      owned_paths: list) -> None:
    """Release a store's backing storage (finalizer-safe module function).

    Runs from :meth:`TraceStore.close`, from the ``weakref.finalize``
    finalizer when a store is garbage collected, and at interpreter exit —
    it must therefore hold no reference to the store itself and tolerate
    storage that is already gone.
    """
    for shm in segments:
        try:
            shm.close()
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass
    segments.clear()
    if directory is not None:
        if own_dir:
            shutil.rmtree(directory, ignore_errors=True)
        else:
            for path in owned_paths:
                try:
                    Path(path).unlink(missing_ok=True)
                except OSError:
                    pass
    owned_paths.clear()


@dataclass(frozen=True)
class TraceHandle:
    """A lightweight, picklable reference to one materialized trace.

    ``attach()`` (or ``array()`` for the bare addresses) is cheap and
    zero-copy for the shared backings; a handle can be attached any number
    of times, from any process, as long as the owning store is open.
    """

    key: str
    backing: str
    location: str
    length: int
    instructions: int
    name: str
    payload: Trace | None = field(default=None, repr=False)

    def array(self) -> np.ndarray:
        """The address array (read-only view for the shared backings)."""
        if self.backing == "memory":
            return self.payload.addresses
        if self.backing == "memmap":
            if self.length == 0:
                return np.zeros(0, dtype=np.int64)
            try:
                return np.memmap(self.location, dtype=np.int64, mode="r",
                                 shape=(self.length,))
            except (FileNotFoundError, ValueError) as exc:
                # ValueError covers a truncated file (mmap smaller than
                # the recorded shape) — same root cause, same remedy.
                path = Path(self.location)
                if isinstance(exc, ValueError):
                    if path.exists() \
                            and path.stat().st_size >= 8 * self.length:
                        raise
                    raise _backing_missing(
                        self, truncated=path.exists()) from exc
                raise _backing_missing(self) from exc
        if self.backing == "shared_memory":
            return self._attach_shm()[0]
        raise ValueError(f"unknown trace backing {self.backing!r}")

    def _attach_shm(self):
        from multiprocessing import shared_memory
        try:
            shm = shared_memory.SharedMemory(name=self.location)
        except FileNotFoundError as exc:
            raise _backing_missing(self) from exc
        addrs = np.ndarray((self.length,), dtype=np.int64,
                           buffer=shm.buf)
        addrs.flags.writeable = False
        return addrs, shm

    def attach(self) -> Trace:
        """The trace behind this handle (addresses attached zero-copy)."""
        if self.backing == "memory":
            return self.payload
        instructions = max(1, int(self.instructions))
        if self.backing == "shared_memory":
            addrs, shm = self._attach_shm()
            # The segment object pins the buffer for the trace's lifetime.
            return Trace(addrs, instructions, name=self.name,
                         metadata={"shm": shm})
        return Trace(self.array(), instructions, name=self.name)


class TraceStore:
    """Materialize traces once; share them zero-copy across workers.

    Parameters
    ----------
    backing:
        One of :data:`TRACE_BACKINGS`; "auto" (the default) resolves to
        "memmap", which is shareable across processes on every supported
        Python version.
    directory:
        Directory for memmap files.  Defaults to a private temporary
        directory removed by :meth:`close`; an explicit directory is left
        in place (only the store's files are deleted).
    """

    def __init__(self, backing: str = "auto",
                 directory: str | os.PathLike | None = None):
        if backing not in TRACE_BACKINGS:
            raise ValueError(f"unknown backing {backing!r}; "
                             f"known: {TRACE_BACKINGS}")
        self.backing = "memmap" if backing == "auto" else backing
        self._handles: dict[str, TraceHandle] = {}
        self._segments: list = []
        self._owned_paths: list = []
        self._own_dir = False
        self._dir: Path | None = None
        if self.backing == "memmap":
            if directory is None:
                self._dir = Path(tempfile.mkdtemp(prefix=_TRACE_DIR_PREFIX))
                self._own_dir = True
                # Ownership marker: gc_stale() reclaims this directory
                # only once this process is gone (finalizers never ran).
                (self._dir / _PID_MARKER).write_text(f"{os.getpid()}\n")
            else:
                self._dir = Path(directory)
                self._dir.mkdir(parents=True, exist_ok=True)
        self._closed = False
        # Runs on close(), on garbage collection, and at interpreter exit
        # (weakref.finalize registers itself with atexit) — whichever
        # comes first; the others become no-ops.
        self._finalizer = weakref.finalize(
            self, _cleanup_backings, self._segments,
            self._dir, self._own_dir, self._owned_paths)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._handles)

    def __contains__(self, key: str) -> bool:
        return key in self._handles

    def __enter__(self) -> "TraceStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    @staticmethod
    def profile_key(profile, n_accesses: int, seed: int) -> str:
        """Content-address of a profile trace: (profile, length, seed)."""
        return f"{profile.name}|{int(n_accesses)}|{int(seed)}"

    def get(self, profile, n_accesses: int, seed: int) -> TraceHandle:
        """The handle for a profile's trace, generating it on first use.

        Every later ``get`` with the same ``(profile.name, n_accesses,
        seed)`` returns the already-materialized handle — this is the
        dedup that stops pooled mix-sweep workers from regenerating
        identical per-app traces.
        """
        self._check_open()
        key = self.profile_key(profile, n_accesses, seed)
        if key not in self._handles:
            trace = profile.trace(n_accesses=n_accesses, seed=seed)
            self._handles[key] = self._materialize(key, trace)
        return self._handles[key]

    def put(self, trace: Trace | np.ndarray, name: str = "trace",
            instructions: int = 0) -> TraceHandle:
        """Store an existing trace (or raw address array), deduplicated.

        Raw arrays are keyed by a digest of their bytes, so storing the
        same data twice yields one materialization.
        """
        self._check_open()
        if isinstance(trace, Trace):
            addrs = np.ascontiguousarray(trace.addresses, dtype=np.int64)
            name = trace.name
            instructions = trace.instructions
        else:
            addrs = np.ascontiguousarray(np.asarray(trace, dtype=np.int64))
        if addrs.ndim != 1:
            raise ValueError("trace must be one-dimensional")
        digest = hashlib.sha256(addrs.tobytes()).hexdigest()[:24]
        key = f"{name}|{digest}"
        if key not in self._handles:
            source = Trace(addrs, max(1, int(instructions)), name=name)
            self._handles[key] = self._materialize(
                key, source, instructions=int(instructions))
        return self._handles[key]

    # ------------------------------------------------------------------ #
    def _materialize(self, key: str, trace: Trace,
                     instructions: int | None = None) -> TraceHandle:
        instructions = (trace.instructions if instructions is None
                        else instructions)
        meta = dict(key=key, length=int(trace.addresses.size),
                    instructions=int(instructions), name=trace.name)
        if self.backing == "memory":
            return TraceHandle(backing="memory", location="", payload=trace,
                               **meta)
        addrs = np.ascontiguousarray(trace.addresses, dtype=np.int64)
        if self.backing == "memmap":
            fname = hashlib.sha256(key.encode()).hexdigest()[:24] + ".i64"
            path = self._dir / fname
            tmp = self._dir / (fname + ".tmp")
            addrs.tofile(tmp)
            os.replace(tmp, path)  # atomic: attachers never see a partial
            self._owned_paths.append(str(path))
            return TraceHandle(backing="memmap", location=str(path), **meta)
        from multiprocessing import shared_memory
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, addrs.nbytes))
        np.ndarray(addrs.shape, dtype=np.int64,
                   buffer=shm.buf)[:] = addrs
        self._segments.append(shm)
        return TraceHandle(backing="shared_memory", location=shm.name,
                           **meta)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("TraceStore is closed")

    def close(self) -> None:
        """Release all backing storage (files/segments are unlinked).

        Closing is idempotent, and the same cleanup runs automatically
        when the store is garbage collected or the interpreter exits, so
        a sweep aborted by an exception does not leak its backings.
        """
        if self._closed:
            return
        self._closed = True
        self._finalizer()
        self._handles = {}

    @classmethod
    def stale_dirs(cls, root: str | os.PathLike | None = None) -> list[Path]:
        """Orphaned backing directories of dead processes (not removed).

        Sweeps ``root`` (default: the system temporary directory) for
        ``repro-traces-*`` directories whose ``owner.pid`` marker names a
        process that no longer exists.  Directories of live stores — and
        directories without a readable marker (a pre-marker store or one
        torn down mid-create; without a pid we cannot tell) — are not
        reported.  This is the read-only census behind :meth:`gc_stale`;
        the job CLI's ``gc`` command uses both to report what it
        reclaimed and how many bytes it freed.
        """
        root = Path(root if root is not None else tempfile.gettempdir())
        stale = []
        try:
            candidates = sorted(root.glob(_TRACE_DIR_PREFIX + "*"))
        except OSError:
            return stale
        for candidate in candidates:
            if not candidate.is_dir():
                continue
            marker = candidate / _PID_MARKER
            try:
                pid = int(marker.read_text().strip())
            except (FileNotFoundError, ValueError, OSError):
                continue
            if _pid_alive(pid):
                continue
            stale.append(candidate)
        return stale

    @staticmethod
    def dir_bytes(path: Path) -> int:
        """Total size of one backing directory's files (best effort)."""
        total = 0
        try:
            for entry in path.rglob("*"):
                try:
                    if entry.is_file():
                        total += entry.stat().st_size
                except OSError:
                    continue
        except OSError:
            pass
        return total

    @classmethod
    def gc_stale(cls, root: str | os.PathLike | None = None) -> list[Path]:
        """Remove orphaned backing directories of dead processes.

        A worker killed by a signal (the supervised job runtime's SIGKILL
        fault class, an OOM kill, a machine crash) runs no finalizers and
        leaves its ``repro-traces-*`` directory behind.  This removes
        every directory :meth:`stale_dirs` identifies under ``root`` and
        returns the paths it removed.  Safe to call from any process at
        any time; the job CLI's ``gc`` command does.
        """
        removed = []
        for candidate in cls.stale_dirs(root):
            shutil.rmtree(candidate, ignore_errors=True)
            removed.append(candidate)
        return removed

    def __repr__(self) -> str:
        return (f"TraceStore(backing={self.backing!r}, "
                f"traces={len(self._handles)})")
