"""Synthetic stand-ins for the SPEC CPU2006 applications used in the paper.

The paper's evaluation runs SPEC CPU2006 binaries under zsim.  Those
binaries (and the machine time to run 10 B-instruction simulations) are not
available here, so each application is replaced by a *profile*: a synthetic
access-stream generator whose LRU miss curve reproduces the qualitative
shape the paper reports for that benchmark — cliff positions, plateau
heights and overall memory intensity are taken from Figs. 1, 8, 10, 11 and
13.  The substitution is sound for Talus's purposes because Talus consumes
only miss curves (Assumptions 2 and 3): any workload with the same curve
shape exercises the same decisions.

Each profile also carries the parameters of the analytic core model
(:mod:`repro.sim.perf_model`): a peak IPC and an average exposed miss
penalty, which determine how MPKI changes translate into IPC changes in
Figs. 11–13.

Working-set sizes are expressed in *paper megabytes* and converted to
simulated lines with :mod:`repro.workloads.scale`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..core.misscurve import MissCurve
from .access import Trace
from .generators import (hot_cold, mixture, scan_plus_random, sequential_scan,
                         uniform_random, zipfian)
from .scale import lines_to_paper_mb, paper_mb_to_lines

__all__ = [
    "AppProfile",
    "SPEC_PROFILES",
    "get_profile",
    "profile_names",
    "memory_intensive_profiles",
    "FIG10_BENCHMARKS",
    "FIG13_BENCHMARKS",
]

#: Default trace length used when profiles generate traces / miss curves.
DEFAULT_TRACE_ACCESSES = 150_000

# Module-level cache of computed LRU curves, keyed by
# (profile name, max_mb, points, n_accesses, seed).
_CURVE_CACHE: dict[tuple, MissCurve] = {}


@dataclass(frozen=True)
class AppProfile:
    """A synthetic SPEC-like application profile.

    Attributes
    ----------
    name:
        Benchmark name (matching the paper's figures).
    apki:
        LLC accesses per kilo-instruction; also the MPKI when nothing hits.
    ipc_peak:
        IPC when every LLC access hits (core-bound performance).
    miss_penalty_cycles:
        Average *exposed* stall cycles per LLC miss (memory latency divided
        by the application's memory-level parallelism).
    memory_intensive:
        Whether the app belongs to the paper's "18 most memory intensive"
        set used for multi-programmed mixes.
    cliff_mb:
        Nominal position (paper MB) of the main LRU performance cliff, or
        None for convex-ish applications.
    description:
        One-line description of the synthetic recipe and what it mimics.
    """

    name: str
    apki: float
    ipc_peak: float
    miss_penalty_cycles: float
    memory_intensive: bool
    cliff_mb: float | None
    description: str
    _builder: Callable[[int, int], Trace] = field(repr=False, compare=False)

    # ------------------------------------------------------------------ #
    def trace(self, n_accesses: int = DEFAULT_TRACE_ACCESSES,
              seed: int = 0) -> Trace:
        """Generate an access trace of ``n_accesses`` accesses."""
        if n_accesses <= 0:
            raise ValueError("n_accesses must be positive")
        trace = self._builder(n_accesses, seed)
        # Re-stamp instructions so the trace's APKI matches the profile.
        instructions = max(1, int(round(1000.0 * n_accesses / self.apki)))
        return Trace(trace.addresses, instructions, name=self.name,
                     metadata={"profile": self.name, **trace.metadata})

    def lru_curve(self, max_mb: float = 48.0, points: int = 97,
                  n_accesses: int = DEFAULT_TRACE_ACCESSES,
                  seed: int = 0,
                  sizes_mb: Sequence[float] | None = None) -> MissCurve:
        """Exact LRU miss curve of the profile, in (paper MB, MPKI) units.

        Computed with one stack-distance pass over a generated trace and
        cached, so repeated calls are cheap.

        Parameters
        ----------
        max_mb, points:
            Default sampling: ``points`` evenly spaced sizes in
            ``[0, max_mb]``.
        sizes_mb:
            Explicit sample sizes (paper MB); overrides ``max_mb``/``points``.
            Use a non-uniform grid (fine near zero, coarse beyond the LLC)
            to mirror the resolution of the paper's UMON arrangement.
        """
        if sizes_mb is None:
            sizes_array = np.linspace(0.0, max_mb, points)
        else:
            sizes_array = np.asarray(sorted(set(float(s) for s in sizes_mb)))
            if sizes_array.size == 0:
                raise ValueError("sizes_mb must not be empty")
        key = (self.name, tuple(np.round(sizes_array, 9)), int(n_accesses),
               int(seed))
        if key in _CURVE_CACHE:
            return _CURVE_CACHE[key]
        from ..monitor.stack_distance import lru_miss_curve
        trace = self.trace(n_accesses=n_accesses, seed=seed)
        sizes_lines = np.array([paper_mb_to_lines(mb) for mb in sizes_array],
                               dtype=float)
        raw = lru_miss_curve(trace.addresses, sizes=sizes_lines)
        mpki = raw.misses * 1000.0 / trace.instructions
        curve = MissCurve(sizes_array, mpki).monotone_envelope()
        _CURVE_CACHE[key] = curve
        return curve

    def ipc(self, mpki: float) -> float:
        """Analytic IPC at a given LLC MPKI (see :mod:`repro.sim.perf_model`)."""
        if mpki < 0:
            raise ValueError("mpki must be non-negative")
        cpi = 1.0 / self.ipc_peak + (mpki / 1000.0) * self.miss_penalty_cycles
        return 1.0 / cpi


# --------------------------------------------------------------------------- #
# Profile recipes
# --------------------------------------------------------------------------- #
def _mb(mb: float) -> int:
    return max(1, paper_mb_to_lines(mb))


def _libquantum(n: int, seed: int) -> Trace:
    # Pure streaming over a 32 MB vector: the Fig. 1 cliff.
    return sequential_scan(_mb(32.0), n, apki=33.0)


def _gobmk(n: int, seed: int) -> Trace:
    # Low-intensity, small footprint with mild tapering reuse (Fig. 8b).
    return mixture([
        zipfian(_mb(1.0), n * 3 // 4, exponent=0.9, seed=seed),
        sequential_scan(_mb(3.0), n // 4, offset=_mb(8.0)),
    ], weights=[3.0, 1.0], seed=seed, name="gobmk")


def _perlbench(n: int, seed: int) -> Trace:
    # Convex region (hot working set) followed by a cliff near 2.5 MB; the
    # shape where PDP-style bypassing does poorly (Sec. VII-C).
    return mixture([
        zipfian(_mb(0.5), n // 2, exponent=1.0, seed=seed),
        sequential_scan(_mb(2.5), n // 2, offset=_mb(4.0)),
    ], weights=[1.0, 1.0], seed=seed, name="perlbench")


def _mcf(n: int, seed: int) -> Trace:
    # Large, mostly convex footprint: pointer chasing over tens of MB.
    return mixture([
        zipfian(_mb(24.0), n * 2 // 3, exponent=0.7, seed=seed),
        uniform_random(_mb(6.0), n // 3, seed=seed + 1, offset=_mb(32.0)),
    ], weights=[2.0, 1.0], seed=seed, name="mcf")


def _cactusadm(n: int, seed: int) -> Trace:
    # Convex region from a random set, then a cliff when the grid fits (~3 MB).
    return mixture([
        uniform_random(_mb(1.25), n // 2, seed=seed),
        sequential_scan(_mb(3.0), n // 2, offset=_mb(4.0)),
    ], weights=[1.0, 1.0], seed=seed, name="cactusADM")


def _lbm(n: int, seed: int) -> Trace:
    # Streaming over a ~5 MB lattice plus a small hot set: a long plateau at
    # high MPKI followed by the cliff when the lattice fits.
    return mixture([
        sequential_scan(_mb(5.0), n * 7 // 8),
        zipfian(_mb(0.25), n // 8, exponent=1.0, seed=seed, offset=_mb(8.0)),
    ], weights=[7.0, 1.0], seed=seed, name="lbm")


def _xalancbmk(n: int, seed: int) -> Trace:
    # Small hot DOM nodes plus a 6 MB scanned structure: a short convex
    # region, then a plateau ending in the 6 MB cliff (Fig. 13c).
    return mixture([
        zipfian(_mb(0.4), n // 4, exponent=1.0, seed=seed),
        sequential_scan(_mb(6.0), n * 3 // 4, offset=_mb(8.0)),
    ], weights=[1.0, 3.0], seed=seed, name="xalancbmk")


def _omnetpp(n: int, seed: int) -> Trace:
    # Event queue with a 2 MB working set: cliff at 2 MB (Fig. 13b).
    return mixture([
        zipfian(_mb(0.25), n // 5, exponent=1.0, seed=seed),
        sequential_scan(_mb(2.0), n * 4 // 5, offset=_mb(4.0)),
    ], weights=[1.0, 4.0], seed=seed, name="omnetpp")


def _gemsfdtd(n: int, seed: int) -> Trace:
    # Scanned grids at two scales: a 1 MB cliff and a second one at ~6 MB,
    # with a plateau in between.
    return mixture([
        sequential_scan(_mb(1.0), n // 2),
        sequential_scan(_mb(5.0), n // 2, offset=_mb(2.0)),
    ], weights=[1.0, 1.0], seed=seed, name="GemsFDTD")


def _sphinx3(n: int, seed: int) -> Trace:
    # Acoustic model lookups: convex curve that saturates by a few MB.
    return zipfian(_mb(4.0), n, exponent=0.7, seed=seed, name="sphinx3")


def _soplex(n: int, seed: int) -> Trace:
    # Hot basis columns plus a scanned constraint matrix: convex knee then a
    # plateau ending at ~4 MB.
    return mixture([
        zipfian(_mb(0.75), n // 2, exponent=1.0, seed=seed + 1),
        sequential_scan(_mb(3.5), n // 2, offset=_mb(6.0)),
    ], weights=[1.0, 1.0], seed=seed, name="soplex")


def _milc(n: int, seed: int) -> Trace:
    # Lattice QCD streaming: footprint far beyond any LLC size studied.
    return sequential_scan(_mb(64.0), n, name="milc")


def _bwaves(n: int, seed: int) -> Trace:
    # Streaming with a cliff beyond the LLC (like libquantum but larger).
    return sequential_scan(_mb(40.0), n, name="bwaves")


def _gcc(n: int, seed: int) -> Trace:
    return hot_cold(_mb(0.5), _mb(3.0), 0.8, n, seed=seed, name="gcc")


def _zeusmp(n: int, seed: int) -> Trace:
    return uniform_random(_mb(2.0), n, seed=seed, name="zeusmp")


def _astar(n: int, seed: int) -> Trace:
    return zipfian(_mb(4.0), n, exponent=0.8, seed=seed, name="astar")


def _hmmer(n: int, seed: int) -> Trace:
    return uniform_random(_mb(0.5), n, seed=seed, name="hmmer")


def _h264ref(n: int, seed: int) -> Trace:
    return zipfian(_mb(0.6), n, exponent=1.1, seed=seed, name="h264ref")


def _dealii(n: int, seed: int) -> Trace:
    return zipfian(_mb(3.0), n, exponent=0.9, seed=seed, name="dealII")


def _calculix(n: int, seed: int) -> Trace:
    return hot_cold(_mb(0.25), _mb(1.5), 0.85, n, seed=seed, name="calculix")


def _sjeng(n: int, seed: int) -> Trace:
    return zipfian(_mb(0.4), n, exponent=1.2, seed=seed, name="sjeng")


def _povray(n: int, seed: int) -> Trace:
    return zipfian(_mb(0.1), n, exponent=1.3, seed=seed, name="povray")


def _tonto(n: int, seed: int) -> Trace:
    return zipfian(_mb(0.15), n, exponent=1.2, seed=seed, name="tonto")


def _wrf(n: int, seed: int) -> Trace:
    return mixture([
        sequential_scan(_mb(1.5), n // 2),
        zipfian(_mb(4.0), n // 2, exponent=0.8, seed=seed, offset=_mb(2.0)),
    ], weights=[1.0, 1.0], seed=seed, name="wrf")


def _leslie3d(n: int, seed: int) -> Trace:
    return mixture([
        sequential_scan(_mb(3.0), n * 2 // 3),
        uniform_random(_mb(4.0), n // 3, seed=seed, offset=_mb(4.0)),
    ], weights=[2.0, 1.0], seed=seed, name="leslie3d")


def _bzip2(n: int, seed: int) -> Trace:
    return hot_cold(_mb(1.0), _mb(4.0), 0.7, n, seed=seed, name="bzip2")


# --------------------------------------------------------------------------- #
# Profile registry
# --------------------------------------------------------------------------- #
def _profile(name: str, apki: float, ipc_peak: float, penalty: float,
             intensive: bool, cliff: float | None, description: str,
             builder: Callable[[int, int], Trace]) -> AppProfile:
    return AppProfile(name=name, apki=apki, ipc_peak=ipc_peak,
                      miss_penalty_cycles=penalty, memory_intensive=intensive,
                      cliff_mb=cliff, description=description,
                      _builder=builder)


SPEC_PROFILES: Dict[str, AppProfile] = {p.name: p for p in [
    _profile("libquantum", 33.0, 0.85, 30.0, True, 32.0,
             "32 MB sequential streaming; the Fig. 1 cliff.", _libquantum),
    _profile("gobmk", 1.0, 1.40, 120.0, False, None,
             "Low-intensity game tree search with ~1 MB hot set.", _gobmk),
    _profile("perlbench", 2.0, 1.50, 150.0, False, 2.5,
             "Hot interpreter state plus a 2.5 MB scanned structure.", _perlbench),
    _profile("mcf", 22.0, 0.60, 90.0, True, None,
             "Pointer chasing over tens of MB; convex, high MPKI.", _mcf),
    _profile("cactusADM", 9.0, 0.90, 110.0, True, 3.0,
             "Convex region then a cliff at ~3 MB.", _cactusadm),
    _profile("lbm", 32.0, 0.80, 35.0, True, 5.0,
             "Lattice streaming with a ~5 MB working set.", _lbm),
    _profile("xalancbmk", 28.0, 0.95, 70.0, True, 6.0,
             "XSLT processing; cliff at ~6 MB (Fig. 13c).", _xalancbmk),
    _profile("omnetpp", 22.0, 0.80, 90.0, True, 2.0,
             "Event simulation; cliff at ~2 MB (Fig. 13b).", _omnetpp),
    _profile("GemsFDTD", 12.0, 0.85, 80.0, True, 1.0,
             "Small scanned grid plus large random halo.", _gemsfdtd),
    _profile("sphinx3", 13.0, 1.00, 90.0, True, None,
             "Speech decoding; smooth convex curve.", _sphinx3),
    _profile("soplex", 25.0, 0.80, 80.0, True, None,
             "LP solving over ~5 MB.", _soplex),
    _profile("milc", 25.0, 0.75, 40.0, True, None,
             "Streaming far beyond LLC sizes; flat curve.", _milc),
    _profile("bwaves", 18.0, 0.85, 45.0, True, 40.0,
             "Streaming with a cliff beyond the LLC (40 MB).", _bwaves),
    _profile("gcc", 6.0, 1.30, 120.0, True, None,
             "Hot/cold compiler working sets.", _gcc),
    _profile("zeusmp", 5.0, 1.20, 100.0, True, None,
             "Random accesses over ~2 MB.", _zeusmp),
    _profile("astar", 8.0, 1.10, 130.0, True, None,
             "Path-finding with a ~4 MB convex footprint.", _astar),
    _profile("hmmer", 3.0, 1.60, 100.0, True, None,
             "Small random working set; cache friendly.", _hmmer),
    _profile("h264ref", 2.0, 1.55, 110.0, True, None,
             "Video encoding; sub-MB hot set.", _h264ref),
    _profile("dealII", 4.0, 1.30, 110.0, False, None,
             "FEM assembly; convex ~3 MB footprint.", _dealii),
    _profile("calculix", 1.5, 1.50, 120.0, False, None,
             "Mostly cache-resident FEM solver.", _calculix),
    _profile("sjeng", 1.2, 1.45, 130.0, False, None,
             "Chess search; small hot set.", _sjeng),
    _profile("povray", 0.1, 1.70, 150.0, False, None,
             "Ray tracing; negligible LLC traffic (<0.1 MPKI).", _povray),
    _profile("tonto", 0.1, 1.60, 150.0, False, None,
             "Quantum chemistry; negligible LLC traffic.", _tonto),
    _profile("wrf", 7.0, 1.05, 90.0, False, 1.5,
             "Weather modelling; small scan plus convex tail.", _wrf),
    _profile("leslie3d", 14.0, 0.90, 70.0, True, 3.0,
             "CFD streaming with a ~3 MB cliff.", _leslie3d),
    _profile("bzip2", 5.0, 1.25, 110.0, False, None,
             "Compression; hot/cold blocks.", _bzip2),
]}

#: Benchmarks shown in Fig. 10 of the paper (MPKI vs size, 128 KB – 16 MB).
FIG10_BENCHMARKS = ("perlbench", "mcf", "cactusADM", "libquantum", "lbm",
                    "xalancbmk")

#: Benchmarks used for the Fig. 13 fairness case studies.
FIG13_BENCHMARKS = ("libquantum", "omnetpp", "xalancbmk")


def get_profile(name: str) -> AppProfile:
    """Look up a profile by benchmark name."""
    try:
        return SPEC_PROFILES[name]
    except KeyError:
        raise ValueError(f"unknown profile {name!r}; "
                         f"known: {sorted(SPEC_PROFILES)}") from None


def profile_names() -> List[str]:
    """All registered benchmark names."""
    return sorted(SPEC_PROFILES)


def memory_intensive_profiles() -> List[AppProfile]:
    """The paper's pool of memory-intensive apps used for random mixes."""
    return [p for p in SPEC_PROFILES.values() if p.memory_intensive]
