"""Multi-programmed workload mixes (paper Sec. VII-A and VII-D).

The paper evaluates shared-cache management on 100 random mixes of the 18
most memory-intensive SPEC CPU2006 applications, eight apps per mix, plus
homogeneous 8-copy "fairness" mixes.  This module builds the equivalent
mixes from the synthetic profiles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from .spec_profiles import AppProfile, get_profile, memory_intensive_profiles

__all__ = ["WorkloadMix", "random_mixes", "homogeneous_mix"]


@dataclass(frozen=True)
class WorkloadMix:
    """A named collection of application profiles sharing a cache."""

    name: str
    apps: tuple[AppProfile, ...]

    def __len__(self) -> int:
        return len(self.apps)

    @property
    def app_names(self) -> List[str]:
        """Benchmark names in core order."""
        return [app.name for app in self.apps]

    def __repr__(self) -> str:
        return f"WorkloadMix({self.name!r}, apps={self.app_names})"


def random_mixes(num_mixes: int, apps_per_mix: int = 8,
                 seed: int = 2015,
                 pool: Sequence[AppProfile] | None = None) -> List[WorkloadMix]:
    """Random mixes drawn (with replacement) from the memory-intensive pool.

    Sampling with replacement mirrors the paper's methodology, where the
    same benchmark can appear multiple times in a mix.
    """
    if num_mixes <= 0 or apps_per_mix <= 0:
        raise ValueError("num_mixes and apps_per_mix must be positive")
    pool = list(pool) if pool is not None else memory_intensive_profiles()
    if not pool:
        raise ValueError("profile pool is empty")
    rng = random.Random(seed)
    mixes = []
    for i in range(num_mixes):
        apps = tuple(rng.choice(pool) for _ in range(apps_per_mix))
        mixes.append(WorkloadMix(name=f"mix{i:03d}", apps=apps))
    return mixes


def homogeneous_mix(benchmark: str, copies: int = 8) -> WorkloadMix:
    """``copies`` instances of the same benchmark (Fig. 13 case studies)."""
    if copies <= 0:
        raise ValueError("copies must be positive")
    profile = get_profile(benchmark)
    return WorkloadMix(name=f"{benchmark}x{copies}",
                       apps=tuple(profile for _ in range(copies)))
