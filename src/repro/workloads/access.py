"""Access traces: the unit of work fed to the cache substrate.

A :class:`Trace` is a sequence of line addresses plus the metadata needed to
report paper-style metrics: the number of instructions the accesses
correspond to (so misses convert to MPKI) and a human-readable name.

Traces are deliberately plain (a numpy array plus scalars) so that
generators can build them quickly and simulators can iterate them without
overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Trace", "interleave", "concatenate"]


@dataclass
class Trace:
    """A line-address trace with MPKI bookkeeping.

    Attributes
    ----------
    addresses:
        Line addresses (int64).  These are *line* numbers — byte addresses
        already divided by the line size.
    instructions:
        Number of instructions the trace represents.  Together with the
        access count this fixes the APKI (accesses per kilo-instruction)
        and lets simulation results be reported as MPKI.
    name:
        Label used in reports.
    """

    addresses: np.ndarray
    instructions: int
    name: str = "trace"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        self.addresses = np.asarray(self.addresses, dtype=np.int64)
        if self.addresses.ndim != 1:
            raise ValueError("addresses must be one-dimensional")
        if self.instructions <= 0:
            raise ValueError("instructions must be positive")

    def __len__(self) -> int:
        return int(self.addresses.size)

    def __iter__(self):
        return iter(self.addresses.tolist())

    @property
    def accesses(self) -> int:
        """Number of accesses in the trace."""
        return len(self)

    @property
    def apki(self) -> float:
        """Accesses per kilo-instruction."""
        return 1000.0 * self.accesses / self.instructions

    @property
    def footprint(self) -> int:
        """Number of distinct lines touched."""
        return int(np.unique(self.addresses).size)

    def mpki_from_misses(self, misses: float) -> float:
        """Convert a miss count over this trace to MPKI."""
        return 1000.0 * misses / self.instructions

    def with_offset(self, offset: int) -> "Trace":
        """Return a copy with all addresses shifted by ``offset`` lines.

        Used to place multiple synthetic streams in disjoint address ranges.
        """
        return Trace(self.addresses + int(offset), self.instructions,
                     name=self.name, metadata=dict(self.metadata))

    def truncated(self, n_accesses: int) -> "Trace":
        """Return the first ``n_accesses`` accesses (instructions pro-rated)."""
        if n_accesses <= 0:
            raise ValueError("n_accesses must be positive")
        n = min(n_accesses, self.accesses)
        instructions = max(1, int(round(self.instructions * n / self.accesses)))
        return Trace(self.addresses[:n], instructions, name=self.name,
                     metadata=dict(self.metadata))

    def __repr__(self) -> str:
        return (f"Trace({self.name!r}, {self.accesses} accesses, "
                f"{self.instructions} instructions, "
                f"APKI={self.apki:.1f}, footprint={self.footprint} lines)")


def concatenate(traces: list[Trace], name: str = "concat") -> Trace:
    """Concatenate traces back to back (phase behaviour)."""
    if not traces:
        raise ValueError("traces must not be empty")
    addresses = np.concatenate([t.addresses for t in traces])
    instructions = sum(t.instructions for t in traces)
    return Trace(addresses, instructions, name=name)


def interleave(traces: list[Trace], weights: list[float] | None = None,
               seed: int = 0, name: str = "interleave") -> Trace:
    """Probabilistically interleave several traces into one access stream.

    Each output access is drawn from trace ``i`` with probability
    ``weights[i]`` (default: proportional to trace length), consuming that
    trace's accesses in order and wrapping around when exhausted.  The
    output length is the total input length; instructions are summed.
    """
    if not traces:
        raise ValueError("traces must not be empty")
    if weights is None:
        weights = [float(len(t)) for t in traces]
    if len(weights) != len(traces):
        raise ValueError("weights must match traces")
    if any(w < 0 for w in weights) or sum(weights) <= 0:
        raise ValueError("weights must be non-negative and not all zero")
    rng = np.random.default_rng(seed)
    total = sum(len(t) for t in traces)
    probs = np.asarray(weights, dtype=float)
    probs = probs / probs.sum()
    choices = rng.choice(len(traces), size=total, p=probs)
    out = np.empty(total, dtype=np.int64)
    # The k-th access drawn from trace i reads that trace's k-th address
    # (mod its length), so each trace's output slots can be filled in one
    # vectorized gather — identical to consuming the traces cursor by
    # cursor, just without the per-access Python loop.
    for which, trace in enumerate(traces):
        slots = np.nonzero(choices == which)[0]
        if slots.size:
            out[slots] = trace.addresses[
                np.arange(slots.size) % len(trace)]
    instructions = sum(t.instructions for t in traces)
    return Trace(out, instructions, name=name)
