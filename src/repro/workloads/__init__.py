"""Workloads: synthetic access streams and SPEC-CPU2006-like profiles."""

from .access import Trace, concatenate, interleave
from .generators import (hot_cold, mixture, scan_plus_random, sequential_scan,
                         strided_scan, uniform_random, zipfian)
from .mixes import WorkloadMix, homogeneous_mix, random_mixes
from .scale import (LINE_SIZE_BYTES, LINES_PER_PAPER_MB, lines_to_paper_mb,
                    paper_mb_to_lines)
from .spec_profiles import (FIG10_BENCHMARKS, FIG13_BENCHMARKS, AppProfile,
                            SPEC_PROFILES, get_profile,
                            memory_intensive_profiles, profile_names)
from .tracestore import (TRACE_BACKINGS, TraceBackingError,
                         TraceHandle, TraceStore)

__all__ = [
    "Trace",
    "concatenate",
    "interleave",
    "sequential_scan",
    "strided_scan",
    "uniform_random",
    "zipfian",
    "hot_cold",
    "mixture",
    "scan_plus_random",
    "LINE_SIZE_BYTES",
    "LINES_PER_PAPER_MB",
    "paper_mb_to_lines",
    "lines_to_paper_mb",
    "AppProfile",
    "SPEC_PROFILES",
    "get_profile",
    "profile_names",
    "memory_intensive_profiles",
    "FIG10_BENCHMARKS",
    "FIG13_BENCHMARKS",
    "WorkloadMix",
    "random_mixes",
    "homogeneous_mix",
    "TraceStore",
    "TraceHandle",
    "TraceBackingError",
    "TRACE_BACKINGS",
]
