"""Synthetic access-stream generators.

These produce the canonical LLC access patterns whose LRU miss curves have
the shapes the paper studies:

* **sequential scans** — flat miss curve with a cliff exactly at the working
  set size (libquantum's behaviour, Fig. 1);
* **uniform random working sets** — linearly declining (weakly convex) miss
  curves;
* **Zipfian / hot-cold mixtures** — smooth convex curves;
* **mixtures** — e.g. the Sec. III example (2 MB random + 3 MB sequential)
  whose LRU curve has a plateau followed by a cliff.

All generators work in *line* units and take an ``apki`` parameter so the
resulting :class:`~repro.workloads.access.Trace` carries the instruction
count needed for MPKI reporting.
"""

from __future__ import annotations

import numpy as np

from .access import Trace, interleave

__all__ = [
    "sequential_scan",
    "uniform_random",
    "zipfian",
    "hot_cold",
    "strided_scan",
    "mixture",
    "scan_plus_random",
]


def _instructions_for(n_accesses: int, apki: float) -> int:
    if apki <= 0:
        raise ValueError("apki must be positive")
    return max(1, int(round(1000.0 * n_accesses / apki)))


def sequential_scan(working_set_lines: int, n_accesses: int,
                    apki: float = 24.0, offset: int = 0,
                    name: str | None = None) -> Trace:
    """Repeatedly scan ``working_set_lines`` lines in order.

    Under LRU this misses on every access when the cache is smaller than
    the working set and hits on (almost) every access once it fits — the
    canonical performance cliff.
    """
    if working_set_lines <= 0 or n_accesses <= 0:
        raise ValueError("working_set_lines and n_accesses must be positive")
    addresses = (np.arange(n_accesses, dtype=np.int64) % working_set_lines) + offset
    return Trace(addresses, _instructions_for(n_accesses, apki),
                 name=name or f"scan({working_set_lines})",
                 metadata={"pattern": "scan", "working_set": working_set_lines})


def strided_scan(working_set_lines: int, n_accesses: int, stride: int = 2,
                 apki: float = 24.0, offset: int = 0,
                 name: str | None = None) -> Trace:
    """Scan with a stride (in lines), wrapping within the working set."""
    if stride <= 0:
        raise ValueError("stride must be positive")
    if working_set_lines <= 0 or n_accesses <= 0:
        raise ValueError("working_set_lines and n_accesses must be positive")
    addresses = ((np.arange(n_accesses, dtype=np.int64) * stride)
                 % working_set_lines) + offset
    return Trace(addresses, _instructions_for(n_accesses, apki),
                 name=name or f"stride({working_set_lines},{stride})",
                 metadata={"pattern": "strided", "working_set": working_set_lines})


def uniform_random(working_set_lines: int, n_accesses: int,
                   apki: float = 24.0, offset: int = 0, seed: int = 0,
                   name: str | None = None) -> Trace:
    """Uniform random accesses over a working set.

    LRU's miss rate is roughly ``1 - size / working_set`` for caches smaller
    than the working set — a straight (weakly convex) line.
    """
    if working_set_lines <= 0 or n_accesses <= 0:
        raise ValueError("working_set_lines and n_accesses must be positive")
    rng = np.random.default_rng(seed)
    addresses = rng.integers(0, working_set_lines, size=n_accesses,
                             dtype=np.int64) + offset
    return Trace(addresses, _instructions_for(n_accesses, apki),
                 name=name or f"random({working_set_lines})",
                 metadata={"pattern": "random", "working_set": working_set_lines})


def zipfian(n_items: int, n_accesses: int, exponent: float = 0.8,
            apki: float = 24.0, offset: int = 0, seed: int = 0,
            name: str | None = None) -> Trace:
    """Zipf-distributed accesses over ``n_items`` lines (smooth convex curve).

    Item ``k`` (0-based) is accessed with probability proportional to
    ``1 / (k + 1) ** exponent``.
    """
    if n_items <= 0 or n_accesses <= 0:
        raise ValueError("n_items and n_accesses must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_items + 1, dtype=float)
    probs = ranks ** (-exponent)
    probs /= probs.sum()
    addresses = rng.choice(n_items, size=n_accesses, p=probs).astype(np.int64) + offset
    return Trace(addresses, _instructions_for(n_accesses, apki),
                 name=name or f"zipf({n_items},{exponent})",
                 metadata={"pattern": "zipf", "working_set": n_items})


def hot_cold(hot_lines: int, cold_lines: int, hot_fraction: float,
             n_accesses: int, apki: float = 24.0, offset: int = 0,
             seed: int = 0, name: str | None = None) -> Trace:
    """Two-level working set: a hot region receiving ``hot_fraction`` of accesses.

    Produces a miss curve with two slopes — steep until the hot set fits,
    shallow afterwards — a common SPEC-like shape.
    """
    if hot_lines <= 0 or cold_lines <= 0 or n_accesses <= 0:
        raise ValueError("line counts and n_accesses must be positive")
    if not 0.0 < hot_fraction < 1.0:
        raise ValueError("hot_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    is_hot = rng.random(n_accesses) < hot_fraction
    hot = rng.integers(0, hot_lines, size=n_accesses, dtype=np.int64)
    cold = rng.integers(0, cold_lines, size=n_accesses, dtype=np.int64) + hot_lines
    addresses = np.where(is_hot, hot, cold) + offset
    return Trace(addresses, _instructions_for(n_accesses, apki),
                 name=name or f"hotcold({hot_lines},{cold_lines})",
                 metadata={"pattern": "hot_cold",
                           "working_set": hot_lines + cold_lines})


def mixture(components: list[Trace], weights: list[float] | None = None,
            apki: float | None = None, seed: int = 0,
            name: str = "mixture") -> Trace:
    """Probabilistic interleaving of component traces.

    A thin wrapper over :func:`repro.workloads.access.interleave` that can
    also override the APKI of the result (re-deriving the instruction
    count), which is convenient when composing profiles with a known LLC
    access intensity.
    """
    result = interleave(components, weights=weights, seed=seed, name=name)
    if apki is not None:
        instructions = _instructions_for(len(result), apki)
        result = Trace(result.addresses, instructions, name=name,
                       metadata=dict(result.metadata))
    return result


def scan_plus_random(random_lines: int, scan_lines: int, n_accesses: int,
                     random_fraction: float = 0.4, apki: float = 24.0,
                     seed: int = 0, name: str | None = None) -> Trace:
    """The Sec. III example: a random working set plus a sequential scan.

    With ``random_lines`` = 2 MB worth of lines and ``scan_lines`` = 3 MB
    worth, the LRU miss curve declines until the random set fits, stays flat
    (plateau), then drops off a cliff once the scan also fits — exactly the
    Fig. 3 shape.
    """
    if n_accesses <= 0:
        raise ValueError("n_accesses must be positive")
    rng = np.random.default_rng(seed)
    is_random = rng.random(n_accesses) < random_fraction
    rand_part = rng.integers(0, random_lines, size=n_accesses, dtype=np.int64)
    # The scan cursor advances only on scan accesses (a real sequential
    # walk); advancing it with the global access index would skip scan
    # lines on random slots and wash out the Fig. 3 cliff.
    scan_idx = np.cumsum(~is_random) - 1  # -1 on leading randoms: unused
    scan_part = (scan_idx % scan_lines) + random_lines
    addresses = np.where(is_random, rand_part, scan_part)
    return Trace(addresses, _instructions_for(n_accesses, apki),
                 name=name or f"scan+random({random_lines}+{scan_lines})",
                 metadata={"pattern": "scan_plus_random",
                           "working_set": random_lines + scan_lines})
