"""Scaling between paper units (MB) and simulated units (cache lines).

The paper's experiments use 1 MB – 72 MB last-level caches with 64 B lines.
Simulating millions of lines per cache in pure Python is infeasible, so the
whole reproduction runs in a scaled universe: every *paper megabyte* maps to
:data:`LINES_PER_PAPER_MB` simulated cache lines.  Working-set sizes,
cache capacities and miss-curve axes all use the same factor, so every
cliff, plateau and crossover sits at the same place on the "MB" axis as in
the paper — only the absolute number of lines differs.

Analytic computations (convex hulls, Talus planning, partitioning
algorithms, the IPC model) are scale invariant, so this factor only affects
trace-driven simulations.

This module also hosts the **long-trace hook** for sampled simulation:
:class:`ChunkedTrace`, a deterministic synthetic trace of up to billions
of accesses that is generated block-by-block on demand and never
materialized in full.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LINE_SIZE_BYTES",
    "LINES_PER_PAPER_MB",
    "paper_mb_to_lines",
    "lines_to_paper_mb",
    "CHUNKED_PATTERNS",
    "ChunkedTrace",
    "long_trace",
]

#: Cache line size, matching the paper's 64 B lines.
LINE_SIZE_BYTES = 64

#: Simulated lines per paper megabyte.  256 lines = 16 KB of simulated
#: capacity standing in for 1 MB of paper capacity (a 64x linear scale-down).
LINES_PER_PAPER_MB = 256


def paper_mb_to_lines(mb: float) -> int:
    """Convert a capacity in paper megabytes to simulated lines."""
    if mb < 0:
        raise ValueError("mb must be non-negative")
    return int(round(mb * LINES_PER_PAPER_MB))


def lines_to_paper_mb(lines: float) -> float:
    """Convert a simulated line count back to paper megabytes."""
    if lines < 0:
        raise ValueError("lines must be non-negative")
    return lines / LINES_PER_PAPER_MB


# --------------------------------------------------------------------- #
# Long traces for sampled simulation
# --------------------------------------------------------------------- #

#: Patterns :class:`ChunkedTrace` can synthesize (the long-trace twins of
#: the :mod:`repro.workloads.generators` families).
CHUNKED_PATTERNS = ("zipfian", "uniform", "scan", "hot_cold")

# Per-(n_items, exponent) Zipf CDFs, shared by every block of every trace
# with the same footprint (a few MB of float64 at CDN-scale footprints).
_ZIPF_CDF_CACHE: dict[tuple[int, float], np.ndarray] = {}


def _zipf_cdf(n_items: int, exponent: float) -> np.ndarray:
    key = (n_items, float(exponent))
    cdf = _ZIPF_CDF_CACHE.get(key)
    if cdf is None:
        probs = np.arange(1, n_items + 1, dtype=float) ** (-float(exponent))
        cdf = np.cumsum(probs / probs.sum())
        cdf[-1] = 1.0
        if len(_ZIPF_CDF_CACHE) >= 8:
            _ZIPF_CDF_CACHE.clear()
        _ZIPF_CDF_CACHE[key] = cdf
    return cdf


@dataclass(frozen=True)
class ChunkedTrace:
    """A deterministic long synthetic trace, generated block-by-block.

    Exact replay of a real 10^9-access trace is off the table for this
    codebase's figure drivers — and so is *materializing* one: at 8 bytes
    per access that is 8 GB of addresses.  ``ChunkedTrace`` instead
    derives any block of the trace as a pure function of
    ``(seed, block_index)``: block ``i`` of a given trace is always the
    same array no matter which process generates it, in which order, or
    which other blocks were generated before.  That gives the sampled
    simulation driver deterministic *random access* — a worker
    simulating the window at position 800M generates only the blocks
    covering it.

    **Memory behavior**: nothing is cached; :meth:`segment` allocates
    only the blocks overlapping the request (``O(block + len(segment))``
    values, with a shared per-footprint Zipf CDF of ``O(n_items)``
    float64 for the zipfian pattern), and :meth:`chunks` streams the
    trace with the same footprint per step.  ``n_accesses = 10**9`` costs
    the same memory as ``10**5``.

    The dataclass is frozen and made of plain values, so it is picklable,
    canonical-JSON-able (it can ride inside job keys for banking) and
    hashable.
    """

    pattern: str          #: one of :data:`CHUNKED_PATTERNS`
    n_accesses: int       #: total trace length in accesses
    n_items: int          #: footprint in lines
    seed: int = 0
    apki: float = 24.0    #: accesses per kilo-instruction (for MPKI)
    block: int = 1 << 16  #: generation block size in accesses
    exponent: float = 0.8       #: zipfian skew
    hot_fraction: float = 0.9   #: hot_cold: share of accesses that are hot
    hot_items: int = 0          #: hot_cold: hot-set size (0 -> n_items//8)
    name: str = ""

    def __post_init__(self):
        if self.pattern not in CHUNKED_PATTERNS:
            raise ValueError(f"pattern must be one of {CHUNKED_PATTERNS}, "
                             f"got {self.pattern!r}")
        if self.n_accesses <= 0 or self.n_items <= 0:
            raise ValueError("n_accesses and n_items must be positive")
        if self.block <= 0:
            raise ValueError("block must be positive")
        if self.apki <= 0:
            raise ValueError("apki must be positive")

    def __len__(self) -> int:
        return self.n_accesses

    @property
    def instructions(self) -> int:
        """Instruction count implied by ``apki`` (as the generators do)."""
        return max(1, int(round(1000.0 * self.n_accesses / self.apki)))

    # ------------------------------------------------------------------ #
    def _block(self, index: int) -> np.ndarray:
        """Generate block ``index`` (a pure function of seed and index)."""
        start = index * self.block
        size = min(self.block, self.n_accesses - start)
        if size <= 0:
            return np.empty(0, dtype=np.int64)
        if self.pattern == "scan":
            return (start + np.arange(size, dtype=np.int64)) % self.n_items
        rng = np.random.default_rng([self.seed, index])
        if self.pattern == "uniform":
            return rng.integers(0, self.n_items, size=size, dtype=np.int64)
        if self.pattern == "zipfian":
            cdf = _zipf_cdf(self.n_items, self.exponent)
            return np.searchsorted(cdf, rng.random(size),
                                   side="right").astype(np.int64)
        hot = self.hot_items or max(1, self.n_items // 8)
        cold = max(1, self.n_items - hot)
        is_hot = rng.random(size) < self.hot_fraction
        hot_part = rng.integers(0, hot, size=size, dtype=np.int64)
        cold_part = hot + rng.integers(0, cold, size=size, dtype=np.int64)
        return np.where(is_hot, hot_part, cold_part)

    def segment(self, start: int, stop: int) -> np.ndarray:
        """Addresses ``[start, stop)``, generating only covering blocks."""
        start = max(0, int(start))
        stop = min(self.n_accesses, int(stop))
        if stop <= start:
            return np.empty(0, dtype=np.int64)
        first, last = start // self.block, (stop - 1) // self.block
        if first == last:
            blk = self._block(first)
            base = first * self.block
            return blk[start - base:stop - base].copy()
        parts = [self._block(i) for i in range(first, last + 1)]
        out = np.concatenate(parts)
        base = first * self.block
        return out[start - base:stop - base]

    def chunks(self, chunk_accesses: int | None = None):
        """Yield ``(start, addresses)`` pairs streaming the whole trace."""
        step = int(chunk_accesses or self.block)
        if step <= 0:
            raise ValueError("chunk_accesses must be positive")
        for start in range(0, self.n_accesses, step):
            yield start, self.segment(start, start + step)

    def __repr__(self) -> str:
        label = self.name or self.pattern
        return (f"ChunkedTrace({label!r}, n={self.n_accesses}, "
                f"items={self.n_items}, seed={self.seed})")


def long_trace(pattern: str, n_accesses: int, n_items: int,
               seed: int = 0, **kwargs) -> ChunkedTrace:
    """Convenience constructor for a :class:`ChunkedTrace`.

    ``n_accesses`` may be 10^8+ — the trace is never materialized; see
    :class:`ChunkedTrace` for the memory contract.
    """
    return ChunkedTrace(pattern=pattern, n_accesses=n_accesses,
                        n_items=n_items, seed=seed, **kwargs)
