"""Scaling between paper units (MB) and simulated units (cache lines).

The paper's experiments use 1 MB – 72 MB last-level caches with 64 B lines.
Simulating millions of lines per cache in pure Python is infeasible, so the
whole reproduction runs in a scaled universe: every *paper megabyte* maps to
:data:`LINES_PER_PAPER_MB` simulated cache lines.  Working-set sizes,
cache capacities and miss-curve axes all use the same factor, so every
cliff, plateau and crossover sits at the same place on the "MB" axis as in
the paper — only the absolute number of lines differs.

Analytic computations (convex hulls, Talus planning, partitioning
algorithms, the IPC model) are scale invariant, so this factor only affects
trace-driven simulations.
"""

from __future__ import annotations

__all__ = [
    "LINE_SIZE_BYTES",
    "LINES_PER_PAPER_MB",
    "paper_mb_to_lines",
    "lines_to_paper_mb",
]

#: Cache line size, matching the paper's 64 B lines.
LINE_SIZE_BYTES = 64

#: Simulated lines per paper megabyte.  256 lines = 16 KB of simulated
#: capacity standing in for 1 MB of paper capacity (a 64x linear scale-down).
LINES_PER_PAPER_MB = 256


def paper_mb_to_lines(mb: float) -> int:
    """Convert a capacity in paper megabytes to simulated lines."""
    if mb < 0:
        raise ValueError("mb must be non-negative")
    return int(round(mb * LINES_PER_PAPER_MB))


def lines_to_paper_mb(lines: float) -> float:
    """Convert a simulated line count back to paper megabytes."""
    if lines < 0:
        raise ValueError("lines must be non-negative")
    return lines / LINES_PER_PAPER_MB
