"""Entry point: ``python -m repro.jobs <submit|status|cancel|gc>``."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
