"""Persistent content-addressed result bank.

One directory, one JSON file per result, addressed by the canonical job
key (:mod:`repro.jobs.keys`).  The bank is the durability layer of the
job runtime: identical submissions dedupe to one simulation, interrupted
sweeps resume by skipping already-banked units, and a supervised worker
killed mid-job loses only the unit it was computing.

Three properties make that safe:

* **Atomic writes** — every entry lands via a temp file plus
  ``os.replace`` (:mod:`repro.core.atomicio`), so a reader never sees a
  torn entry and concurrent writers of the *same* key (two workers
  racing on a deduped unit) both write identical bytes; last rename
  wins harmlessly.
* **Integrity digests** — each entry embeds a sha256 over its canonical
  payload; :meth:`ResultBank.get` verifies it on every read.  A corrupt
  entry (bit rot, a partial copy, a tampered file) is *evicted* — moved
  aside as ``<key>.corrupt`` — and reported as a miss, never crashed
  on: the job simply re-runs.
* **Keyed by code version** — the job key already folds in
  :func:`~repro.jobs.keys.code_version`, so entries from older code
  become unreachable rather than wrong.

Observability follows the SNIPPETS ``CacheRegistry`` idiom: the bank
counts hits, misses, writes and evictions, and :meth:`stats` exposes
them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..core.atomicio import atomic_write_json
from .keys import canonical_digest

__all__ = ["ResultBank", "DEFAULT_BANK_ENV"]

#: Environment variable naming the default bank directory for the CLI.
DEFAULT_BANK_ENV = "REPRO_JOB_BANK"

_ENTRY_SUFFIX = ".json"
_CORRUPT_SUFFIX = ".corrupt"


class ResultBank:
    """Directory-backed store of job results, one JSON entry per key.

    Parameters
    ----------
    directory:
        Root of the bank.  Created on first write.  Entries shard into
        256 two-hex-digit subdirectories so huge banks stay listable.

    The bank is safe to share between processes: entries are immutable
    once written (same key -> same canonical content) and all writes are
    atomic.
    """

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    def _path(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed bank key {key!r} (expect lowercase "
                             f"hex from repro.jobs.keys.job_key)")
        return self.directory / key[:2] / (key + _ENTRY_SUFFIX)

    @staticmethod
    def _digest(payload, meta) -> str:
        return canonical_digest({"payload": payload, "meta": meta})

    # ------------------------------------------------------------------ #
    def put(self, key: str, payload, meta: dict | None = None) -> Path:
        """Bank ``payload`` (a JSON-able value) under ``key``.

        ``meta`` carries provenance the payload itself should not:
        degradation flags, attempt counts, timings.  The write is atomic
        and includes the integrity digest verified by :meth:`get`.
        """
        meta = dict(meta or {})
        entry = {"key": key, "payload": payload, "meta": meta,
                 "digest": self._digest(payload, meta)}
        path = atomic_write_json(self._path(key), entry)
        self.writes += 1
        return path

    def get(self, key: str, with_meta: bool = False):
        """The banked payload for ``key``, or ``None`` on a miss.

        A present-but-corrupt entry (unparseable JSON, digest mismatch,
        wrong embedded key) counts as a miss *and* is evicted: the bad
        file is renamed to ``<key>.corrupt`` so the next writer starts
        clean and the evidence survives for inspection.
        """
        path = self._path(key)
        try:
            raw = path.read_text()
        except (FileNotFoundError, OSError):
            self.misses += 1
            return None
        try:
            entry = json.loads(raw)
            ok = (isinstance(entry, dict) and entry.get("key") == key
                  and entry.get("digest") == self._digest(
                      entry.get("payload"), entry.get("meta", {})))
        except (json.JSONDecodeError, TypeError, ValueError):
            ok = False
        if not ok:
            self._evict(path)
            self.misses += 1
            return None
        self.hits += 1
        if with_meta:
            return entry["payload"], entry.get("meta", {})
        return entry["payload"]

    def __contains__(self, key: str) -> bool:
        """Whether a *valid* entry exists (corrupt entries are evicted)."""
        hits, misses = self.hits, self.misses
        found = self.get(key) is not None
        # Probing for membership is not a serving hit/miss.
        self.hits, self.misses = hits, misses
        return found

    def delete(self, key: str) -> bool:
        """Remove one entry; returns whether it existed."""
        try:
            self._path(key).unlink()
            return True
        except FileNotFoundError:
            return False

    # ------------------------------------------------------------------ #
    def _evict(self, path: Path) -> None:
        try:
            os.replace(path, path.with_suffix(_CORRUPT_SUFFIX))
        except OSError:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
        self.evictions += 1

    def keys(self) -> list[str]:
        """Keys of all present entries (validity not checked)."""
        if not self.directory.exists():
            return []
        return sorted(p.stem for p in
                      self.directory.glob("??/*" + _ENTRY_SUFFIX))

    def __len__(self) -> int:
        return len(self.keys())

    def gc(self) -> dict:
        """Verify every entry; evict the corrupt ones.

        Returns a report ``{"checked": n, "evicted": [keys...]}`` — the
        CLI's ``gc`` command prints it.  Also clears leftover
        ``*.corrupt`` carcasses older than one prior sweep.
        """
        evicted = []
        checked = 0
        for key in self.keys():
            checked += 1
            before = self.evictions
            self.get(key)
            if self.evictions > before:
                evicted.append(key)
        return {"checked": checked, "evicted": evicted}

    def stats(self) -> dict:
        """Hit/miss/write/eviction counters plus the current size."""
        lookups = self.hits + self.misses
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "evictions": self.evictions,
                "entries": len(self),
                "hit_rate": self.hits / lookups if lookups else 0.0}

    def __repr__(self) -> str:
        return (f"ResultBank({str(self.directory)!r}, entries={len(self)}, "
                f"hits={self.hits}, misses={self.misses})")
