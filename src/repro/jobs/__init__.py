"""Fault-tolerant job runtime for long sweeps.

A supervised execution layer over the declarative spec API: jobs are
frozen, picklable payloads (:class:`SweepJob`, :class:`MixSweepJob`,
:class:`SharedRunJob`, :class:`CacheJob`) wrapping the existing
``SweepSpec``/``MixSweepSpec``/``CacheSpec`` descriptors; the
:class:`JobQueue` runs each attempt in a fresh supervised worker process
with heartbeat and wall-clock watchdogs, bounded retry with exponential
backoff, cancellation, a degradation ladder that retries native-kernel
crashes under ``REPRO_NATIVE=0``, and a persistent content-addressed
:class:`ResultBank` that dedupes identical submissions and lets
interrupted sweeps resume.

The sim drivers integrate via ``supervise=True``
(:func:`repro.sim.sweep.run_sweep`,
:func:`repro.sim.mixsweep.run_mix_sweep`,
:class:`repro.sim.multicore.ReconfiguringSharedRun`); ``python -m
repro.jobs`` is the operator CLI.  Fault recovery is provable:
:mod:`repro.jobs.faults` injects worker deaths deterministically, and
the fault suite asserts recovered results bit-identical to unfaulted
serial runs.
"""

from .bank import DEFAULT_BANK_ENV, ResultBank
from .drivers import (run_controller_supervised, run_matrix_sweep_supervised,
                      run_mix_sweep_supervised, run_sampled_supervised,
                      run_shared_supervised, run_sweep_supervised,
                      supervised_queue)
from .faults import FAULT_KINDS, FaultInjected, FaultPlan
from .keys import canonical_digest, canonical_json, code_version, job_key
from .payloads import (CacheJob, ControllerJob, InlineTrace, JobContext,
                       MatrixSweepJob, MixSweepJob, SamplingJob, SharedRunJob,
                       SweepJob, TraceRef, as_trace_source)
from .queue import Job, JobFailed, JobQueue, JobState, RetryPolicy
from .supervisor import SupervisedWorker, WorkerOutcome

__all__ = [
    "ResultBank", "DEFAULT_BANK_ENV",
    "JobQueue", "Job", "JobState", "JobFailed", "RetryPolicy",
    "SupervisedWorker", "WorkerOutcome",
    "SweepJob", "MatrixSweepJob", "MixSweepJob", "SharedRunJob",
    "ControllerJob", "CacheJob",
    "SamplingJob",
    "TraceRef", "InlineTrace", "as_trace_source", "JobContext",
    "FaultPlan", "FaultInjected", "FAULT_KINDS",
    "job_key", "code_version", "canonical_json", "canonical_digest",
    "run_sweep_supervised", "run_matrix_sweep_supervised",
    "run_mix_sweep_supervised", "run_shared_supervised",
    "run_sampled_supervised", "run_controller_supervised",
    "supervised_queue",
]
