"""Job payloads: the work descriptions the supervised runtime executes.

A payload is a frozen, picklable dataclass wrapping the repo's existing
declarative specs (:class:`~repro.sim.sweep.SweepSpec` configs,
:class:`~repro.sim.mixsweep.MixSweepSpec` mixes,
:class:`~repro.cache.spec.CacheSpec` replays, whole
:class:`~repro.sim.multicore.ReconfiguringSharedRun` scenarios) together
with the *trace identity* the job runs against.  Payloads define three
things:

* their canonical identity (every ``compare=True`` field feeds
  :func:`repro.jobs.keys.job_key` — fault plans and raw arrays are
  ``compare=False`` and keyed by digest instead);
* :meth:`execute`, which runs inside a supervised worker process,
  heart-beats at unit boundaries through the :class:`JobContext`, banks
  completed units so a killed worker loses at most one unit, and skips
  units the bank already holds (this is what makes interrupted or
  cancelled sweeps *resume*);
* :meth:`load`, which turns the JSON-able result payload back into the
  rich result object (:class:`~repro.sim.sweep.SweepResult`,
  :class:`~repro.sim.mixsweep.MixRunRecord`, ...) on the submitting
  side.  Floats survive the JSON round trip exactly (shortest-repr), so
  a loaded result is bit-identical to a directly computed one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..cache.cache import CacheStats
from ..cache.spec import CacheSpec, PartitionSpec, TalusSpec, build
from ..workloads.access import Trace
from ..workloads.scale import ChunkedTrace
from .faults import FaultPlan
from .keys import job_key

__all__ = ["TraceRef", "InlineTrace", "as_trace_source", "JobContext",
           "SweepJob", "MatrixSweepJob", "MixSweepJob", "SharedRunJob",
           "ControllerJob", "CacheJob", "SamplingJob", "stats_to_payload",
           "stats_from_payload"]


# --------------------------------------------------------------------- #
# Trace identity
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class TraceRef:
    """A trace identified by its generator: ``(profile, length, seed)``.

    The worker regenerates the trace deterministically, so nothing but
    three scalars crosses the process boundary — and the job key is a
    function of the *identity*, not the (large) data.
    """

    profile: str
    n_accesses: int
    seed: int = 0

    def materialize(self) -> Trace:
        from ..workloads.spec_profiles import get_profile
        return get_profile(self.profile).trace(
            n_accesses=self.n_accesses, seed=self.seed)


@dataclass(frozen=True)
class InlineTrace:
    """A concrete trace carried with the job, keyed by content digest.

    For traces that do not come from a registered profile (externally
    loaded, synthetic one-offs).  The address array itself is excluded
    from comparison/keying — the sha256 ``digest`` stands for it — but is
    shipped with the pickle so workers need no side channel.
    """

    digest: str
    instructions: int
    name: str
    addresses: np.ndarray = field(compare=False, repr=False)

    @classmethod
    def from_trace(cls, trace: Trace | np.ndarray | Sequence[int]
                   ) -> "InlineTrace":
        if isinstance(trace, Trace):
            addrs = np.ascontiguousarray(trace.addresses, dtype=np.int64)
            instructions = trace.instructions
            name = trace.name
        else:
            addrs = np.ascontiguousarray(np.asarray(trace, dtype=np.int64))
            instructions = max(1, int(addrs.size))
            name = "trace"
        if addrs.ndim != 1:
            raise ValueError("trace must be one-dimensional")
        import hashlib
        digest = hashlib.sha256(addrs.tobytes()).hexdigest()
        return cls(digest=digest, instructions=int(instructions), name=name,
                   addresses=addrs)

    def materialize(self) -> Trace:
        return Trace(self.addresses, self.instructions, name=self.name)


def as_trace_source(trace) -> TraceRef | InlineTrace | ChunkedTrace:
    """Coerce any accepted trace argument into a keyable trace source.

    A :class:`~repro.workloads.scale.ChunkedTrace` passes through as-is:
    it is already a frozen dataclass of plain values, so it is both
    picklable and canonically keyable by its *generator identity* — a
    10^9-access trace rides inside a job key as a handful of scalars.
    """
    if isinstance(trace, (TraceRef, InlineTrace, ChunkedTrace)):
        return trace
    return InlineTrace.from_trace(trace)


# --------------------------------------------------------------------- #
# Worker-side execution context
# --------------------------------------------------------------------- #
@dataclass
class JobContext:
    """What a payload sees while executing inside a worker.

    ``beat()`` feeds the supervisor's watchdog; :meth:`unit` combines a
    beat with the payload's fault-injection hook so deterministic fault
    tests fire at exact unit boundaries.  ``bank`` (when the queue was
    given one) is where completed units persist.
    """

    attempt: int = 0
    degraded: bool = False
    bank: object | None = None
    beat: Callable[[], None] = lambda: None
    fault: FaultPlan | None = None

    def unit(self, stage: str, index: int) -> None:
        """Mark a unit boundary: heartbeat, then any planned fault."""
        self.beat()
        if self.fault is not None:
            self.fault.maybe_fire(stage, index, self.attempt, self.degraded)

    def unit_meta(self) -> dict:
        """Provenance recorded with every banked unit."""
        return {"degraded": bool(self.degraded),
                "attempt": int(self.attempt)}


# --------------------------------------------------------------------- #
# Stats serialization
# --------------------------------------------------------------------- #
def stats_to_payload(stats: CacheStats) -> dict:
    """JSON-able form of a :class:`CacheStats` (counters + extra)."""
    return {"accesses": stats.accesses, "hits": stats.hits,
            "misses": stats.misses, "instructions": stats.instructions,
            "bypasses": stats.bypasses, "extra": dict(stats.extra)}


def stats_from_payload(payload: dict) -> CacheStats:
    """Inverse of :func:`stats_to_payload`."""
    return CacheStats(accesses=int(payload["accesses"]),
                      hits=int(payload["hits"]),
                      misses=int(payload["misses"]),
                      instructions=int(payload.get("instructions", 0)),
                      bypasses=int(payload.get("bypasses", 0)),
                      extra=dict(payload.get("extra", {})))


def _key_to_json(key):
    """Sweep-config keys (tuples of plain values) as JSON."""
    if isinstance(key, tuple):
        return {"__tuple__": [_key_to_json(k) for k in key]}
    return key


def _key_from_json(key):
    if isinstance(key, dict) and "__tuple__" in key:
        return tuple(_key_from_json(k) for k in key["__tuple__"])
    return key


# --------------------------------------------------------------------- #
# Payloads
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SweepJob:
    """Replay a batch of sweep configs against one trace.

    Executes config by config (the per-config seeds are stable functions
    of the point itself, so any grouping is bit-identical to a serial
    :func:`~repro.sim.sweep.run_sweep`), banking each config's stats
    under its own content key as it completes.  A retried or resubmitted
    job therefore *resumes*: banked configs are loaded, not re-run.
    """

    trace: TraceRef | InlineTrace
    configs: tuple
    backend: str = "auto"
    fault: FaultPlan | None = field(default=None, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "configs", tuple(self.configs))
        for config in self.configs:
            if getattr(config, "builder", None) is not None:
                raise ValueError(
                    "builder-based sweep configs cannot run supervised: "
                    "their closures are not picklable/keyable; describe "
                    "the point with spec= or (policy, size) instead")

    @classmethod
    def from_spec(cls, trace, spec, backend: str | None = None,
                  fault: FaultPlan | None = None) -> "SweepJob":
        """A job for a whole :class:`~repro.sim.sweep.SweepSpec` (or an
        explicit config sequence)."""
        from ..sim.sweep import SweepSpec
        if isinstance(spec, SweepSpec):
            configs = spec.expand()
            backend = backend if backend is not None else spec.backend
        else:
            configs = tuple(spec)
            backend = backend if backend is not None else "auto"
        return cls(trace=as_trace_source(trace), configs=configs,
                   backend=backend, fault=fault)

    def unit_key(self, config) -> str:
        """Bank key of one config's stats on this trace."""
        return job_key({"unit": "sweep-config", "trace": self.trace,
                        "config": config, "backend": self.backend})

    def execute(self, ctx: JobContext) -> dict:
        from ..sim.sweep import run_sweep
        trace = self.trace.materialize()
        units = []
        banked_units = 0
        for i, config in enumerate(self.configs):
            ctx.unit("unit", i)
            ukey = self.unit_key(config)
            banked = ctx.bank.get(ukey) if ctx.bank is not None else None
            if banked is not None:
                banked_units += 1
                stats = banked
            else:
                result = run_sweep(trace, (config,), backend=self.backend,
                                   max_workers=1, parallel="processes")
                stats = stats_to_payload(result[config.key])
                if ctx.bank is not None:
                    ctx.bank.put(ukey, stats, meta=ctx.unit_meta())
            units.append({"key": _key_to_json(config.key), "stats": stats})
        return {"units": units, "instructions": trace.instructions,
                "banked_units": banked_units}

    @staticmethod
    def load(payload: dict):
        """Rebuild the :class:`~repro.sim.sweep.SweepResult`."""
        from ..sim.sweep import SweepResult
        stats = {_key_from_json(unit["key"]):
                 stats_from_payload(unit["stats"])
                 for unit in payload["units"]}
        return SweepResult(stats,
                           instructions=int(payload.get("instructions", 0)))


@dataclass(frozen=True)
class MatrixSweepJob:
    """Replay a shard of matrix-sweep cells against one trace.

    A shard is typically one ``(policy, scheme)`` row of the matrix —
    every size of that row — as produced by
    :func:`~repro.sim.sweep.matrix_cells`.  Each cell banks under its own
    content key (trace identity + cell + organization parameters, never
    its shard or position), so a killed worker loses at most one cell and
    a resubmitted matrix resumes from the bank.  Per-cell seeds are
    stable functions of ``(seed, policy, scheme, size)`` — independent of
    sharding — so any grouping is bit-identical to one whole-matrix
    :func:`~repro.sim.sweep.run_matrix_sweep` call.
    """

    trace: TraceRef | InlineTrace
    cells: tuple            #: ``(policy, scheme, size_mb)`` tuples
    num_partitions: int = 1
    ways: int = 16
    backend: str = "auto"
    seed: int | None = None
    fault: FaultPlan | None = field(default=None, compare=False)

    def __post_init__(self):
        cells = tuple((str(p), str(s), float(m)) for p, s, m in self.cells)
        if not cells:
            raise ValueError("a matrix-sweep job needs at least one cell")
        object.__setattr__(self, "cells", cells)

    @classmethod
    def shards_for_matrix(cls, trace, *, sizes_mb, policies,
                          schemes=None, num_partitions: int = 1,
                          ways: int = 16, backend: str = "auto",
                          seed: int | None = None,
                          faults=None) -> list["MatrixSweepJob"]:
        """One job per ``(policy, scheme)`` row of the matrix.

        Rows are the natural shard: cells of a row differ only in size,
        and :func:`~repro.sim.sweep.matrix_cells` already groups them
        contiguously (skipping the Belady × partitioned-scheme cells that
        do not exist).  ``faults`` maps row index to a
        :class:`~repro.jobs.faults.FaultPlan` (fault-suite hook).
        """
        from ..sim.sweep import MATRIX_SCHEMES, matrix_cells
        if schemes is None:
            schemes = MATRIX_SCHEMES
        source = as_trace_source(trace)
        rows: dict[tuple[str, str], list] = {}
        for cell in matrix_cells(sizes_mb, policies, schemes):
            rows.setdefault(cell[:2], []).append(cell)
        jobs = []
        for index, row in enumerate(rows.values()):
            fault = None if faults is None else faults.get(index)
            jobs.append(cls(trace=source, cells=tuple(row),
                            num_partitions=num_partitions, ways=ways,
                            backend=backend, seed=seed, fault=fault))
        return jobs

    def unit_key(self, cell) -> str:
        """Bank key of one cell's stats on this trace."""
        return job_key({"unit": "matrix-cell", "trace": self.trace,
                        "cell": list(cell),
                        "num_partitions": int(self.num_partitions),
                        "ways": int(self.ways), "backend": self.backend,
                        "seed": None if self.seed is None
                        else int(self.seed)})

    def execute(self, ctx: JobContext) -> dict:
        from ..sim.sweep import run_matrix_sweep
        from ..workloads.tracestore import TraceStore
        trace = self.trace.materialize()
        units = []
        banked_units = 0
        store = TraceStore()    # put() dedupes: one materialization
        try:
            for i, cell in enumerate(self.cells):
                ctx.unit("unit", i)
                ukey = self.unit_key(cell)
                banked = ctx.bank.get(ukey) if ctx.bank is not None else None
                if banked is not None:
                    banked_units += 1
                    stats = banked
                else:
                    policy, scheme, size_mb = cell
                    result = run_matrix_sweep(
                        trace, sizes_mb=(size_mb,), policies=(policy,),
                        schemes=(scheme,),
                        num_partitions=self.num_partitions, ways=self.ways,
                        backend=self.backend, threads=1, seed=self.seed,
                        trace_store=store)
                    stats = stats_to_payload(result[cell])
                    if ctx.bank is not None:
                        ctx.bank.put(ukey, stats, meta=ctx.unit_meta())
                units.append({"key": _key_to_json(cell), "stats": stats})
        finally:
            store.close()
        return {"units": units, "instructions": trace.instructions,
                "banked_units": banked_units}

    @staticmethod
    def load(payload: dict):
        """Rebuild the :class:`~repro.sim.sweep.SweepResult` keyed by
        ``(policy, scheme, size_mb)`` cells."""
        return SweepJob.load(payload)


@dataclass(frozen=True)
class SamplingJob:
    """Simulate a shard of sampled-simulation windows against one trace.

    The unit of work (and of banking) is one detailed window: each
    window's ``(accesses, misses)`` banks under a key derived from the
    trace identity, the cache spec and the window's bounds/seed — never
    its shard or index — so a SIGKILLed worker loses at most one window
    and a resubmitted estimate resumes from the bank.  Window seeds
    arrive pre-derived inside ``units`` (stable functions of window
    *position*, see :func:`repro.sampling.driver.window_units`), which is
    what keeps supervised, pooled and serial estimates bit-identical.
    """

    trace: TraceRef | InlineTrace | ChunkedTrace
    cache: CacheSpec | TalusSpec
    units: tuple    #: ``(index, warm_start, start, stop, seed)`` tuples
    fault: FaultPlan | None = field(default=None, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "units", tuple(tuple(u) for u in self.units))
        if not isinstance(self.cache, (CacheSpec, TalusSpec)):
            raise TypeError("cache must be a CacheSpec or TalusSpec")

    def unit_key(self, unit) -> str:
        """Bank key of one window's counters (index excluded: the key
        names the window's *content*, not its place in a placement)."""
        _, warm_start, start, stop, seed = unit
        return job_key({"unit": "sampling-window", "trace": self.trace,
                        "cache": self.cache,
                        "window": [int(warm_start), int(start), int(stop),
                                   None if seed is None else int(seed)]})

    def execute(self, ctx: JobContext) -> dict:
        from ..sampling.driver import simulate_window_units
        source = (self.trace if isinstance(self.trace, ChunkedTrace)
                  else self.trace.materialize())
        rows = []
        banked_units = 0
        for i, unit in enumerate(self.units):
            ctx.unit("unit", i)
            index, warm_start, start, stop, seed = unit
            ukey = self.unit_key(unit)
            banked = ctx.bank.get(ukey) if ctx.bank is not None else None
            if banked is not None:
                banked_units += 1
                counters = banked
            else:
                (_, _, accesses, misses, _), = simulate_window_units(
                    source, self.cache, (unit,))
                counters = {"accesses": int(accesses), "misses": int(misses)}
                if ctx.bank is not None:
                    ctx.bank.put(ukey, counters, meta=ctx.unit_meta())
            rows.append([int(index), int(start),
                         int(counters["accesses"]), int(counters["misses"]),
                         int(start - warm_start)])
        return {"rows": rows, "banked_units": banked_units}

    @staticmethod
    def load(payload: dict) -> list[tuple]:
        """The shard's ``(index, start, accesses, misses, warmup)`` rows."""
        return [tuple(int(v) for v in row) for row in payload["rows"]]


@dataclass(frozen=True)
class MixSweepJob:
    """Execute one mix of a multi-mix sweep through the closed Talus loop.

    One job per mix is the sweep's natural fault-isolation unit: a mix's
    applications share one cache and must advance together, so the whole
    mix re-runs on failure — deterministically, thanks to the stable
    per-mix trace seeding.
    """

    spec: object            # MixSweepSpec (frozen dataclass)
    mix: object             # WorkloadMix (frozen dataclass)
    fault: FaultPlan | None = field(default=None, compare=False)

    def execute(self, ctx: JobContext) -> dict:
        from ..sim.mixsweep import _run_one_mix
        ctx.unit("unit", 0)
        record = _run_one_mix(self.spec, self.mix)
        ctx.beat()
        return record.to_payload()

    @staticmethod
    def load(payload: dict):
        """Rebuild the :class:`~repro.sim.mixsweep.MixRunRecord`."""
        from ..sim.mixsweep import MixRunRecord
        return MixRunRecord.from_payload(payload)


@dataclass(frozen=True)
class SharedRunJob:
    """A whole :class:`~repro.sim.multicore.ReconfiguringSharedRun`.

    The run's parameters travel as plain values (the algorithm by its
    :data:`~repro.sim.mixsweep.ALGORITHMS` name); its traces as keyable
    sources.  The payload is the interval records, from which the
    submitting side reconstructs ``run.records`` bit-identically.
    """

    traces: tuple
    total_mb: float
    scheme: str = "ideal"
    algorithm: str = "hill"
    interval_accesses: int = 20_000
    safety_margin: float = 0.05
    warmup_intervals: int = 1
    monitor_points: int = 33
    granularity_mb: float | None = None
    backend: str = "auto"
    fault: FaultPlan | None = field(default=None, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "traces",
                           tuple(as_trace_source(t) for t in self.traces))
        from ..sim.mixsweep import ALGORITHMS
        if self.algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {self.algorithm!r}; valid "
                             f"algorithms: {', '.join(sorted(ALGORITHMS))}")

    def execute(self, ctx: JobContext) -> dict:
        from ..sim.mixsweep import ALGORITHMS
        from ..sim.multicore import ReconfiguringSharedRun
        ctx.unit("unit", 0)
        run = ReconfiguringSharedRun(
            total_mb=self.total_mb, scheme=self.scheme,
            algorithm=ALGORITHMS[self.algorithm],
            interval_accesses=self.interval_accesses,
            safety_margin=self.safety_margin,
            warmup_intervals=self.warmup_intervals,
            monitor_points=self.monitor_points,
            granularity_mb=self.granularity_mb,
            backend=self.backend)
        records = run.run([t.materialize() for t in self.traces])
        ctx.beat()
        return {"records": [
            {"index": r.index, "accesses": list(r.accesses),
             "misses": list(r.misses),
             "allocations_mb": list(r.allocations_mb)}
            for r in records]}

    @staticmethod
    def load(payload: dict):
        """Rebuild the list of interval records."""
        from ..sim.multicore import SharedIntervalRecord
        return [SharedIntervalRecord(
                    index=int(r["index"]),
                    accesses=tuple(int(a) for a in r["accesses"]),
                    misses=tuple(int(m) for m in r["misses"]),
                    allocations_mb=tuple(float(a)
                                         for a in r["allocations_mb"]))
                for r in payload["records"]]


@dataclass(frozen=True)
class ControllerJob:
    """One online-controller churn run
    (:class:`~repro.sim.controller.OnlineTalusController` driven by a
    :class:`~repro.sim.multicore.ChurnSpec`).

    The event schedule is *not* shipped: it is a pure function of the
    frozen spec, so the worker regenerates it and the job key covers it
    through the spec's scalars.  ``ctx.unit`` ticks at every event
    boundary — the heartbeat proves liveness on long streams, and the
    fault hook lets the soak suite kill the worker mid-stream; because
    the payload is the complete record list and every seed derives from
    stable identities, a retried run banks bit-identical records.
    """

    spec: object            # ChurnSpec
    scheme: str = "ideal"
    policy: str = "LRU"
    algorithm: str = "hill"
    base_interval_accesses: int = 20_000
    min_interval_accesses: int | None = None
    max_interval_accesses: int | None = None
    drift_shrink: float = 0.10
    drift_grow: float = 0.02
    safety_margin: float = 0.05
    monitor_points: int = 33
    fairness: float = 0.0
    granularity_lines: int | None = None
    ways: int = 16
    backend: str = "auto"
    base_seed: int = 2015
    fault: FaultPlan | None = field(default=None, compare=False)

    def __post_init__(self):
        from ..sim.mixsweep import ALGORITHMS
        from ..sim.multicore import ChurnSpec
        if not isinstance(self.spec, ChurnSpec):
            raise TypeError("spec must be a ChurnSpec")
        if self.algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {self.algorithm!r}; valid "
                             f"algorithms: {', '.join(sorted(ALGORITHMS))}")

    def execute(self, ctx: JobContext) -> dict:
        from ..sim.controller import OnlineTalusController
        from ..sim.mixsweep import ALGORITHMS
        from ..sim.multicore import churn_events
        events = churn_events(self.spec)
        controller = OnlineTalusController(
            self.spec.total_mb, max_apps=self.spec.max_apps,
            scheme=self.scheme, policy=self.policy,
            algorithm=ALGORITHMS[self.algorithm],
            base_interval_accesses=self.base_interval_accesses,
            min_interval_accesses=self.min_interval_accesses,
            max_interval_accesses=self.max_interval_accesses,
            drift_shrink=self.drift_shrink, drift_grow=self.drift_grow,
            safety_margin=self.safety_margin,
            monitor_points=self.monitor_points, fairness=self.fairness,
            granularity_lines=self.granularity_lines, ways=self.ways,
            backend=self.backend, base_seed=self.base_seed)
        with controller:
            for index, event in enumerate(events):
                ctx.unit("unit", index)
                controller.handle(event)
            result = controller.result()
        ctx.beat()
        return result.to_payload()

    @staticmethod
    def load(payload: dict):
        """Rebuild the run's :class:`~repro.sim.controller.ControllerResult`."""
        from ..sim.controller import ControllerResult
        return ControllerResult.from_payload(payload)


@dataclass(frozen=True)
class CacheJob:
    """Replay one trace through one declaratively specified cache."""

    trace: TraceRef | InlineTrace
    cache: object           # CacheSpec or TalusSpec
    fault: FaultPlan | None = field(default=None, compare=False)

    def __post_init__(self):
        if isinstance(self.cache, PartitionSpec):
            raise TypeError(
                "a bare PartitionSpec needs a per-access partition stream; "
                "submit a TalusSpec (which steers internally) or a "
                "CacheSpec instead")
        if not isinstance(self.cache, (CacheSpec, TalusSpec)):
            raise TypeError(f"cache must be a CacheSpec or TalusSpec, got "
                            f"{type(self.cache).__name__}")
        object.__setattr__(self, "trace", as_trace_source(self.trace))

    def execute(self, ctx: JobContext) -> dict:
        ctx.unit("unit", 0)
        trace = self.trace.materialize()
        cache = build(self.cache)
        if getattr(cache, "supports_batch_replay", False):
            cache.run(trace.addresses)
        else:
            access = cache.access
            for addr in trace.addresses.tolist():
                access(addr)
        ctx.beat()
        stats = getattr(cache, "stats", None)
        if not isinstance(stats, CacheStats):
            stats = cache.logical_stats[0]
        return {"stats": stats_to_payload(stats),
                "instructions": trace.instructions}

    @staticmethod
    def load(payload: dict) -> CacheStats:
        stats = stats_from_payload(payload["stats"])
        if not stats.instructions:
            stats.instructions = int(payload.get("instructions", 0))
        return stats
