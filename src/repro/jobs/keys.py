"""Canonical content-addressed keys for jobs and banked results.

Identical submissions from many users must dedupe to one simulation, and
a result computed yesterday must be trusted today only if nothing that
produced it changed.  Both reduce to one primitive: a stable digest of
*what the job is* —

``job key = sha256(canonical_json(payload description) + code version)``

* **Canonical JSON** normalizes the payload description the way the
  SNIPPETS cache-key exemplars do: dataclasses become sorted-key
  mappings, tuples become lists, numpy scalars become plain Python
  numbers, and mapping keys are sorted — so two descriptions that differ
  only in field order or container flavour hash identically, while any
  semantic difference (another seed, another policy list) changes the
  key.
* **Code version** is a digest over the simulator's own sources (every
  ``repro`` Python module plus the C kernel).  Results are functions of
  the code that produced them; baking the version into the key makes a
  stale bank entry simply *miss* after a code change instead of serving
  wrong-version results.  ``REPRO_CODE_VERSION`` overrides it (CI can
  pin a release tag; tests pin a constant to exercise cross-process
  dedupe).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path

__all__ = ["canonical_json", "canonical_digest", "job_key", "code_version"]

_CODE_VERSION: str | None = None


def _normalize(obj):
    """Recursively normalize a payload description for canonical JSON."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {"__type__": type(obj).__name__,
                **{f.name: _normalize(getattr(obj, f.name))
                   for f in dataclasses.fields(obj) if f.compare}}
    if isinstance(obj, dict):
        items = [(str(k), _normalize(v)) for k, v in obj.items()]
        return dict(sorted(items))
    if isinstance(obj, (list, tuple)):
        return [_normalize(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(_normalize(v) for v in obj)
    if isinstance(obj, (str, bool)) or obj is None:
        return obj
    if isinstance(obj, (int, float)):
        return obj
    # numpy scalars (and anything else with .item()) reduce to Python
    # numbers so array-derived and literal parameters hash identically.
    item = getattr(obj, "item", None)
    if callable(item):
        try:
            return _normalize(item())
        except (TypeError, ValueError):
            pass
    raise TypeError(f"cannot canonicalize {type(obj).__name__!r} for a "
                    f"job key; describe() must reduce to plain values")


def canonical_json(obj) -> str:
    """Deterministic JSON text for ``obj`` (sorted keys, no whitespace)."""
    return json.dumps(_normalize(obj), sort_keys=True,
                      separators=(",", ":"))


def canonical_digest(obj) -> str:
    """sha256 hex digest of :func:`canonical_json`."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


def code_version() -> str:
    """Digest of the simulator sources (cached for the process lifetime).

    Covers every ``*.py`` under the ``repro`` package and the native
    kernel source, in sorted path order.  Set ``REPRO_CODE_VERSION`` to
    bypass the scan with an explicit version token.
    """
    global _CODE_VERSION
    override = os.environ.get("REPRO_CODE_VERSION")
    if override:
        return override
    if _CODE_VERSION is None:
        root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")) + sorted(root.rglob("*.c")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            try:
                digest.update(path.read_bytes())
            except OSError:
                continue
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def job_key(description) -> str:
    """Content address of one job (or one banked unit of a job).

    ``description`` is the payload's :meth:`describe` mapping — the spec,
    the trace identity, and any sub-unit coordinates — combined here with
    :func:`code_version` so results never survive the code that made
    them.
    """
    return canonical_digest({"description": _normalize(description),
                             "code_version": code_version()})
