"""``python -m repro.jobs`` — thin operator CLI for the job runtime.

Four subcommands over a shared bank directory (``--bank``, or
``$REPRO_JOB_BANK``, or ``./.repro-jobs``):

``submit``
    Build a sweep from command-line parameters and run it supervised,
    mirroring live job snapshots into ``<bank>/jobs-state.json`` so other
    terminals can watch.  Exits non-zero if any job fails.  With
    ``--schemes`` the submission is a whole policy × scheme × size
    matrix (one job per ``(policy, scheme)`` row, every cell banked
    individually) instead of a plain policy × size sweep.
``status``
    Print the last known state of every recorded job plus bank counters.
``cancel``
    Drop a cancel marker for a job id (or ``--all``).  The submitting
    process polls the marker directory and cancels the matching live
    jobs; completed units stay banked, so a later resubmission resumes.
``gc``
    Re-verify every bank entry (evicting corrupt ones), reclaim
    orphaned trace-store backings of dead processes, and prune terminal
    jobs from the state file.

The CLI is deliberately daemonless: state lives in files, cancellation
in marker files, results in the bank — all atomic writes, so concurrent
invocations cannot tear each other's data.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from ..core.atomicio import atomic_write_json
from .bank import DEFAULT_BANK_ENV, ResultBank
from .payloads import MatrixSweepJob, SweepJob, TraceRef
from .queue import JobQueue, JobState, RetryPolicy

__all__ = ["main"]

_STATE_FILE = "jobs-state.json"
_CANCEL_DIR = "cancel"


def _bank_dir(args) -> Path:
    if args.bank:
        return Path(args.bank)
    env = os.environ.get(DEFAULT_BANK_ENV)
    return Path(env) if env else Path(".repro-jobs")


def _load_state(bank_dir: Path) -> dict:
    try:
        state = json.loads((bank_dir / _STATE_FILE).read_text())
        return state if isinstance(state, dict) else {}
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        return {}


def _record_state(bank_dir: Path, jobs) -> None:
    """Merge this process's job snapshots into the shared state file."""
    state = _load_state(bank_dir)
    now = time.time()
    for job in jobs:
        state[job.id] = {**job.snapshot(), "pid": os.getpid(),
                         "updated_at": now}
    atomic_write_json(bank_dir / _STATE_FILE, state)


def _drain_cancel_markers(bank_dir: Path, queue: JobQueue) -> None:
    marker_dir = bank_dir / _CANCEL_DIR
    if not marker_dir.is_dir():
        return
    for marker in marker_dir.iterdir():
        if marker.name == "all" or queue.get(marker.name) is not None:
            if marker.name == "all":
                for job in queue.jobs():
                    queue.cancel(job)
            else:
                queue.cancel(marker.name)
            marker.unlink(missing_ok=True)


# --------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------- #
def _submit_payloads(args, trace) -> list:
    """The job payloads one ``submit`` invocation expands to.

    Without ``--schemes`` this is the classic policy × size sweep,
    sharded round-robin across the workers.  With ``--schemes`` the
    whole policy × scheme × size matrix is submitted instead, one
    :class:`MatrixSweepJob` shard per ``(policy, scheme)`` row — each
    completed cell banks under its own content key, so a resubmission
    resumes where the last run stopped.
    """
    policies = tuple(args.policies.split(","))
    sizes = tuple(float(s) for s in args.sizes.split(","))
    if args.schemes:
        schemes = (None if args.schemes == "all"
                   else tuple(args.schemes.split(",")))
        return MatrixSweepJob.shards_for_matrix(
            trace, sizes_mb=sizes, policies=policies, schemes=schemes,
            num_partitions=args.partitions, ways=args.ways,
            backend=args.backend, seed=args.seed)
    from ..sim.sweep import SweepSpec
    spec = SweepSpec(policies=policies, sizes_mb=sizes, ways=args.ways,
                     base_seed=args.seed, backend=args.backend)
    configs = spec.expand()
    shards = max(1, min(args.workers, len(configs)))
    groups = [configs[i::shards] for i in range(shards)]
    return [SweepJob(trace=trace, configs=tuple(group),
                     backend=spec.backend)
            for group in groups if group]


def _cmd_submit(args) -> int:
    bank_dir = _bank_dir(args)
    trace = TraceRef(profile=args.profile, n_accesses=args.accesses,
                     seed=args.trace_seed)
    payloads = _submit_payloads(args, trace)
    with JobQueue(ResultBank(bank_dir), max_workers=args.workers,
                  job_timeout=args.timeout,
                  retry=RetryPolicy(max_retries=args.retries)) as queue:
        jobs = [queue.submit(payload) for payload in payloads]
        _record_state(bank_dir, jobs)
        while not queue.join(timeout=0.2):
            _drain_cancel_markers(bank_dir, queue)
            _record_state(bank_dir, jobs)
        _record_state(bank_dir, jobs)
        report = {"jobs": [job.snapshot() for job in jobs],
                  "bank": queue.bank.stats()}
        ok = all(job.state == JobState.SUCCEEDED for job in jobs)
    json.dump(report, sys.stdout, indent=2)
    print()
    return 0 if ok else 1


def _cmd_status(args) -> int:
    bank_dir = _bank_dir(args)
    state = _load_state(bank_dir)
    bank = ResultBank(bank_dir)
    json.dump({"jobs": sorted(state.values(),
                              key=lambda row: row.get("id", "")),
               "bank": {"entries": len(bank),
                        "directory": str(bank.directory)}},
              sys.stdout, indent=2)
    print()
    return 0


def _cmd_cancel(args) -> int:
    bank_dir = _bank_dir(args)
    marker_dir = bank_dir / _CANCEL_DIR
    marker_dir.mkdir(parents=True, exist_ok=True)
    names = ["all"] if args.all else args.job_ids
    if not names:
        print("nothing to cancel (give job ids or --all)", file=sys.stderr)
        return 2
    for name in names:
        (marker_dir / name).touch()
    print(f"cancel requested for: {', '.join(names)}")
    return 0


def _cmd_gc(args) -> int:
    bank_dir = _bank_dir(args)
    bank = ResultBank(bank_dir)
    report = {"bank": bank.gc()}
    from ..workloads.tracestore import TraceStore
    stale = TraceStore.stale_dirs()
    stale_bytes = sum(TraceStore.dir_bytes(p) for p in stale)
    reclaimed = TraceStore.gc_stale()
    report["stale_trace_dirs"] = [str(p) for p in reclaimed]
    report["trace_gc"] = {"found": len(stale),
                          "reclaimed": len(reclaimed),
                          "reclaimed_bytes": int(stale_bytes)}
    state = _load_state(bank_dir)
    live = {job_id: row for job_id, row in state.items()
            if row.get("state") not in JobState.TERMINAL}
    report["pruned_jobs"] = sorted(set(state) - set(live))
    if bank_dir.is_dir():
        atomic_write_json(bank_dir / _STATE_FILE, live)
    json.dump(report, sys.stdout, indent=2)
    print()
    return 0


# --------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.jobs",
        description="Supervised job runtime: submit, watch, cancel and "
                    "garbage-collect banked sweep jobs.")
    parser.add_argument("--bank", default=None,
                        help=f"bank directory (default: ${DEFAULT_BANK_ENV} "
                             f"or ./.repro-jobs)")
    commands = parser.add_subparsers(dest="command", required=True)

    submit = commands.add_parser(
        "submit", help="run a policy/size sweep under supervision")
    submit.add_argument("--profile", required=True,
                        help="SPEC-style workload profile name")
    submit.add_argument("--accesses", type=int, default=50_000)
    submit.add_argument("--trace-seed", type=int, default=0)
    submit.add_argument("--policies", default="LRU",
                        help="comma-separated replacement policies")
    submit.add_argument("--sizes", default="1,2,4",
                        help="comma-separated cache sizes in paper MB")
    submit.add_argument("--schemes", default=None,
                        help="submit a whole policy x scheme x size matrix "
                             "instead of a plain sweep: comma-separated "
                             "partitioning schemes (none,way,set,ideal,"
                             "vantage) or 'all'; one job per "
                             "(policy, scheme) row, each cell banked "
                             "individually so resubmissions resume")
    submit.add_argument("--partitions", type=int, default=1,
                        help="partitions per partitioned matrix cell "
                             "(only with --schemes)")
    submit.add_argument("--ways", type=int, default=16)
    submit.add_argument("--seed", type=int, default=None,
                        help="sweep base seed (per-config seeds derive "
                             "from it; default: the policies' historical "
                             "seeds)")
    submit.add_argument("--backend", default="auto")
    submit.add_argument("--workers", type=int, default=2)
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="per-attempt wall-clock budget in seconds")
    submit.add_argument("--retries", type=int, default=2)
    submit.set_defaults(func=_cmd_submit)

    status = commands.add_parser(
        "status", help="print recorded job states and bank counters")
    status.set_defaults(func=_cmd_status)

    cancel = commands.add_parser(
        "cancel", help="request cancellation of live jobs")
    cancel.add_argument("job_ids", nargs="*", help="job ids to cancel")
    cancel.add_argument("--all", action="store_true",
                        help="cancel every live job")
    cancel.set_defaults(func=_cmd_cancel)

    gc = commands.add_parser(
        "gc", help="verify bank entries, reclaim stale trace backings, "
                   "prune finished jobs from the state file")
    gc.set_defaults(func=_cmd_gc)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)
