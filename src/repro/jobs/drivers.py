"""Supervised counterparts of the top-level sim drivers.

These are what ``run_sweep(..., supervise=True)``,
``run_mix_sweep(..., supervise=True)`` and
``ReconfiguringSharedRun(supervise=True)`` delegate to.  Each one maps
the driver's inputs onto job payloads, runs them through a
:class:`~repro.jobs.queue.JobQueue`, and reassembles the driver's normal
result type — bit-identical to the unsupervised path, because every
per-unit seed in this codebase is a stable function of the unit's
identity, never of its position in a batch or of which worker ran it.

Fault-injection hooks (``faults=``) take a mapping from unit index (or
mix name) to a :class:`~repro.jobs.faults.FaultPlan`; they exist for the
fault suite and for operators who want to drill recovery paths, and are
excluded from job keys so a faulted run banks under the same address as
a clean one.
"""

from __future__ import annotations

from .bank import ResultBank
from .payloads import (MatrixSweepJob, MixSweepJob, SamplingJob, SweepJob,
                       as_trace_source)
from .queue import JobQueue, RetryPolicy

__all__ = ["run_sweep_supervised", "run_matrix_sweep_supervised",
           "run_mix_sweep_supervised", "run_shared_supervised",
           "run_sampled_supervised", "run_controller_supervised",
           "supervised_queue"]


def supervised_queue(bank=None, *, max_workers: int = 2,
                     job_timeout: float | None = 600.0,
                     heartbeat_timeout: float = 30.0,
                     retry: RetryPolicy | None = None,
                     start_method: str | None = None) -> JobQueue:
    """A :class:`JobQueue` with the drivers' defaults applied."""
    return JobQueue(bank, max_workers=max_workers, job_timeout=job_timeout,
                    heartbeat_timeout=heartbeat_timeout, retry=retry,
                    start_method=start_method)


def _split(items, shards: int) -> list[list]:
    """Deal ``items`` round-robin into at most ``shards`` groups."""
    shards = max(1, min(shards, len(items)))
    groups = [[] for _ in range(shards)]
    for i, item in enumerate(items):
        groups[i % shards].append(item)
    return [g for g in groups if g]


def run_sweep_supervised(trace, spec, *, backend: str = "auto",
                         max_workers: int | None = None,
                         bank: ResultBank | str | None = None,
                         queue: JobQueue | None = None,
                         job_timeout: float | None = 600.0,
                         faults=None):
    """Supervised :func:`~repro.sim.sweep.run_sweep`.

    Configs are sharded round-robin across ``max_workers`` jobs; inside
    each job the worker banks every completed config, so a crash costs
    at most one config and a resubmission resumes from the bank.
    Returns the usual :class:`~repro.sim.sweep.SweepResult`.
    """
    from ..sim.sweep import SweepResult, SweepSpec
    if isinstance(spec, SweepSpec):
        configs = list(spec.expand())
        if backend == "auto":
            backend = spec.backend
        if max_workers is None:
            max_workers = spec.max_workers
    else:
        configs = list(spec)
    source = as_trace_source(trace)
    workers = max_workers if max_workers is not None else 2
    owns_queue = queue is None
    if owns_queue:
        queue = supervised_queue(bank, max_workers=workers,
                                 job_timeout=job_timeout)
    try:
        jobs = []
        for shard_index, shard in enumerate(_split(configs, workers)):
            fault = None if faults is None else faults.get(shard_index)
            jobs.append(queue.submit(SweepJob(
                trace=source, configs=tuple(shard), backend=backend,
                fault=fault)))
        merged: dict = {}
        instructions = 0
        for job in jobs:
            result = job.result()          # raises JobFailed on failure
            merged.update(result.stats)
            instructions = result.instructions or instructions
        return SweepResult(merged, instructions=instructions)
    finally:
        if owns_queue:
            queue.close()


def run_matrix_sweep_supervised(trace, *, sizes_mb, policies=("LRU",),
                                schemes=None, num_partitions: int = 1,
                                ways: int = 16, backend: str = "auto",
                                seed: int | None = None,
                                max_workers: int = 2,
                                bank: ResultBank | str | None = None,
                                queue: JobQueue | None = None,
                                job_timeout: float | None = 600.0,
                                faults=None):
    """Supervised :func:`~repro.sim.sweep.run_matrix_sweep`.

    The matrix shards one ``(policy, scheme)`` row per job; inside each
    job the worker banks every completed cell under its own content key,
    so a crash costs at most one cell and a resubmission resumes from
    the bank.  Per-cell seeds are stable functions of the cell itself,
    so the merged result is bit-identical to one unsupervised
    whole-matrix call.  ``faults`` maps row index to a
    :class:`~repro.jobs.faults.FaultPlan`.  Returns the usual
    cell-keyed :class:`~repro.sim.sweep.SweepResult`.
    """
    from ..sim.sweep import SweepResult
    shards = MatrixSweepJob.shards_for_matrix(
        trace, sizes_mb=sizes_mb, policies=policies, schemes=schemes,
        num_partitions=num_partitions, ways=ways, backend=backend,
        seed=seed, faults=faults)
    owns_queue = queue is None
    if owns_queue:
        queue = supervised_queue(bank, max_workers=max_workers,
                                 job_timeout=job_timeout)
    try:
        jobs = [queue.submit(shard) for shard in shards]
        merged: dict = {}
        instructions = 0
        for job in jobs:
            result = job.result()          # raises JobFailed on failure
            merged.update(result.stats)
            instructions = result.instructions or instructions
        return SweepResult(merged, instructions=instructions)
    finally:
        if owns_queue:
            queue.close()


def run_sampled_supervised(trace, cache, spec, units, *,
                           max_workers: int = 2,
                           bank: ResultBank | str | None = None,
                           queue: JobQueue | None = None,
                           job_timeout: float | None = 600.0,
                           faults=None) -> list[tuple]:
    """Supervised window execution for
    :func:`~repro.sampling.driver.run_sampled`.

    Window units are sharded round-robin across ``max_workers``
    :class:`SamplingJob` payloads; every completed window banks under
    its own content key, so a killed worker loses at most one window and
    a resubmission (same trace/cache/spec) resumes from the bank.
    ``faults`` maps shard index to a :class:`~repro.jobs.faults.FaultPlan`
    (fault-suite hook).  Returns the raw per-window rows; the caller
    assembles the :class:`~repro.sampling.estimator.SampledResult`.
    """
    del spec  # window identity is fully encoded in the pre-derived units
    source = as_trace_source(trace)
    units = list(units)
    owns_queue = queue is None
    if owns_queue:
        queue = supervised_queue(bank, max_workers=max_workers,
                                 job_timeout=job_timeout)
    try:
        jobs = []
        for shard_index, shard in enumerate(_split(units, max_workers)):
            fault = None if faults is None else faults.get(shard_index)
            jobs.append(queue.submit(SamplingJob(
                trace=source, cache=cache, units=tuple(shard),
                fault=fault)))
        rows: list[tuple] = []
        for job in jobs:
            rows.extend(job.result())      # raises JobFailed on failure
        return rows
    finally:
        if owns_queue:
            queue.close()


def run_mix_sweep_supervised(mixes, spec, *,
                             bank: ResultBank | str | None = None,
                             queue: JobQueue | None = None,
                             max_workers: int | None = None,
                             job_timeout: float | None = 1800.0,
                             faults=None):
    """Supervised :func:`~repro.sim.mixsweep.run_mix_sweep`.

    One job per mix (the natural isolation unit of the closed loop);
    each finished mix banks individually, so an interrupted sweep
    resumes by skipping the mixes already in the bank.  Returns the
    usual :class:`~repro.sim.mixsweep.MixSweepResult`.
    """
    from ..sim.mixsweep import MixSweepResult
    mixes = list(mixes)
    workers = max_workers if max_workers is not None \
        else max(spec.max_workers, 1)
    owns_queue = queue is None
    if owns_queue:
        queue = supervised_queue(bank, max_workers=workers,
                                 job_timeout=job_timeout)
    try:
        jobs = []
        for mix in mixes:
            fault = None if faults is None else faults.get(mix.name)
            jobs.append(queue.submit(MixSweepJob(spec=spec, mix=mix,
                                                 fault=fault)))
        records = [job.result() for job in jobs]
        return MixSweepResult(spec, mixes, records)
    finally:
        if owns_queue:
            queue.close()


def run_controller_supervised(spec, *, bank=None,
                              queue: JobQueue | None = None,
                              job_timeout: float | None = 1800.0,
                              fault=None, algorithm=None,
                              **controller_kwargs):
    """Run one online-controller churn stream
    (:func:`~repro.sim.multicore.run_churn` with ``supervise=True``) in a
    supervised worker; returns its
    :class:`~repro.sim.controller.ControllerResult`.

    ``algorithm`` may be a registered name or the registered callable
    itself; the remaining keyword arguments are the scalar
    :class:`~repro.jobs.payloads.ControllerJob` fields (scheme, interval
    and drift knobs, ...).  The whole stream banks as one unit under the
    spec's content key, so resubmitting after a crash (or a mid-stream
    SIGKILL — see the fault suite) resumes from the bank bit-identically.
    """
    from ..sim.mixsweep import ALGORITHMS
    from .payloads import ControllerJob
    if algorithm is None:
        algorithm = "hill"
    if not isinstance(algorithm, str):
        names = {id(fn): name for name, fn in ALGORITHMS.items()}
        name = names.get(id(algorithm))
        if name is None:
            raise ValueError(
                "supervise=True needs a registered partitioning algorithm "
                f"({', '.join(sorted(ALGORITHMS))}); got "
                f"{getattr(algorithm, '__name__', algorithm)!r}")
        algorithm = name
    payload = ControllerJob(spec=spec, algorithm=algorithm, fault=fault,
                            **controller_kwargs)
    owns_queue = queue is None
    if owns_queue:
        queue = supervised_queue(bank, max_workers=1,
                                 job_timeout=job_timeout)
    try:
        return queue.submit(payload).result()
    finally:
        if owns_queue:
            queue.close()


def run_shared_supervised(run, traces, *, bank=None,
                          queue: JobQueue | None = None,
                          job_timeout: float | None = 1800.0,
                          fault=None):
    """Run one :class:`~repro.sim.multicore.ReconfiguringSharedRun` in a
    supervised worker; returns its interval records."""
    from ..sim.mixsweep import ALGORITHMS
    from .payloads import SharedRunJob
    names = {id(fn): name for name, fn in ALGORITHMS.items()}
    algorithm = names.get(id(run.algorithm))
    if algorithm is None:
        raise ValueError(
            "supervise=True needs a registered partitioning algorithm "
            f"({', '.join(sorted(ALGORITHMS))}); got "
            f"{getattr(run.algorithm, '__name__', run.algorithm)!r}")
    payload = SharedRunJob(
        traces=tuple(as_trace_source(t) for t in traces),
        total_mb=run.total_mb, scheme=run.scheme, algorithm=algorithm,
        interval_accesses=run.interval_accesses,
        safety_margin=run.safety_margin,
        warmup_intervals=run.warmup_intervals,
        monitor_points=run.monitor_points,
        granularity_mb=run.granularity_mb, backend=run.backend,
        fault=fault)
    owns_queue = queue is None
    if owns_queue:
        queue = supervised_queue(bank, max_workers=1,
                                 job_timeout=job_timeout)
    try:
        return queue.submit(payload).result()
    finally:
        if owns_queue:
            queue.close()
