"""Deterministic fault injection for the supervised job runtime.

Every recovery path of the runtime — SIGKILLed workers, watchdog-killed
hangs, native-kernel crashes degraded to ``REPRO_NATIVE=0`` — must be
*provable*, which means faults have to fire at exact, repeatable points.
A :class:`FaultPlan` rides along on a job payload (excluded from the
canonical job key and from equality, like a sweep config's ``builder``)
and the payload calls :meth:`FaultPlan.maybe_fire` at its unit
boundaries; the plan decides, purely from ``(stage, unit index, attempt,
degraded)``, whether to die, hang, or raise right there.

Fault kinds
-----------
``"kill"``
    ``os.kill(self, signal)`` — default SIGKILL: the worker vanishes
    without a traceback, exactly like an OOM kill.
``"hang"``
    Sleep far beyond any watchdog budget; the supervisor must time the
    worker out and kill it.
``"native-crash"``
    SIGSEGV *unless the worker is degraded* — the deterministic stand-in
    for a native-kernel fault: the first attempt dies like a segfaulting
    kernel, the quarantine-retry under ``REPRO_NATIVE=0`` sails through.
``"exception"``
    An ordinary Python error (the boring failure class retries handle).

Plans fire on specific attempts (default: only the first), so a faulted
job's *retry* computes exactly what an unfaulted run computes — which is
what lets the fault suite assert bit-identical results.
"""

from __future__ import annotations

import os
import signal as _signal
import time
from dataclasses import dataclass

__all__ = ["FaultPlan", "FaultInjected", "FAULT_KINDS"]

#: Recognized fault kinds.
FAULT_KINDS = ("kill", "hang", "native-crash", "exception")


class FaultInjected(RuntimeError):
    """The error raised by an ``"exception"``-kind fault."""


@dataclass(frozen=True)
class FaultPlan:
    """When and how a worker should fail, as a pure function of progress.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    stage:
        The unit-boundary label the plan listens on (payloads report
        ``"unit"`` before each config/mix/run unit).
    index:
        Unit index at which to fire.
    attempts:
        Job attempts (0-based) on which the plan fires; default: only
        the first, so retries recover.
    signal:
        Signal for ``"kill"`` (default SIGKILL).
    hang_seconds:
        Sleep length for ``"hang"`` — far beyond any sane watchdog.
    """

    kind: str
    stage: str = "unit"
    index: int = 0
    attempts: tuple[int, ...] = (0,)
    signal: int = int(_signal.SIGKILL)
    hang_seconds: float = 3600.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: "
                             f"{FAULT_KINDS}")
        object.__setattr__(self, "attempts", tuple(self.attempts))

    def maybe_fire(self, stage: str, index: int, attempt: int,
                   degraded: bool) -> None:
        """Fire the fault if this progress point matches the plan."""
        if stage != self.stage or index != self.index:
            return
        if attempt not in self.attempts:
            return
        if self.kind == "kill":
            os.kill(os.getpid(), self.signal)
            # A SIGKILL never returns; weaker signals may need a beat to
            # be delivered before the unit proceeds.
            time.sleep(5.0)
        elif self.kind == "hang":
            time.sleep(self.hang_seconds)
        elif self.kind == "native-crash":
            if not degraded:
                os.kill(os.getpid(), int(_signal.SIGSEGV))
                time.sleep(5.0)
        elif self.kind == "exception":
            raise FaultInjected(
                f"injected exception at {stage}[{index}] attempt {attempt}")
