"""The job queue: submission, scheduling, retry, and the degradation ladder.

:class:`JobQueue` is the front door of the fault-tolerant runtime.  A
submission is a payload (:mod:`repro.jobs.payloads`); the queue

* derives its canonical :func:`~repro.jobs.keys.job_key` and **dedupes**
  — an identical live submission returns the existing job, and a banked
  result satisfies the submission without spawning anything;
* runs attempts in :class:`~repro.jobs.supervisor.SupervisedWorker`
  processes, up to ``max_workers`` at a time, off a daemon scheduler
  thread;
* applies the **retry policy** — bounded attempts with exponential
  backoff and deterministic per-``(key, attempt)`` jitter, so retry
  storms decorrelate without introducing nondeterminism into tests;
* walks the **degradation ladder** on a signal death: the crash is
  recorded in the job's quarantine log, and the job gets one extra
  retry in a *degraded* worker (``REPRO_NATIVE=0`` for that process) on
  the theory that the native kernel, not the physics, segfaulted.  The
  degradation is stamped into the result metadata so downstream
  consumers can see a result came from the pure-Python path;
* **banks** successful results, so the next identical submission — in
  this process or any later one — is a cache hit.

States: ``pending -> running -> succeeded | failed | cancelled``, with
``pending`` doubling as the backoff waiting room between attempts.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from .bank import ResultBank
from .keys import job_key
from .supervisor import SupervisedWorker, WorkerOutcome

__all__ = ["JobQueue", "Job", "JobState", "JobFailed", "RetryPolicy"]


class JobState:
    """Lifecycle states of a :class:`Job`."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: States a job never leaves.
    TERMINAL = (SUCCEEDED, FAILED, CANCELLED)


class JobFailed(RuntimeError):
    """Raised by :meth:`Job.result` when the job did not succeed."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``delay(key, attempt)`` is a pure function: backoff grows as
    ``base * factor**attempt`` and the jitter term is hashed from
    ``(seed, key, attempt)``, so two queues with the same policy place
    the same job's retries at the same offsets (reproducible tests)
    while *different* jobs' retries spread out (no thundering herd).
    """

    max_retries: int = 2
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def delay(self, key: str, attempt: int) -> float:
        base = self.backoff_base * self.backoff_factor ** max(0, attempt - 1)
        if not self.jitter:
            return base
        token = f"{self.seed}|{key}|{attempt}".encode()
        digest = hashlib.sha256(token).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2 ** 64
        return base * (1.0 + self.jitter * fraction)


@dataclass
class Job:
    """One tracked submission.  Created by :meth:`JobQueue.submit`."""

    id: str
    key: str
    payload: object
    state: str = JobState.PENDING
    attempts: int = 0
    degraded: bool = False
    error: str | None = None
    #: Quarantine log: one entry per abnormal worker death
    #: (``{"outcome", "attempt", "signal", "error", "degraded"}``).
    crashes: list = field(default_factory=list)
    result_payload: object = None
    meta: dict = field(default_factory=dict)
    submitted_at: float = 0.0
    finished_at: float | None = None
    done: threading.Event = field(default_factory=threading.Event,
                                  repr=False)

    def result(self):
        """The rich result object, or raise :class:`JobFailed`.

        Blocks until the job is terminal; the raw banked payload is in
        :attr:`result_payload`, and ``payload.load`` lifts it back into
        the domain type (``SweepResult``, ``MixRunRecord``, ...).
        """
        self.done.wait()
        if self.state != JobState.SUCCEEDED:
            raise JobFailed(f"job {self.id} {self.state}: "
                            f"{self.error or 'no result'}")
        loader = getattr(self.payload, "load", None)
        if loader is None:
            return self.result_payload
        return loader(self.result_payload)

    def snapshot(self) -> dict:
        """JSON-able status row (CLI ``status`` output)."""
        return {"id": self.id, "key": self.key, "state": self.state,
                "attempts": self.attempts, "degraded": self.degraded,
                "crashes": len(self.crashes), "error": self.error,
                "meta": dict(self.meta),
                "payload": type(self.payload).__name__}


class JobQueue:
    """Supervised, deduplicating, bank-backed job executor.

    Parameters
    ----------
    bank:
        A :class:`~repro.jobs.bank.ResultBank`, a directory path for
        one, or ``None`` to run without durability (no dedupe across
        processes, no resume).
    max_workers:
        Concurrent supervised worker processes.
    retry:
        The :class:`RetryPolicy`; retries apply to worker crashes,
        watchdog kills and payload exceptions alike.
    job_timeout / heartbeat_timeout / heartbeat_interval:
        Watchdog budgets handed to every
        :class:`~repro.jobs.supervisor.SupervisedWorker`.

    Use as a context manager (or call :meth:`close`) to stop the
    scheduler and reap workers deterministically.
    """

    def __init__(self, bank: ResultBank | str | os.PathLike | None = None,
                 *, max_workers: int = 2, retry: RetryPolicy | None = None,
                 job_timeout: float | None = 600.0,
                 heartbeat_timeout: float = 30.0,
                 heartbeat_interval: float = 0.1,
                 start_method: str | None = None,
                 poll_interval: float = 0.02):
        if bank is not None and not isinstance(bank, ResultBank):
            bank = ResultBank(bank)
        self.bank = bank
        self.max_workers = max(1, int(max_workers))
        self.retry = retry if retry is not None else RetryPolicy()
        self.job_timeout = job_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.heartbeat_interval = heartbeat_interval
        self.start_method = start_method
        self.poll_interval = poll_interval

        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}           # id -> job
        self._by_key: dict[str, Job] = {}         # key -> live/terminal job
        self._pending: deque[Job] = deque()
        self._waiting: list[tuple[float, Job]] = []   # backoff room
        self._running: dict[str, SupervisedWorker] = {}  # job id -> worker
        self._cancelling: set[str] = set()
        self._sequence = itertools.count(1)
        self._wake = threading.Event()
        self._shutdown = False
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, payload) -> Job:
        """Enqueue a payload; returns its (possibly pre-existing) job.

        Dedupe ladder: a live or succeeded job with the same canonical
        key is returned as-is; a banked result satisfies the submission
        immediately (``job.meta["bank_hit"]``); otherwise a fresh job is
        scheduled.  Failed or cancelled previous submissions do *not*
        block a resubmission — that is how a cancelled sweep is resumed,
        and the bank makes the resumed run skip completed units.
        """
        key = job_key(payload)
        with self._lock:
            existing = self._by_key.get(key)
            if existing is not None and existing.state not in (
                    JobState.FAILED, JobState.CANCELLED):
                return existing
            job = Job(id=f"j{next(self._sequence):04d}-{key[:10]}",
                      key=key, payload=payload, submitted_at=time.time())
            self._jobs[job.id] = job
            self._by_key[key] = job
            if self.bank is not None:
                banked = self.bank.get(key, with_meta=True)
                if banked is not None:
                    payload_value, meta = banked
                    job.result_payload = payload_value
                    job.meta = {**meta, "bank_hit": True}
                    job.state = JobState.SUCCEEDED
                    job.finished_at = time.time()
                    job.done.set()
                    return job
            self._pending.append(job)
            self._ensure_thread()
        self._wake.set()
        return job

    def submit_many(self, payloads) -> list[Job]:
        """Submit several payloads; order of the returned jobs matches."""
        return [self.submit(p) for p in payloads]

    # ------------------------------------------------------------------ #
    # Introspection and control
    # ------------------------------------------------------------------ #
    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def status(self) -> list[dict]:
        """Status snapshot of every tracked job (CLI ``status``)."""
        return [job.snapshot() for job in self.jobs()]

    def wait(self, job: Job, timeout: float | None = None) -> Job:
        """Block until ``job`` is terminal (or ``timeout`` elapses)."""
        job.done.wait(timeout)
        return job

    def join(self, timeout: float | None = None) -> bool:
        """Wait for every tracked job to reach a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for job in self.jobs():
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            if not job.done.wait(remaining):
                return False
        return True

    def cancel(self, job: Job | str) -> bool:
        """Cancel a job: dequeue it, or kill its running worker.

        Returns ``False`` when the job is already terminal.  Cancelled
        jobs stay in the history; resubmitting the same payload later
        starts fresh (and resumes from the bank).
        """
        job_id = job if isinstance(job, str) else job.id
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state in JobState.TERMINAL:
                return False
            if job.state == JobState.PENDING:
                self._finish_locked(job, JobState.CANCELLED,
                                    error="cancelled before start")
                return True
            self._cancelling.add(job.id)
        self._wake.set()
        return True

    # ------------------------------------------------------------------ #
    # Scheduler
    # ------------------------------------------------------------------ #
    def _ensure_thread(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(target=self._loop, daemon=True,
                                            name="job-scheduler")
            self._thread.start()

    def _loop(self) -> None:
        while True:
            with self._lock:
                if self._shutdown:
                    self._abort_all_locked()
                    return
                self._promote_waiting_locked()
                self._launch_locked()
                running = list(self._running.items())
                cancelling = set(self._cancelling)
            for job_id, worker in running:
                if job_id in cancelling:
                    worker.kill()
                    worker.close()
                    with self._lock:
                        self._running.pop(job_id, None)
                        self._cancelling.discard(job_id)
                        job = self._jobs[job_id]
                        self._finish_locked(job, JobState.CANCELLED,
                                            error="cancelled while running")
                    continue
                outcome = worker.check()
                if outcome is None:
                    continue
                self._settle(job_id, worker, outcome)
            self._wake.wait(self.poll_interval)
            self._wake.clear()

    def _promote_waiting_locked(self) -> None:
        now = time.monotonic()
        due = [entry for entry in self._waiting if entry[0] <= now]
        if due:
            self._waiting = [e for e in self._waiting if e[0] > now]
            for _, job in sorted(due, key=lambda e: e[0]):
                self._pending.append(job)

    def _launch_locked(self) -> None:
        while self._pending and len(self._running) < self.max_workers:
            job = self._pending.popleft()
            if job.state in JobState.TERMINAL:
                continue
            job.state = JobState.RUNNING
            worker = SupervisedWorker(
                job.payload, attempt=job.attempts, degraded=job.degraded,
                bank_dir=None if self.bank is None else self.bank.directory,
                heartbeat_interval=self.heartbeat_interval,
                heartbeat_timeout=self.heartbeat_timeout,
                job_timeout=self.job_timeout,
                start_method=self.start_method)
            job.attempts += 1
            self._running[job.id] = worker

    def _settle(self, job_id: str, worker: SupervisedWorker,
                outcome: str) -> None:
        """Apply one finished attempt's outcome to its job."""
        if outcome in (WorkerOutcome.STALLED, WorkerOutcome.TIMEOUT):
            worker.kill()
        worker.close()
        with self._lock:
            self._running.pop(job_id, None)
            job = self._jobs[job_id]
            if job.state in JobState.TERMINAL:
                return
            if outcome == WorkerOutcome.DONE:
                job.result_payload = worker.result
                job.meta = {"degraded": job.degraded,
                            "attempts": job.attempts,
                            "crashes": list(job.crashes)}
                if self.bank is not None:
                    self.bank.put(job.key, worker.result, meta=job.meta)
                self._finish_locked(job, JobState.SUCCEEDED)
                return
            job.error = worker.error
            if outcome in (WorkerOutcome.CRASH, WorkerOutcome.STALLED,
                           WorkerOutcome.TIMEOUT):
                job.crashes.append({
                    "outcome": outcome, "attempt": job.attempts - 1,
                    "signal": worker.signal, "error": worker.error,
                    "degraded": job.degraded})
            # Degradation ladder: a signal death on a non-degraded job
            # earns one quarantine retry with the native kernel disabled,
            # over and above the ordinary retry budget.
            if (outcome == WorkerOutcome.CRASH and worker.signal is not None
                    and not job.degraded):
                job.degraded = True
                self._requeue_locked(job)
                return
            if job.attempts <= self.retry.max_retries:
                self._requeue_locked(job)
                return
            self._finish_locked(job, JobState.FAILED)

    def _requeue_locked(self, job: Job) -> None:
        job.state = JobState.PENDING
        delay = self.retry.delay(job.key, job.attempts)
        self._waiting.append((time.monotonic() + delay, job))

    def _finish_locked(self, job: Job, state: str,
                       error: str | None = None) -> None:
        job.state = state
        if error is not None:
            job.error = error
        job.finished_at = time.time()
        job.done.set()

    def _abort_all_locked(self) -> None:
        for job_id, worker in list(self._running.items()):
            worker.kill()
            worker.close()
            self._finish_locked(self._jobs[job_id], JobState.CANCELLED,
                                error="queue shut down")
        self._running.clear()
        for job in list(self._pending) + [j for _, j in self._waiting]:
            if job.state not in JobState.TERMINAL:
                self._finish_locked(job, JobState.CANCELLED,
                                    error="queue shut down")
        self._pending.clear()
        self._waiting.clear()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the scheduler; cancel whatever has not finished."""
        with self._lock:
            self._shutdown = True
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        # No scheduler ever started: settle the books directly.
        with self._lock:
            if self._pending or self._waiting or self._running:
                self._abort_all_locked()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
