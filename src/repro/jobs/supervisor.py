"""Supervised worker processes: one job attempt, one process.

The supervision model is deliberately boring: every job attempt gets a
fresh OS process, a one-way pipe back to the supervisor, and a heartbeat
thread.  A fresh process per attempt is what buys crash isolation — a
native kernel that SIGSEGVs, an allocator blow-up the OOM killer
resolves, a wedged extension loop: all of them take down *the worker*,
and the supervisor reads the verdict off ``exitcode`` instead of
sharing the corpse's address space.

Two watchdog clocks run in the parent (:meth:`SupervisedWorker.check`):

* a **heartbeat timeout** — the worker's daemon beat thread pings every
  ``heartbeat_interval`` seconds; silence means the *process* is wedged
  (stop-the-world native hang, livelocked GIL holder);
* a **job timeout** — a hard wall-clock budget per attempt, which also
  catches the case a beat thread would mask: Python-level loops that
  happily heartbeat forever while making no progress.

Degraded attempts (the quarantine-retry after a signal death) call
:func:`repro.cache._native.disable_native` *first thing* in the child,
before any simulation code runs, so the retry is pure Python end to end
— equivalent to ``REPRO_NATIVE=0`` for that process only.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import threading
import time
import traceback

__all__ = ["SupervisedWorker", "WorkerOutcome", "resolve_start_method"]

_WORKER_START_ENV = "REPRO_JOBS_START"


def resolve_start_method(method: str | None = None) -> str:
    """Pick the multiprocessing start method for workers.

    Explicit argument wins, then ``REPRO_JOBS_START``, then ``fork``
    where available (cheap, and degraded retries reset the inherited
    native-kernel state via :func:`~repro.cache._native.disable_native`),
    else ``spawn``.
    """
    method = method or os.environ.get(_WORKER_START_ENV)
    available = mp.get_all_start_methods()
    if method:
        if method not in available:
            raise ValueError(f"start method {method!r} not available here "
                             f"(have: {', '.join(available)})")
        return method
    return "fork" if "fork" in available else "spawn"


def _worker_main(conn, payload, attempt: int, degraded: bool,
                 bank_dir: str | None, heartbeat_interval: float) -> None:
    """Child entry point: execute one payload attempt, report by pipe."""
    if degraded:
        # Before any cache code touches the kernel: this attempt is the
        # quarantine retry and must run pure Python.
        from ..cache._native import disable_native
        disable_native()

    lock = threading.Lock()

    def send(message) -> None:
        with lock:
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):
                pass  # supervisor gone; nothing useful left to do

    stop = threading.Event()

    def beat_loop() -> None:
        while not stop.wait(heartbeat_interval):
            send(("beat", None))

    threading.Thread(target=beat_loop, daemon=True,
                     name="job-heartbeat").start()

    from .bank import ResultBank
    from .payloads import JobContext
    context = JobContext(
        attempt=attempt, degraded=degraded,
        bank=ResultBank(bank_dir) if bank_dir else None,
        beat=lambda: send(("beat", None)),
        fault=getattr(payload, "fault", None))
    try:
        result = payload.execute(context)
    except BaseException:
        send(("error", traceback.format_exc()))
    else:
        send(("done", result))
    finally:
        stop.set()
        with lock:
            try:
                conn.close()
            except OSError:
                pass


class WorkerOutcome:
    """How one worker attempt ended — the supervisor's classification."""

    #: Payload returned a result (carried in :attr:`SupervisedWorker.result`).
    DONE = "done"
    #: Payload raised; traceback in :attr:`SupervisedWorker.error`.
    ERROR = "error"
    #: Process died without reporting — signal or bad exit.
    CRASH = "crash"
    #: Heartbeats stopped arriving for longer than ``heartbeat_timeout``.
    STALLED = "stalled"
    #: Attempt exceeded its hard wall-clock budget.
    TIMEOUT = "timeout"


class SupervisedWorker:
    """One supervised attempt of one job payload.

    The supervisor drives this with :meth:`check` from its scheduling
    loop; a non-``None`` return is the attempt's final classification
    (one of the :class:`WorkerOutcome` constants).  After ``CRASH`` the
    delivered signal, if any, is in :attr:`signal`.
    """

    def __init__(self, payload, *, attempt: int = 0, degraded: bool = False,
                 bank_dir: str | os.PathLike | None = None,
                 heartbeat_interval: float = 0.1,
                 heartbeat_timeout: float = 30.0,
                 job_timeout: float | None = 600.0,
                 start_method: str | None = None):
        self.payload = payload
        self.attempt = attempt
        self.degraded = degraded
        self.heartbeat_timeout = heartbeat_timeout
        self.job_timeout = job_timeout
        context = mp.get_context(resolve_start_method(start_method))
        self._conn, child_conn = context.Pipe(duplex=False)
        self.process = context.Process(
            target=_worker_main,
            args=(child_conn, payload, attempt, degraded,
                  None if bank_dir is None else str(bank_dir),
                  heartbeat_interval),
            daemon=True, name=f"job-worker-a{attempt}")
        self.result = None
        self.error: str | None = None
        self.signal: int | None = None
        self._reported: str | None = None
        self.process.start()
        child_conn.close()
        self.started = time.monotonic()
        self.last_beat = self.started

    # ------------------------------------------------------------------ #
    def _drain(self) -> None:
        try:
            while self._conn.poll(0):
                kind, value = self._conn.recv()
                self.last_beat = time.monotonic()
                if kind == "done":
                    self._reported = WorkerOutcome.DONE
                    self.result = value
                elif kind == "error":
                    self._reported = WorkerOutcome.ERROR
                    self.error = value
        except (EOFError, OSError):
            pass  # pipe closed; exitcode is now the source of truth

    def check(self) -> str | None:
        """Classify the attempt, or ``None`` while it is still healthy.

        Order matters: a report that already arrived wins over the exit
        status (a worker that sent ``done`` and then got reaped is a
        success), and death wins over watchdog clocks.
        """
        self._drain()
        if self._reported is not None:
            return self._reported
        exitcode = self.process.exitcode
        if exitcode is not None:
            self._drain()  # the final report may race the exit
            if self._reported is not None:
                return self._reported
            if exitcode < 0:
                self.signal = -exitcode
                self.error = (f"worker killed by signal {self.signal} "
                              f"({signal.Signals(self.signal).name})")
            else:
                self.error = f"worker exited with status {exitcode} " \
                             f"without reporting a result"
            return WorkerOutcome.CRASH
        now = time.monotonic()
        if self.job_timeout is not None \
                and now - self.started > self.job_timeout:
            self.error = (f"job exceeded its {self.job_timeout:g}s "
                          f"wall-clock budget")
            return WorkerOutcome.TIMEOUT
        if now - self.last_beat > self.heartbeat_timeout:
            self.error = (f"no heartbeat for {now - self.last_beat:.1f}s "
                          f"(budget {self.heartbeat_timeout:g}s)")
            return WorkerOutcome.STALLED
        return None

    # ------------------------------------------------------------------ #
    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """Hard-stop the worker (SIGKILL); used by watchdog and cancel."""
        try:
            self.process.kill()
        except (ValueError, OSError):
            pass

    def close(self, join_timeout: float = 5.0) -> None:
        """Reap the process and release the pipe."""
        try:
            self.process.join(timeout=join_timeout)
            if self.process.is_alive():
                self.kill()
                self.process.join(timeout=join_timeout)
            self.process.close()
        except (ValueError, OSError):
            pass
        try:
            self._conn.close()
        except OSError:
            pass
