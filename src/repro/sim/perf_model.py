"""Analytic core performance model: MPKI → IPC → execution time.

The paper measures IPC with detailed OOO core simulation.  Since Talus's
multi-programmed results (Figs. 11–13) are aggregates that depend on IPC
only through each application's miss rate, we use the standard analytic
CPI-stack substitute:

    CPI(mpki) = CPI_core + (mpki / 1000) * penalty
    IPC(mpki) = 1 / CPI(mpki)

``CPI_core`` is the application's compute-bound CPI (``1 / ipc_peak``) and
``penalty`` the average *exposed* stall cycles per LLC miss (memory latency
divided by the application's memory-level parallelism).  Both are per
:class:`~repro.workloads.spec_profiles.AppProfile` parameters.

This preserves monotonicity (fewer misses, more IPC), saturation (an app
with low memory intensity barely moves) and the relative magnitudes that
drive weighted/harmonic speedups — which is what the reproduction targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads.spec_profiles import AppProfile

__all__ = ["ipc_from_mpki", "execution_time", "AppPerformance"]


def ipc_from_mpki(profile: AppProfile, mpki: float) -> float:
    """IPC of ``profile`` when its LLC miss rate is ``mpki``."""
    if mpki < 0:
        raise ValueError("mpki must be non-negative")
    cpi = 1.0 / profile.ipc_peak + (mpki / 1000.0) * profile.miss_penalty_cycles
    return 1.0 / cpi


def execution_time(profile: AppProfile, mpki: float,
                   instructions: float = 1e9) -> float:
    """Cycles to execute ``instructions`` at the given miss rate."""
    if instructions <= 0:
        raise ValueError("instructions must be positive")
    return instructions / ipc_from_mpki(profile, mpki)


@dataclass(frozen=True)
class AppPerformance:
    """Per-application outcome of a system-level experiment."""

    name: str
    allocation_mb: float
    mpki: float
    ipc: float

    def speedup_over(self, baseline_ipc: float) -> float:
        """IPC ratio relative to a baseline IPC."""
        if baseline_ipc <= 0:
            raise ValueError("baseline_ipc must be positive")
        return self.ipc / baseline_ipc
