"""System-level simulation: drivers, performance model, multi-core experiments."""

from .config import MULTI_PROGRAMMED, SINGLE_THREADED, SystemConfig
from .engine import (lru_mpki_curve, simulate_policy_at_size,
                     simulated_mpki_curve, talus_simulated_mpki_curve)
from .sweep import SweepConfig, SweepResult, SweepSpec, run_sweep
from .metrics import (coefficient_of_variation, gmean, harmonic_speedup,
                      weighted_speedup)
from .mixsweep import (ALGORITHMS, MixRunRecord, MixSweepResult, MixSweepSpec,
                       mix_trace_seed, run_mix_sweep)
from .controller import (AccessBatch, AppArrive, AppDepart, BatchRecord,
                         ControllerResult, OnlineTalusController,
                         QosInfeasibleError, QosPolicy, QosUpdate,
                         ReplanRecord)
from .multicore import (SCHEMES, ChurnSpec, MixResult,
                        ReconfiguringSharedRun, SharedCacheExperiment,
                        SharedIntervalRecord, churn_events, run_churn,
                        shared_cache_equilibrium)
from .perf_model import AppPerformance, execution_time, ipc_from_mpki
from .reconfigure import (IntervalRecord, ReconfiguringTalusRun, SharedPlan,
                          plan_shared_allocations)

__all__ = [
    "SystemConfig",
    "SINGLE_THREADED",
    "MULTI_PROGRAMMED",
    "lru_mpki_curve",
    "simulated_mpki_curve",
    "simulate_policy_at_size",
    "talus_simulated_mpki_curve",
    "SweepSpec",
    "SweepConfig",
    "SweepResult",
    "run_sweep",
    "weighted_speedup",
    "harmonic_speedup",
    "coefficient_of_variation",
    "gmean",
    "ipc_from_mpki",
    "execution_time",
    "AppPerformance",
    "SharedCacheExperiment",
    "MixResult",
    "SCHEMES",
    "shared_cache_equilibrium",
    "ReconfiguringTalusRun",
    "IntervalRecord",
    "ReconfiguringSharedRun",
    "SharedIntervalRecord",
    "MixSweepSpec",
    "MixRunRecord",
    "MixSweepResult",
    "run_mix_sweep",
    "mix_trace_seed",
    "ALGORITHMS",
    "OnlineTalusController",
    "ControllerResult",
    "QosPolicy",
    "QosInfeasibleError",
    "AppArrive",
    "AppDepart",
    "QosUpdate",
    "AccessBatch",
    "BatchRecord",
    "ReplanRecord",
    "ChurnSpec",
    "churn_events",
    "run_churn",
    "SharedPlan",
    "plan_shared_allocations",
]
