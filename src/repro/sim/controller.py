"""Online streaming Talus controller: churn, QoS floors, drift-adaptive replans.

The fixed-mix loops (:class:`~repro.sim.multicore.ReconfiguringSharedRun`)
replay a *fixed* set of applications on a *fixed* replanning period.  A
real deployment is neither: applications arrive and depart, their QoS
contracts change, and their miss curves drift through phases.  This module
promotes reconfiguration from a batch loop into an event-driven subsystem:

* :class:`OnlineTalusController` wraps one warm
  :class:`~repro.cache.talus_cache.TalusCache` (``max_apps`` logical
  partitions, all initially empty) and consumes a stream of events —
  :class:`AppArrive`, :class:`AppDepart`, :class:`QosUpdate` and
  :class:`AccessBatch` — instead of a trace list.  Partitions are created
  and destroyed on the warm substrate through the existing ``reallocate``
  machinery (one atomic ``configure_many`` per replan); the cache is never
  rebuilt.
* Replanning runs the shared replan core
  (:func:`~repro.sim.reconfigure.plan_shared_allocations`) under per-app
  QoS constraints: minimum-allocation floors (never violated after any
  event) and an optional fairness blend toward the equal split.
* The replanning interval is not fixed: per-app
  :class:`~repro.monitor.drift.CurveDriftTracker` scores (from the
  :class:`~repro.monitor.umon.CombinedUMON`'s incremental stack-distance
  state) shorten the interval when curves drift and lengthen it when they
  are stable.

Determinism
-----------
Everything is bit-reproducible: event times are trace-indexed (an event's
effect depends only on the accesses that preceded it, never on wall
clock), monitor seeds derive from the stable app identity via
:func:`~repro.cache.hashing.derive_seed`, and every planned shadow-pair
request is quantised onto the scheme's allocation quantum (whole lines for
ideal/vantage, whole ways/sets for the coarse schemes) so grants equal
requests exactly on every backend.  The recorded plans therefore replay
bit-identically through explicit ``configure_many`` calls on the object
model — the property the differential tests pin.

QoS semantics
-------------
A floor is admitted only if the sum of all active floors fits the
partitionable capacity (otherwise :class:`QosInfeasibleError`); once
admitted it holds after *every* event: each replan starts every app at its
floor (snapped up to the allocation quantum) and only contests the budget
above the floors.  A departing app's pair is zeroed in the same atomic
step that redistributes its capacity, so its lines are reclaimed
immediately and no transient over-commitment occurs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from ..cache._native import resolve_threads
from ..cache.hashing import derive_seed
from ..cache.spec import PartitionSpec, TalusSpec, build
from ..cache.talus_cache import TalusCache
from ..cache.threadbatch import resolve_parallel
from ..core.misscurve import MissCurve
from ..core.talus import TalusConfig
from ..monitor.drift import CurveDriftTracker
from ..monitor.umon import CombinedUMON
from ..partitioning.hill_climbing import hill_climbing
from ..workloads.scale import paper_mb_to_lines
from .reconfigure import plan_shared_allocations

__all__ = ["QosPolicy", "AppArrive", "AppDepart", "QosUpdate", "AccessBatch",
           "BatchRecord", "ReplanRecord", "OnlineTalusController",
           "ControllerResult", "QosInfeasibleError", "ZERO_CONFIG"]


class QosInfeasibleError(ValueError):
    """The requested QoS floors cannot all fit the partitionable capacity."""


#: The configuration of an empty logical partition (both shadow partitions
#: released; the pair keeps existing but owns no capacity).
ZERO_CONFIG = TalusConfig(total_size=0.0, alpha=0.0, beta=0.0, rho=0.0,
                          s1=0.0, s2=0.0, degenerate=True)


# --------------------------------------------------------------------------- #
# Events
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class QosPolicy:
    """Per-application QoS contract: a minimum-allocation floor in paper MB."""

    min_mb: float = 0.0

    def __post_init__(self):
        if self.min_mb < 0:
            raise ValueError("min_mb must be non-negative")


@dataclass(frozen=True)
class AppArrive:
    """A new application joins the shared cache."""

    app: str
    qos: QosPolicy = QosPolicy()


@dataclass(frozen=True)
class AppDepart:
    """An application leaves; its partition is destroyed and reclaimed."""

    app: str


@dataclass(frozen=True)
class QosUpdate:
    """An active application's QoS contract changes."""

    app: str
    qos: QosPolicy


@dataclass(frozen=True, eq=False)
class AccessBatch:
    """A contiguous batch of one application's accesses (trace-indexed time)."""

    app: str
    addresses: np.ndarray

    def __post_init__(self):
        object.__setattr__(self, "addresses",
                           np.ascontiguousarray(self.addresses,
                                                dtype=np.int64))


# --------------------------------------------------------------------------- #
# Records
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BatchRecord:
    """Outcome of one :class:`AccessBatch`."""

    seq: int
    app: str
    slot: int
    accesses: int
    misses: int


@dataclass(frozen=True)
class ReplanRecord:
    """One atomic reconfiguration of the shared cache.

    ``planned`` holds the exact (already quantised) per-slot
    :class:`~repro.core.talus.TalusConfig` requests handed to
    ``configure_many`` (``None`` = slot left untouched); replaying them on
    a fresh cache of the same spec reproduces the controller's partition
    state bit-identically.  ``granted`` is the post-grant capacity of each
    slot's shadow pair (equal to the planned totals — quantised requests
    are granted exactly).
    """

    seq: int
    trigger: str                     # "arrive" | "depart" | "qos" | "interval"
    apps: tuple                      # app id (or None) per slot, post-event
    planned: tuple                   # TalusConfig | None per slot
    granted: tuple                   # granted lines per slot (pair total)
    floors: tuple                    # QoS floor lines per slot
    interval: int                    # replan interval in effect afterwards
    drift: float                     # max per-app curve drift (interval replans)


@dataclass(frozen=True)
class ControllerResult:
    """Everything one controller run produced, payload-serialisable."""

    batches: tuple
    replans: tuple

    @property
    def reconfigurations(self) -> int:
        return len(self.replans)

    def to_payload(self) -> dict:
        """JSON-safe representation (exact float round-trip)."""
        def config_payload(c):
            if c is None:
                return None
            return [c.total_size, c.alpha, c.beta, c.rho, c.s1, c.s2,
                    bool(c.degenerate)]
        return {
            "batches": [[b.seq, b.app, b.slot, b.accesses, b.misses]
                        for b in self.batches],
            "replans": [{"seq": r.seq, "trigger": r.trigger,
                         "apps": list(r.apps),
                         "planned": [config_payload(c) for c in r.planned],
                         "granted": list(r.granted),
                         "floors": list(r.floors),
                         "interval": r.interval, "drift": r.drift}
                        for r in self.replans],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ControllerResult":
        def config_from(item):
            if item is None:
                return None
            t, alpha, beta, rho, s1, s2, degenerate = item
            return TalusConfig(total_size=t, alpha=alpha, beta=beta, rho=rho,
                               s1=s1, s2=s2, degenerate=degenerate)
        batches = tuple(BatchRecord(seq=b[0], app=b[1], slot=b[2],
                                    accesses=b[3], misses=b[4])
                        for b in payload["batches"])
        replans = tuple(ReplanRecord(
            seq=r["seq"], trigger=r["trigger"], apps=tuple(r["apps"]),
            planned=tuple(config_from(c) for c in r["planned"]),
            granted=tuple(r["granted"]), floors=tuple(r["floors"]),
            interval=r["interval"], drift=r["drift"])
            for r in payload["replans"])
        return cls(batches=batches, replans=replans)

    def signature(self) -> tuple:
        """Hashable digest of the run for bit-identity assertions."""
        return (tuple((b.seq, b.app, b.slot, b.accesses, b.misses)
                      for b in self.batches),
                tuple((r.seq, r.trigger, r.apps, r.granted, r.floors,
                       r.interval, r.drift) for r in self.replans))


# --------------------------------------------------------------------------- #
# The controller
# --------------------------------------------------------------------------- #
class OnlineTalusController:
    """Event-driven Talus partitioning of one warm shared cache.

    Parameters
    ----------
    total_mb:
        Shared LLC capacity in paper MB.
    max_apps:
        Number of logical partition slots built into the warm substrate
        (the cache's hardware partition count is fixed at construction;
        the controller multiplexes arriving apps onto free slots).
    scheme, policy, backend:
        Underlying partitioned-cache organisation, as in
        :class:`~repro.sim.multicore.ReconfiguringSharedRun`.
    algorithm:
        Partitioning algorithm the Talus wrapper runs on the hulls
        (default hill climbing).
    base_interval_accesses:
        Starting replanning interval, in accesses summed across apps.
    min_interval_accesses, max_interval_accesses:
        Clamp of the adaptive interval (defaults: base / 8 and base * 8).
    drift_shrink, drift_grow:
        Curve-drift thresholds: an interval replan that observes
        ``drift > drift_shrink`` halves the interval, one that observes
        ``drift < drift_grow`` doubles it.
    fairness:
        Optional blend factor in ``[0, 1]`` toward the equal split
        (0 = pure miss-minimising, 1 = fair).
    granularity_lines:
        Planning step in lines (default: partitionable / 64, snapped up
        to the scheme's allocation quantum).
    parallel:
        "auto", "threads" or "processes"/"off": in threads mode each
        batch's UMON recording overlaps the shared cache's replay of the
        same batch on a worker thread (the two touch disjoint state), as
        in the fixed-mix drivers.  Results are bit-identical either way.
    base_seed:
        Root of all derived seeds (monitors).
    validate:
        Run :meth:`check_invariants` after every event (cheap; on by
        default).
    """

    def __init__(self, total_mb: float, *, max_apps: int = 32,
                 scheme: str = "ideal", policy: str = "LRU",
                 algorithm: Callable = hill_climbing,
                 base_interval_accesses: int = 20_000,
                 min_interval_accesses: int | None = None,
                 max_interval_accesses: int | None = None,
                 drift_shrink: float = 0.10, drift_grow: float = 0.02,
                 safety_margin: float = 0.05, monitor_points: int = 33,
                 fairness: float = 0.0,
                 granularity_lines: int | None = None,
                 ways: int = 16, backend: str = "auto",
                 parallel: str = "off", threads: int | None = None,
                 base_seed: int = 2015, validate: bool = True):
        if max_apps <= 0:
            raise ValueError("max_apps must be positive")
        if not 0.0 <= fairness <= 1.0:
            raise ValueError("fairness must be in [0, 1]")
        if drift_grow > drift_shrink:
            raise ValueError("drift_grow must not exceed drift_shrink")
        lines = paper_mb_to_lines(total_mb)
        if lines <= 0:
            raise ValueError("total_mb too small for the configured scale")
        self.total_mb = float(total_mb)
        self.max_apps = int(max_apps)
        self.scheme = scheme
        self.algorithm = algorithm
        self.safety_margin = float(safety_margin)
        self.monitor_points = int(monitor_points)
        self.fairness = float(fairness)
        self.base_seed = int(base_seed)
        self.validate = bool(validate)
        self.lines = lines

        spec = TalusSpec(partition=PartitionSpec(
            scheme=scheme, capacity_lines=lines,
            num_partitions=2 * self.max_apps, policy=policy, ways=ways,
            backend=backend), num_logical=self.max_apps)
        self.talus: TalusCache = build(spec)
        self.partitionable = float(self.talus.base.partitionable_lines)
        self.quantum = self._scheme_quantum()
        if granularity_lines is None:
            granularity_lines = max(1, int(self.partitionable) // 64)
        self.granularity = float(self._snap_up(float(granularity_lines)))
        # Release the build-time default allocations: every slot starts
        # empty, so arriving apps claim capacity from a known-zero state
        # (the differential mirror performs the same reset).
        self.talus.configure_many([ZERO_CONFIG] * self.max_apps)

        self.base_interval = max(1, int(base_interval_accesses))
        self.min_interval = max(1, int(min_interval_accesses
                                       if min_interval_accesses is not None
                                       else self.base_interval // 8))
        self.max_interval = max(self.min_interval,
                                int(max_interval_accesses
                                    if max_interval_accesses is not None
                                    else self.base_interval * 8))
        self.interval = min(max(self.base_interval, self.min_interval),
                            self.max_interval)
        self.drift_shrink = float(drift_shrink)
        self.drift_grow = float(drift_grow)

        self._slots: list[str | None] = [None] * self.max_apps
        self._slot_of: dict[str, int] = {}
        self._floors: dict[str, float] = {}
        self._monitors: dict[str, CombinedUMON] = {}
        self._drift: dict[str, CurveDriftTracker] = {}
        self._since_replan = 0
        self._seq = 0
        self.batches: list[BatchRecord] = []
        self.replans: list[ReplanRecord] = []

        mode = resolve_parallel(parallel) if parallel != "off" else "off"
        self._pool = None
        if mode == "threads":
            from concurrent.futures import ThreadPoolExecutor
            self._pool = ThreadPoolExecutor(
                max_workers=max(1, min(2, resolve_threads(threads))))

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the monitor-overlap thread pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "OnlineTalusController":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Event interface
    # ------------------------------------------------------------------ #
    def handle(self, event) -> None:
        """Apply one event to the controller's state machine."""
        seq = self._seq
        self._seq += 1
        if isinstance(event, AppArrive):
            self._arrive(seq, event)
        elif isinstance(event, AppDepart):
            self._depart(seq, event)
        elif isinstance(event, QosUpdate):
            self._qos_update(seq, event)
        elif isinstance(event, AccessBatch):
            self._batch(seq, event)
        else:
            raise TypeError(f"unknown controller event: {event!r}")
        if self.validate:
            self.check_invariants()

    def run(self, events: Iterable) -> ControllerResult:
        """Consume a whole event stream and return the run's records."""
        for event in events:
            self.handle(event)
        return self.result()

    def result(self) -> ControllerResult:
        return ControllerResult(batches=tuple(self.batches),
                                replans=tuple(self.replans))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def active_apps(self) -> tuple:
        """App ids currently holding a slot, in slot order."""
        return tuple(app for app in self._slots if app is not None)

    def slot_of(self, app: str) -> int:
        return self._slot_of[app]

    def granted_lines(self, app: str) -> float:
        """Current capacity of ``app``'s shadow pair, in lines."""
        slot = self._slot_of[app]
        pair = self.talus.shadow_pair(slot)
        granted = self.talus.base.granted_allocations()
        return float(granted[pair.alpha_index] + granted[pair.beta_index])

    def floor_lines(self, app: str) -> float:
        """``app``'s QoS floor, snapped to the allocation quantum."""
        return self._floors[app]

    # ------------------------------------------------------------------ #
    # Invariants
    # ------------------------------------------------------------------ #
    def check_invariants(self) -> None:
        """Assert the controller's state-machine invariants.

        * granted allocations never exceed (and, whenever at least one
          app is active and a replan has run, sum exactly to) the
          partitionable capacity;
        * every active app's pair holds at least its QoS floor;
        * every free slot's pair is fully reclaimed: zero granted
          capacity and zero resident lines.
        """
        granted = self.talus.base.granted_allocations()
        total = float(sum(granted))
        if total > self.partitionable + 1e-6:
            raise AssertionError(
                f"granted {total} exceeds partitionable {self.partitionable}")
        replanned = bool(self.replans)
        if replanned and self._slot_of and self.scheme != "way":
            # Way partitioning force-distributes spare ways even over
            # empty partitions, so exact conservation is checked per-app
            # there (spares only exist while no app is active).
            if abs(total - self.partitionable) > 1e-6:
                raise AssertionError(
                    f"granted {total} != partitionable {self.partitionable}")
        for slot, app in enumerate(self._slots):
            pair = self.talus.shadow_pair(slot)
            pair_lines = float(granted[pair.alpha_index]
                               + granted[pair.beta_index])
            if app is not None:
                floor = self._floors[app]
                if replanned and pair_lines + 1e-6 < floor:
                    raise AssertionError(
                        f"QoS floor violated for {app!r}: granted "
                        f"{pair_lines} < floor {floor}")
            else:
                if self.scheme == "way" and not self._slot_of:
                    # With *no* active apps, way partitioning has no one
                    # to give the ways to — every way stays owned, and
                    # resident lines persist until the next arrival's
                    # reallocation evicts them.  With >= 1 active app the
                    # zero request is honoured exactly and the checks
                    # below apply.
                    continue
                occupancy = (self.talus.base.partition_occupancy(
                    pair.alpha_index)
                    + self.talus.base.partition_occupancy(pair.beta_index))
                if occupancy:
                    raise AssertionError(
                        f"freed slot {slot} still holds {occupancy} lines")
                if replanned and self.scheme != "way" and pair_lines:
                    raise AssertionError(
                        f"freed slot {slot} still granted {pair_lines} lines")

    # ------------------------------------------------------------------ #
    # Event handlers
    # ------------------------------------------------------------------ #
    def _arrive(self, seq: int, event: AppArrive) -> None:
        app = event.app
        if app in self._slot_of:
            raise ValueError(f"app {app!r} is already active")
        try:
            slot = self._slots.index(None)
        except ValueError:
            raise ValueError(
                f"controller is full ({self.max_apps} apps)") from None
        floor = self._floor_for(event.qos)
        self._require_feasible(sum(self._floors.values()) + floor)
        self._slots[slot] = app
        self._slot_of[app] = slot
        self._floors[app] = floor
        primary_rate = min(1.0, max(1.0 / 64.0, 2048.0 / self.lines))
        self._monitors[app] = CombinedUMON(
            llc_size=self.lines, points=self.monitor_points,
            primary_rate=primary_rate, coverage_ratio=0.25,
            seed=derive_seed(self.base_seed, f"umon|{app}"))
        self._drift[app] = CurveDriftTracker()
        self._replan(seq, "arrive")

    def _depart(self, seq: int, event: AppDepart) -> None:
        app = event.app
        if app not in self._slot_of:
            raise ValueError(f"app {app!r} is not active")
        slot = self._slot_of.pop(app)
        self._slots[slot] = None
        self._floors.pop(app)
        self._monitors.pop(app)
        self._drift.pop(app)
        self._replan(seq, "depart", depart_slot=slot)

    def _qos_update(self, seq: int, event: QosUpdate) -> None:
        app = event.app
        if app not in self._slot_of:
            raise ValueError(f"app {app!r} is not active")
        floor = self._floor_for(event.qos)
        others = sum(f for a, f in self._floors.items() if a != app)
        self._require_feasible(others + floor)
        self._floors[app] = floor
        if self.replans and self.granted_lines(app) + 1e-6 < floor:
            # The new floor is violated right now — an immediate replan
            # restores it; otherwise it simply binds from the next replan.
            self._replan(seq, "qos")

    def _batch(self, seq: int, event: AccessBatch) -> None:
        app = event.app
        if app not in self._slot_of:
            raise ValueError(f"app {app!r} is not active")
        slot = self._slot_of[app]
        addresses = event.addresses
        monitor = self._monitors[app]
        if addresses.size:
            if self._pool is not None:
                # The UMON only touches its own sampled stack-distance
                # state, the cache only its partition state — so the
                # monitor folds the batch in on a worker thread while the
                # shared cache replays it here (joined before any reader).
                future = self._pool.submit(monitor.record_trace, addresses)
                stats = self.talus.run_chunk(addresses, slot)
                future.result()
            else:
                monitor.record_trace(addresses)
                stats = self.talus.run_chunk(addresses, slot)
            misses = stats.misses
        else:
            misses = 0
        self.batches.append(BatchRecord(seq=seq, app=app, slot=slot,
                                        accesses=int(addresses.size),
                                        misses=int(misses)))
        self._since_replan += int(addresses.size)
        if self._since_replan >= self.interval:
            self._replan(seq, "interval")

    # ------------------------------------------------------------------ #
    # Replanning
    # ------------------------------------------------------------------ #
    def _replan(self, seq: int, trigger: str,
                depart_slot: int | None = None) -> None:
        """One atomic reconfiguration of every logical partition.

        Every slot gets an explicit config — :data:`ZERO_CONFIG` for the
        inactive ones — so the request vector never depends on stored
        effective configs (which coarse schemes can pollute: way
        partitioning force-distributes spare ways when *all* requests are
        zero, and the resulting grants must not leak into later requests).
        """
        del depart_slot  # implied: the departed slot is no longer active
        configs: list[TalusConfig | None] = [ZERO_CONFIG] * self.max_apps
        active = [(slot, app) for slot, app in enumerate(self._slots)
                  if app is not None]
        drift = 0.0
        if active:
            sizes, planned, drift = self._plan_active(active,
                                                      adapt=(trigger
                                                             == "interval"))
            for (slot, _), config in zip(active, planned):
                configs[slot] = config
        if trigger == "interval":
            if drift > self.drift_shrink:
                self.interval = max(self.min_interval, self.interval // 2)
            elif drift < self.drift_grow:
                self.interval = min(self.max_interval, self.interval * 2)
        self.talus.configure_many(configs)
        self._since_replan = 0
        granted = self.talus.base.granted_allocations()
        pair_totals = tuple(
            float(granted[self.talus.shadow_pair(slot).alpha_index]
                  + granted[self.talus.shadow_pair(slot).beta_index])
            for slot in range(self.max_apps))
        floors = tuple(self._floors.get(app, 0.0) if app is not None else 0.0
                       for app in self._slots)
        self.replans.append(ReplanRecord(
            seq=seq, trigger=trigger, apps=tuple(self._slots),
            planned=tuple(configs), granted=pair_totals, floors=floors,
            interval=self.interval, drift=float(drift)))

    def _plan_active(self, active: list, adapt: bool
                     ) -> tuple[list, list, float]:
        """Sizes and quantised configs for the active slots.

        Apps whose monitor has not observed anything yet ("cold") cannot
        be planned from a curve; each one is reserved an equal share
        (never below its floor), and the warm apps contest the remaining
        budget through the replan core.  Returns (sizes, configs, drift)
        aligned with ``active``; drift is the maximum per-app curve drift
        (only measured on ``adapt`` replans, to keep the adaptive signal
        tied to interval boundaries).
        """
        budget = self.partitionable
        floors = [self._floors[app] for _, app in active]
        cold = [i for i, (_, app) in enumerate(active)
                if self._monitors[app].primary.total_accesses == 0]
        warm = [i for i in range(len(active)) if i not in cold]
        sizes = [0.0] * len(active)

        equal = self._snap_down(budget / len(active))
        for i in cold:
            sizes[i] = max(floors[i], equal)
        # Cap the cold reservations so every floor still fits.
        warm_floor = sum(floors[i] for i in warm)
        while sum(sizes[i] for i in cold) + warm_floor > budget + 1e-9:
            shrinkable = [i for i in cold
                          if sizes[i] - self.quantum >= floors[i] - 1e-9]
            target = max(shrinkable, key=lambda i: sizes[i] - floors[i])
            sizes[target] -= self.quantum

        drift = 0.0
        if warm:
            curves = []
            for i in warm:
                app = active[i][1]
                curve = self._planning_curve(self._monitors[app])
                if adapt:
                    drift = max(drift, self._drift[app].update(curve))
                curves.append(curve)
            warm_budget = budget - sum(sizes[i] for i in cold)
            plan = plan_shared_allocations(
                curves, warm_budget, granularity=self.granularity,
                algorithm=self.algorithm, safety_margin=self.safety_margin,
                floors=[floors[i] for i in warm], fairness=self.fairness,
                conserve=True)
            configs_by_index: dict[int, TalusConfig] = {}
            for i, size, config in zip(warm, plan.sizes, plan.configs):
                sizes[i] = float(size)
                configs_by_index[i] = self._quantize_config(config)
        else:
            # Everyone is cold: hand the residual out a quantum at a
            # time, round-robin from the first active slot.
            residual = budget - sum(sizes)
            i = 0
            while residual >= self.quantum - 1e-9 and cold:
                sizes[cold[i % len(cold)]] += self.quantum
                residual -= self.quantum
                i += 1
            configs_by_index = {}
        configs = []
        for i in range(len(active)):
            if i in configs_by_index:
                configs.append(configs_by_index[i])
            else:
                t = sizes[i]
                configs.append(TalusConfig(
                    total_size=t, alpha=t, beta=t, rho=0.0, s1=0.0, s2=t,
                    degenerate=True))
        return sizes, configs, drift

    def _planning_curve(self, monitor: CombinedUMON) -> MissCurve:
        """The monitor's current curve in planner units (lines, misses
        per kilo-access): normalising by each app's observed accesses
        makes streams of different intensities commensurable."""
        raw = monitor.miss_curve()
        observed = max(monitor.primary.total_accesses, 1)
        return MissCurve(raw.sizes,
                         raw.misses * 1000.0 / observed).monotone_envelope()

    def _quantize_config(self, config: TalusConfig) -> TalusConfig:
        """Snap a pair's shadow sizes onto the allocation quantum.

        The planned total is already a whole number of quanta; snapping
        the alpha/beta split keeps it exact, so the underlying scheme
        grants every request verbatim (no coarsening surprises) and the
        coarsening correction (``rho = s1 / alpha``) is the identity up
        to the snap.
        """
        total = config.total_size
        s1 = min(max(round(config.s1 / self.quantum) * self.quantum, 0.0),
                 total)
        return TalusConfig(total_size=total, alpha=config.alpha,
                           beta=config.beta, rho=config.rho,
                           s1=float(s1), s2=float(total - s1),
                           degenerate=config.degenerate)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _scheme_quantum(self) -> float:
        """The scheme's allocation quantum in lines (1 for line-granular
        schemes, ``num_sets`` for way partitioning, ``ways`` for set
        partitioning)."""
        base = self.talus.base
        if self.scheme == "way":
            return float(base.num_sets)
        if self.scheme == "set":
            return float(base.ways)
        return 1.0

    def _snap_up(self, lines: float) -> float:
        q = self.quantum
        return float(int(-(-lines // q)) * q) if lines > 0 else 0.0

    def _snap_down(self, lines: float) -> float:
        q = self.quantum
        return float(int(lines // q) * q)

    def _floor_for(self, qos: QosPolicy) -> float:
        return self._snap_up(float(paper_mb_to_lines(qos.min_mb)))

    def _require_feasible(self, floor_total: float) -> None:
        if floor_total > self.partitionable + 1e-9:
            raise QosInfeasibleError(
                f"QoS floors ({floor_total:.0f} lines) exceed the "
                f"partitionable capacity ({self.partitionable:.0f} lines)")
