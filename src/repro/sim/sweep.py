"""Batched sweep engine: many cache configurations, one trace pass.

Every figure of the paper is a *sweep* — a miss/MPKI curve over many cache
sizes, policies, or schemes.  The seed implementation replayed the full
trace once per point through the object-model cache; this module separates
the *what* (a :class:`SweepSpec` describing all the points) from the *how*
(interchangeable simulation backends):

* ``object`` — the reference per-set policy-object model.  All configs of
  the sweep advance together in a single streaming pass over the trace
  (the trace is materialized and decoded once, not once per point).
* ``array``  — the numpy/native array cache
  (:mod:`repro.cache.arraycache`): each config is replayed by a compiled
  kernel, typically 10-30x faster than the object model.  LRU/LIP configs
  additionally share a *single* kernel pass over the trace
  (:func:`~repro.cache.arraycache.run_lru_family_batch`): all sizes of a
  recency-family size sweep advance together, decoding the trace once.
* ``auto``   — the array backend for every policy (the matrix is total):
  bit-identical to the object model on the exact tier (LRU, LIP, SRRIP,
  PDP), seeded-deterministic on the randomized tier, miss-count-exact
  for Belady.  This is the default; ask for ``backend="object"``
  explicitly to stream the reference model.

Independent configs can also run in parallel, in one of two ways selected
by ``parallel=``:

* ``"threads"`` — every batch-capable config becomes a
  :class:`~repro.cache.threadbatch.ReplayTask` and the whole sweep is one
  GIL-releasing ``batch_run_threaded`` call into the native kernel
  (width from ``threads=`` or ``REPRO_THREADS``); object-model and
  builder configs stream serially as before.
* ``"processes"`` — independent configs fan out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``max_workers > 1``),
  with the address array shared through a
  :class:`~repro.workloads.tracestore.TraceStore` memmap so workers
  attach to one materialized trace instead of re-pickling it.
* ``"auto"`` (default) — threads when the native kernel is available,
  the process pool otherwise (``REPRO_NATIVE=0``).

Results are independent of the execution strategy: every config derives a
deterministic seed from ``(base_seed, config index)``, so serial, batched,
threaded and pooled runs all agree bit for bit.

Example
-------
>>> spec = SweepSpec(sizes_mb=(1, 2, 4, 8), policies=("LRU", "SRRIP"))
>>> result = run_sweep(trace, spec)
>>> result.mpki_curve("LRU")        # MissCurve over the four sizes
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

import numpy as np

from ..cache._native import resolve_threads
from ..cache.arraycache import run_lru_family_batch
from ..cache.cache import CacheStats
from ..cache.factory import BACKENDS, build_cache
from ..cache.hashing import derive_seed
from ..cache.threadbatch import PARALLEL_MODES, resolve_parallel, run_tasks
from ..core.misscurve import MissCurve
from ..workloads.access import Trace
from ..workloads.scale import paper_mb_to_lines
from ..workloads.tracestore import TraceHandle, TraceStore

__all__ = ["SweepConfig", "SweepSpec", "SweepResult", "run_sweep",
           "run_matrix_sweep", "matrix_cells", "MATRIX_SCHEMES",
           "DEFAULT_WAYS"]

#: Default associativity of simulated caches (scaled stand-in for the
#: paper's 32-way LLC).
DEFAULT_WAYS = 16


def _derive_seed(base_seed: int, policy: str, size_mb: float) -> int:
    """Deterministic per-config seed, a stable function of the point itself.

    Deriving from ``(policy, size)`` rather than the config's position in
    the sweep makes seeds independent of execution order and sweep
    composition: a point simulated alone, in a batched sweep, or in a
    process-pool worker always draws the same stream.  (The shared
    primitive is :func:`repro.cache.hashing.derive_seed`; the sampling
    driver derives its per-window seeds the same way.)
    """
    return derive_seed(base_seed, f"{policy}|{float(size_mb)!r}")


@dataclass(frozen=True)
class SweepConfig:
    """One point of a sweep.

    Standard points are ``(policy, size_mb)`` pairs simulated through
    :func:`repro.cache.factory.build_cache`.  Richer organizations ride
    the same engine two ways:

    * ``spec`` — a declarative :mod:`repro.cache.spec` spec
      (:class:`~repro.cache.spec.TalusSpec` or an explicit
      :class:`~repro.cache.spec.CacheSpec`; the built cache must accept
      single-address accesses).  Specs are picklable, so these configs
      can fan out over a process pool, and caches whose backend supports
      batched replay run one native-kernel pass instead of joining the
      per-access streaming loop.
    * ``builder`` — a zero-argument callable returning any object with an
      ``access(address) -> bool`` method (the legacy escape hatch, e.g.
      for custom policy factories).  Builder configs always run
      in-process.
    """

    key: Hashable
    size_mb: float
    policy: str = "LRU"
    ways: int = DEFAULT_WAYS
    seed: int | None = None
    policy_kwargs: tuple = ()
    builder: Callable[[], object] | None = field(
        default=None, compare=False)
    spec: object | None = None

    @property
    def capacity_lines(self) -> int:
        """Simulated capacity in lines."""
        return paper_mb_to_lines(self.size_mb)

    def build(self, backend: str, trace=None):
        """Instantiate the cache for this config on ``backend``.

        ``spec`` and ``builder`` configs carry their own backend choice;
        ``backend`` applies to the standard (policy, size) points.
        ``trace`` is attached to offline (Belady) configs whose spec does
        not already carry one — MIN replays exactly the sweep's trace.
        """
        if self.spec is not None:
            from ..cache.spec import build as build_spec
            spec = self.spec
            if (trace is not None and getattr(spec, "policy", None) == "Belady"
                    and getattr(spec, "trace", None) is None):
                spec = spec.with_trace(trace)
            return build_spec(spec)
        if self.builder is not None:
            return self.builder()
        if self.policy == "Belady":
            from ..cache.spec import CacheSpec
            spec = CacheSpec(capacity_lines=self.capacity_lines,
                             ways=self.ways, policy="Belady",
                             backend=backend,
                             policy_kwargs=self.policy_kwargs)
            if trace is not None:
                spec = spec.with_trace(trace)
            return spec.build()  # no trace -> the spec's clear error
        return build_cache(self.capacity_lines, ways=self.ways,
                           policy=self.policy, backend=backend,
                           seed=self.seed, **dict(self.policy_kwargs))


@dataclass(frozen=True)
class SweepSpec:
    """A full sweep: the cross product of sizes and policies.

    Parameters
    ----------
    sizes_mb:
        Target cache sizes in paper MB (deduplicated and sorted).
    policies:
        Replacement policies to sweep (one full size-curve each).
    ways:
        Associativity of every simulated cache.
    backend:
        "object", "array" or "auto" (see module docstring).
    max_workers:
        Above 1, independent configs are distributed over a process pool
        (``parallel="processes"``) or set the thread width when no
        explicit ``threads=`` is given (``parallel="threads"``).
    parallel:
        "threads", "processes" or "auto" (see module docstring).
    base_seed:
        Root of the deterministic per-config seed derivation for policies
        with randomized behaviour.  ``None`` (the default) keeps every
        policy's historical default seed, so sweeps reproduce the
        one-run-per-size reference exactly.
    """

    sizes_mb: tuple[float, ...]
    policies: tuple[str, ...] = ("LRU",)
    ways: int = DEFAULT_WAYS
    backend: str = "auto"
    max_workers: int = 1
    parallel: str = "auto"
    base_seed: int | None = None

    def __post_init__(self):
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; "
                             f"known: {BACKENDS}")
        if self.parallel not in PARALLEL_MODES:
            raise ValueError(f"unknown parallel mode {self.parallel!r}; "
                             f"known: {PARALLEL_MODES}")
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if not self.policies:
            raise ValueError("policies must not be empty")
        sizes = tuple(sorted(set(float(s) for s in self.sizes_mb)))
        if not sizes:
            raise ValueError("sizes_mb must not be empty")
        object.__setattr__(self, "sizes_mb", sizes)
        object.__setattr__(self, "policies", tuple(self.policies))

    def expand(self) -> tuple[SweepConfig, ...]:
        """All sweep points, with deterministic per-config seeds."""
        configs = []
        for policy in self.policies:
            for size_mb in self.sizes_mb:
                seed = (None if self.base_seed is None
                        else _derive_seed(self.base_seed, policy, size_mb))
                configs.append(SweepConfig(
                    key=(policy, size_mb), size_mb=size_mb, policy=policy,
                    ways=self.ways, seed=seed))
        return tuple(configs)


class SweepResult:
    """Per-config statistics of a sweep, with curve helpers."""

    def __init__(self, stats: dict[Hashable, CacheStats],
                 instructions: int = 0):
        self.stats = stats
        self.instructions = instructions
        #: Per-config :class:`~repro.sampling.estimator.SampledResult`
        #: when the sweep ran with ``sampling=`` (else empty).  The
        #: entry is ``None`` for analytic points (zero capacity).
        self.sampled: dict[Hashable, object] = {}

    def __getitem__(self, key: Hashable) -> CacheStats:
        return self.stats[key]

    def __len__(self) -> int:
        return len(self.stats)

    def misses(self, key: Hashable) -> int:
        """Miss count of one sweep point."""
        return self.stats[key].misses

    def mpki(self, key: Hashable) -> float:
        """MPKI of one sweep point (needs trace instructions)."""
        stats = self.stats[key]
        instructions = stats.instructions or self.instructions
        if instructions <= 0:
            raise ValueError("instructions not recorded; cannot compute MPKI")
        return 1000.0 * stats.misses / instructions

    def mpki_curve(self, policy: str) -> MissCurve:
        """MPKI miss curve over all sizes recorded for ``policy``."""
        sizes = sorted(k[1] for k in self.stats
                       if isinstance(k, tuple) and len(k) == 2
                       and k[0] == policy)
        if not sizes:
            raise KeyError(f"no sweep points for policy {policy!r}")
        return MissCurve(np.asarray(sizes, dtype=float),
                         np.asarray([self.mpki((policy, s)) for s in sizes]))


def _extract_stats(cache) -> CacheStats:
    """Statistics of any cache organization the sweep can drive."""
    stats = getattr(cache, "stats", None)
    if isinstance(stats, CacheStats):
        return stats
    logical = getattr(cache, "logical_stats", None)
    if logical:
        return logical[0]
    raise TypeError(f"cannot extract stats from {type(cache).__name__}")


def _all_miss_stats(n_accesses: int) -> CacheStats:
    """A zero-capacity config: every access misses."""
    return CacheStats(accesses=n_accesses, hits=0, misses=n_accesses)


def _stream_object_pass(addrs: np.ndarray, caches: Sequence[object]) -> None:
    """Advance every cache by one access per trace element, one trace pass."""
    accessors = [cache.access for cache in caches]
    if len(accessors) == 1:
        access = accessors[0]
        for a in addrs.tolist():
            access(a)
        return
    for a in addrs.tolist():
        for access in accessors:
            access(a)


def _make_replay_task(cache, addrs: np.ndarray):
    """This cache's :class:`ReplayTask` for ``addrs``, or ``None``.

    ``None`` means the cache has no single-trace ``replay_task`` entry
    point (e.g. a bare partitioned cache that needs a partition stream);
    such configs keep their batched ``run`` path.
    """
    maker = getattr(cache, "replay_task", None)
    if maker is None:
        return None
    try:
        return maker(addrs)
    except TypeError:
        return None


def _simulate_chunk(addrs: np.ndarray | TraceHandle,
                    configs: Sequence[SweepConfig],
                    backend: str,
                    threads: int = 0) -> list[tuple[Hashable, CacheStats]]:
    """Simulate a group of configs over one trace pass (worker entry point).

    ``addrs`` may be a :class:`TraceHandle`, which pool workers attach
    zero-copy instead of receiving the pickled array.  With ``threads >=
    1`` every batch-capable config becomes a :class:`ReplayTask` and the
    chunk executes as one threaded native dispatch (bit-identical to the
    serial per-config replays at any width).
    """
    if isinstance(addrs, TraceHandle):
        addrs = addrs.array()
    out = []
    object_caches, object_keys = [], []
    lru_family_caches, lru_family_keys = [], []
    tasks, task_caches, task_keys = [], [], []

    def enqueue(cache, key) -> bool:
        if threads < 1:
            return False
        task = _make_replay_task(cache, addrs)
        if task is None:
            return False
        tasks.append(task)
        task_caches.append(cache)
        task_keys.append(key)
        return True

    for config in configs:
        custom = config.spec is not None or config.builder is not None
        if not custom and config.capacity_lines <= 0:
            out.append((config.key, _all_miss_stats(int(addrs.size))))
            continue
        if custom:
            cache = config.build(backend, addrs)
            if getattr(cache, "supports_batch_replay", False):
                # Array-backed organizations (incl. Talus on an array
                # base) replay the whole trace in one batched pass.
                if not enqueue(cache, config.key):
                    cache.run(addrs)
                    out.append((config.key, _extract_stats(cache)))
            else:
                object_caches.append(cache)
                object_keys.append(config.key)
            continue
        if backend == "object":
            # The explicit reference baseline: all configs stream together
            # in one per-access pass over the trace.
            object_caches.append(config.build("object"))
            object_keys.append(config.key)
            continue
        # The policy matrix is total on the array backend, so "auto" and
        # "array" both land here — there is no per-policy object fallback.
        cache = config.build("array", addrs)
        if enqueue(cache, config.key):
            pass
        elif config.policy in ("LRU", "LIP"):
            # Recency-family array configs share one trace pass (the
            # multi-config kernel); bit-identical to per-config runs.
            lru_family_caches.append(cache)
            lru_family_keys.append(config.key)
        else:
            cache.run(addrs)
            out.append((config.key, _extract_stats(cache)))
    if tasks:
        run_tasks(tasks, threads=threads)
        out.extend((key, _extract_stats(cache))
                   for key, cache in zip(task_keys, task_caches))
    if lru_family_caches:
        # One shared pass per set-indexing scheme (the kernel applies one
        # scheme to the whole batch; sweeps mixing modulo and hashed
        # configs split into one batch each).
        groups: dict[tuple, list] = {}
        for cache in lru_family_caches:
            groups.setdefault((cache.hashed_index, cache.index_seed),
                              []).append(cache)
        for group in groups.values():
            run_lru_family_batch(addrs, group)
        out.extend((key, _extract_stats(cache))
                   for key, cache in zip(lru_family_keys, lru_family_caches))
    if object_caches:
        _stream_object_pass(addrs, object_caches)
        out.extend((key, _extract_stats(cache))
                   for key, cache in zip(object_keys, object_caches))
    return out


def _run_sweep_sampled(trace, configs, sampling, *, backend: str,
                       max_workers: int, parallel: str,
                       threads: int | None, trace_store, supervise: bool,
                       bank) -> SweepResult:
    """The ``sampling=`` execution path of :func:`run_sweep`.

    Each config's MPKI comes from a sampled estimate
    (:func:`repro.sampling.driver.run_sampled`) instead of an exact
    replay; parallelism applies across each config's detailed windows.
    The trace may be a :class:`~repro.workloads.scale.ChunkedTrace` —
    it is never materialized.
    """
    from ..cache.spec import CacheSpec
    from ..sampling.driver import _as_view, run_sampled
    view = _as_view(trace)
    n = view.n_accesses
    instructions = int(view.instructions)
    stats: dict[Hashable, CacheStats] = {}
    sampled: dict[Hashable, object] = {}
    for config in configs:
        if config.builder is not None:
            raise ValueError(
                "builder-based sweep configs cannot run sampled: the "
                "sampling driver builds per-window caches from a "
                "picklable spec; describe the point with spec= or "
                "(policy, size) instead")
        if config.spec is not None:
            cache_spec = config.spec
        elif config.capacity_lines <= 0:
            stats[config.key] = _all_miss_stats(n)
            stats[config.key].instructions = instructions
            sampled[config.key] = None
            continue
        else:
            cache_spec = CacheSpec(
                capacity_lines=config.capacity_lines, ways=config.ways,
                policy=config.policy, backend=backend, seed=config.seed,
                policy_kwargs=config.policy_kwargs)
        result = run_sampled(
            trace, cache_spec, sampling, parallel=parallel,
            threads=threads, max_workers=max_workers,
            trace_store=trace_store, supervise=supervise, bank=bank)
        sampled[config.key] = result
        misses = int(round(result.estimated_misses))
        stats[config.key] = CacheStats(
            accesses=n, hits=n - misses, misses=misses,
            instructions=instructions)
    out = SweepResult(stats, instructions=instructions)
    out.sampled = sampled
    return out


#: Partitioning schemes :func:`run_matrix_sweep` covers.  "none" is a plain
#: (unpartitioned) set-associative cache; futility scaling is excluded —
#: it is the one scheme with no array twin, so it cannot join the single
#: threaded dispatch (sweep it separately with ``backend="object"``).
MATRIX_SCHEMES = ("none", "way", "set", "ideal", "vantage")


def matrix_cells(sizes_mb: Sequence[float],
                 policies: Sequence[str],
                 schemes: Sequence[str] = MATRIX_SCHEMES
                 ) -> tuple[tuple[str, str, float], ...]:
    """The ``(policy, scheme, size_mb)`` cells of a matrix sweep.

    One tuple per sweep point, in the deterministic order
    :func:`run_matrix_sweep` simulates (and keys) them.  The job runtime
    shards a matrix sweep one ``(policy, scheme)`` row at a time, so rows
    group contiguously.  Belady is offline with no partitioned
    organization, so its cells exist for scheme ``"none"`` only — other
    schemes simply skip it.
    """
    cells = []
    for policy in policies:
        for scheme in schemes:
            if scheme not in MATRIX_SCHEMES:
                raise ValueError(
                    f"unknown matrix scheme {scheme!r}; known: "
                    f"{MATRIX_SCHEMES} (futility scaling has no array "
                    f"twin; sweep it separately with backend='object')")
            if policy == "Belady" and scheme != "none":
                continue
            for size_mb in sizes_mb:
                cells.append((policy, scheme, float(size_mb)))
    if not cells:
        raise ValueError("the matrix is empty: no (policy, scheme, size) "
                         "cells to simulate")
    return tuple(cells)


def _matrix_stats(cache) -> CacheStats:
    """Whole-cache statistics of a matrix cell (partitioned caches sum
    their per-partition stats)."""
    stats = getattr(cache, "stats", None)
    if isinstance(stats, CacheStats):
        return stats
    partition_stats = getattr(cache, "partition_stats", None)
    if partition_stats:
        total = CacheStats()
        for s in partition_stats:
            total.accesses += s.accesses
            total.hits += s.hits
            total.misses += s.misses
        return total
    return _extract_stats(cache)


def _build_matrix_cell(cell: tuple[str, str, float], *, num_partitions: int,
                       ways: int, backend: str, seed: int | None, addrs):
    """Instantiate the cache for one matrix cell."""
    from ..cache.factory import SEEDED_POLICIES
    from ..cache.spec import CacheSpec, PartitionSpec
    policy, scheme, size_mb = cell
    capacity = paper_mb_to_lines(size_mb)
    cell_seed = (None if seed is None or policy not in SEEDED_POLICIES
                 else _derive_seed(seed, f"{policy}|{scheme}", size_mb))
    if scheme == "none":
        spec = CacheSpec(capacity_lines=capacity, ways=ways, policy=policy,
                         backend=backend, seed=cell_seed)
        if policy == "Belady":
            spec = spec.with_trace(addrs)
        return spec.build()
    policy_kwargs = () if cell_seed is None else (("seed", cell_seed),)
    return PartitionSpec(scheme=scheme, capacity_lines=capacity,
                         num_partitions=num_partitions, policy=policy,
                         ways=ways, backend=backend,
                         policy_kwargs=policy_kwargs).build()


def run_matrix_sweep(trace: Trace | np.ndarray | Sequence[int],
                     *, sizes_mb: Sequence[float],
                     policies: Sequence[str] = ("LRU",),
                     schemes: Sequence[str] = MATRIX_SCHEMES,
                     num_partitions: int = 1,
                     parts: np.ndarray | Sequence[int] | None = None,
                     ways: int = DEFAULT_WAYS,
                     backend: str = "auto",
                     threads: int | None = None,
                     seed: int | None = None,
                     trace_store: TraceStore | None = None) -> SweepResult:
    """Sweep the whole policy × scheme × size matrix in one threaded pass.

    Every cell — each replacement policy on each partitioning scheme at
    each size — becomes one :class:`~repro.cache.threadbatch.ReplayTask`,
    and the entire matrix executes as a single GIL-releasing
    ``batch_run_threaded`` dispatch over *one* shared copy of the trace (a
    :class:`~repro.workloads.tracestore.TraceStore` memmap, so a
    whole-matrix sweep decodes and stores the trace once, not once per
    cell).  Results are keyed ``(policy, scheme, size_mb)`` and are
    bit-identical at any thread width.

    ``backend="object"`` instead streams every cell through the reference
    object model, access by access, on one core — the baseline
    ``benchmarks/bench_matrix_sweep.py`` measures the threaded matrix
    against.

    ``parts`` optionally tags each access with a partition id for the
    partitioned schemes (all accesses land in partition 0 by default);
    plain-cache cells ignore it.
    """
    cells = matrix_cells(sizes_mb, policies, schemes)
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; known: {BACKENDS}")
    if isinstance(trace, Trace):
        addrs = np.ascontiguousarray(trace.addresses, dtype=np.int64)
        instructions = trace.instructions
    else:
        addrs = np.ascontiguousarray(np.asarray(trace, dtype=np.int64))
        instructions = 0
    if addrs.ndim != 1:
        raise ValueError("trace must be one-dimensional")
    if parts is None:
        parts = np.zeros(addrs.size, dtype=np.int64)
    else:
        parts = np.ascontiguousarray(np.asarray(parts, dtype=np.int64))
        if parts.shape != addrs.shape:
            raise ValueError("parts must match the trace's shape")

    store = trace_store if trace_store is not None else TraceStore()
    try:
        # All cells replay the store's one materialized copy.
        shared = store.put(addrs).array()
        caches = [_build_matrix_cell(cell, num_partitions=num_partitions,
                                     ways=ways, backend=backend, seed=seed,
                                     addrs=shared)
                  for cell in cells]
        if backend == "object":
            for cache in caches:
                if hasattr(cache, "partition_stats"):
                    for a, p in zip(shared.tolist(), parts.tolist()):
                        cache.access(a, p)
                else:
                    for a in shared.tolist():
                        cache.access(a)
        else:
            tasks = []
            for cache in caches:
                if hasattr(cache, "partition_stats"):
                    tasks.append(cache.replay_task(shared, parts))
                else:
                    tasks.append(cache.replay_task(shared))
            run_tasks(tasks, threads=resolve_threads(threads))
    finally:
        if trace_store is None:
            store.close()
    stats: dict[Hashable, CacheStats] = {}
    for cell, cache in zip(cells, caches):
        cell_stats = _matrix_stats(cache)
        if instructions and not cell_stats.instructions:
            cell_stats.instructions = instructions
        stats[cell] = cell_stats
    return SweepResult(stats, instructions=instructions)


def run_sweep(trace: Trace | np.ndarray | Sequence[int],
              spec: SweepSpec | Sequence[SweepConfig],
              *, backend: str | None = None,
              max_workers: int | None = None,
              parallel: str | None = None,
              threads: int | None = None,
              trace_store: TraceStore | None = None,
              supervise: bool = False,
              bank=None,
              sampling=None) -> SweepResult:
    """Simulate every config of ``spec`` against ``trace``.

    The trace is materialized once; all configs consume the same address
    array.  With the object backend the configs advance together in a
    single streaming pass; with the array backend each config is replayed
    by the native kernel.  ``backend``/``max_workers``/``parallel``
    override the spec.

    ``parallel`` picks the fan-out strategy (module docstring): "threads"
    executes all batch-capable configs in one threaded native dispatch
    (width from ``threads=``, else ``REPRO_THREADS``, else
    ``max_workers``/host core count); "processes" distributes standard and
    spec-based configs over a process pool when ``max_workers > 1``,
    sharing the trace through ``trace_store`` (a temporary store when not
    given).  Builder configs always run serially in-process because their
    closures may not be picklable.  Results are bit-identical regardless
    of the execution strategy.

    ``supervise=True`` (default off, preserving the in-process fast
    path) routes the sweep through the fault-tolerant job runtime
    (:mod:`repro.jobs`): supervised worker processes with heartbeat
    watchdogs and bounded retry, per-config results banked in ``bank``
    so interrupted sweeps resume.  Builder configs are rejected there
    (their closures are neither picklable nor content-addressable);
    results are bit-identical to the in-process path.

    ``sampling=`` (a :class:`~repro.sampling.driver.SamplingSpec`)
    switches every config to a *sampled* estimate: detailed windows out
    of the trace instead of an exact replay, with per-config
    :class:`~repro.sampling.estimator.SampledResult` objects (point
    estimate + confidence interval) in the returned result's
    ``.sampled`` dict.  The trace may then be a
    :class:`~repro.workloads.scale.ChunkedTrace` of 10^8+ accesses — it
    is never materialized.  ``supervise``/``bank`` compose with it
    (per-window banking); builder configs are rejected.
    """
    if sampling is not None:
        if isinstance(spec, SweepSpec):
            configs = spec.expand()
            backend = backend if backend is not None else spec.backend
            max_workers = (max_workers if max_workers is not None
                           else spec.max_workers)
            parallel = parallel if parallel is not None else spec.parallel
        else:
            configs = tuple(spec)
            backend = backend if backend is not None else "auto"
            max_workers = max_workers if max_workers is not None else 1
            parallel = parallel if parallel is not None else "auto"
        keys = [config.key for config in configs]
        if len(set(keys)) != len(keys):
            raise ValueError("sweep config keys must be unique")
        return _run_sweep_sampled(
            trace, configs, sampling, backend=backend,
            max_workers=max_workers, parallel=parallel, threads=threads,
            trace_store=trace_store, supervise=supervise, bank=bank)
    if supervise:
        from ..jobs.drivers import run_sweep_supervised
        return run_sweep_supervised(
            trace, spec, backend=backend if backend is not None else "auto",
            max_workers=max_workers, bank=bank)
    if isinstance(trace, Trace):
        addrs = np.ascontiguousarray(trace.addresses, dtype=np.int64)
        instructions = trace.instructions
    else:
        addrs = np.ascontiguousarray(np.asarray(trace, dtype=np.int64))
        instructions = 0
    if addrs.ndim != 1:
        raise ValueError("trace must be one-dimensional")

    if isinstance(spec, SweepSpec):
        configs = spec.expand()
        backend = backend if backend is not None else spec.backend
        max_workers = (max_workers if max_workers is not None
                       else spec.max_workers)
        parallel = parallel if parallel is not None else spec.parallel
    else:
        configs = tuple(spec)
        backend = backend if backend is not None else "auto"
        max_workers = max_workers if max_workers is not None else 1
        parallel = parallel if parallel is not None else "auto"
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; known: {BACKENDS}")
    mode = resolve_parallel(parallel)
    keys = [config.key for config in configs]
    if len(set(keys)) != len(keys):
        raise ValueError("sweep config keys must be unique")

    stats: dict[Hashable, CacheStats] = {}
    if mode == "threads":
        width = resolve_threads(
            threads if threads is not None
            else (max_workers if max_workers > 1 else None))
        stats.update(_simulate_chunk(addrs, configs, backend,
                                     threads=width))
    else:
        local = [c for c in configs if c.builder is not None]
        poolable = [c for c in configs if c.builder is None]
        if max_workers > 1 and len(poolable) > 1:
            workers = min(max_workers, len(poolable))
            chunks = [poolable[i::workers] for i in range(workers)]
            store = trace_store if trace_store is not None else TraceStore()
            try:
                # Workers attach the store's one materialized copy of the
                # trace instead of unpickling a private copy each.
                handle = store.put(addrs)
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [pool.submit(_simulate_chunk, handle, chunk,
                                           backend)
                               for chunk in chunks if chunk]
                    for future in futures:
                        stats.update(future.result())
            finally:
                if trace_store is None:
                    store.close()
        else:
            local = list(configs)

        if local:
            stats.update(_simulate_chunk(addrs, local, backend))

    for config_stats in stats.values():
        if instructions and not config_stats.instructions:
            config_stats.instructions = instructions
    return SweepResult(stats, instructions=instructions)
