"""Execution-driven multi-mix sweep engine (the Fig. 12/13 workhorse).

The paper's headline multi-programmed results are distributions over many
workload mixes: Fig. 12 evaluates partitioning policies on 100 random
8-app mixes, Fig. 13 sweeps homogeneous fairness mixes over LLC sizes.
:class:`~repro.sim.multicore.ReconfiguringSharedRun` executes *one* such
mix through the full closed loop (per-app UMONs, Talus re-planning, warm
reconfiguration, chunked native replay); this module scales that to the
sweep itself:

* :class:`MixSweepSpec` — a frozen-dataclass description of the whole
  sweep in the :mod:`repro.cache.spec` style: hashable, comparable and
  picklable, so the per-mix work can fan out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` exactly like
  :func:`repro.sim.sweep.run_sweep` configs do.
* **Stable per-mix seeding** — every application trace draws its seed
  from ``(base_seed, mix name, core, app name)``, never from execution
  order, so serial and process-pool runs (and any subset of the mixes)
  are bit-identical.
* :func:`run_mix_sweep` — one :class:`ReconfiguringSharedRun` per mix,
  each riding the resumable runtime (chunked replay + warm reallocation;
  the default ``scheme="vantage"`` substrate replays through the native
  Vantage kernel on ``backend="auto"``).
* :class:`MixSweepResult` — the per-mix interval records and measured
  :class:`~repro.sim.multicore.MixResult` objects, bridged to the
  analytic Fig. 12/13 machinery (speedups over the
  ``lru-shared`` equilibrium baseline, CoV of per-core IPC) and
  serialized to a JSON result bank for ``benchmarks/out/``.

Example
-------
>>> from repro.sim.mixsweep import MixSweepSpec, run_mix_sweep
>>> from repro.workloads.mixes import random_mixes
>>> mixes = random_mixes(2, apps_per_mix=2)
>>> spec = MixSweepSpec(total_mb=2.0, trace_accesses=8_000,
...                     interval_accesses=4_000)
>>> result = run_mix_sweep(mixes, spec)
>>> result.gmean_speedup("weighted") > 0.0   # executed vs analytic LRU
True
"""

from __future__ import annotations

import zlib
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Sequence

from ..cache.factory import BACKENDS
from ..core.atomicio import atomic_write_json
from ..cache.hashing import mix64
from ..cache.partition import SCHEME_REGISTRY
from ..cache.spec import PartitionSpec
from ..cache.threadbatch import PARALLEL_MODES, resolve_parallel
from ..partitioning import fair, hill_climbing, lookahead
from ..workloads.mixes import WorkloadMix
from ..workloads.scale import paper_mb_to_lines
from ..workloads.tracestore import TraceHandle, TraceStore
from .metrics import gmean
from .multicore import (MixResult, ReconfiguringSharedRun,
                        SharedCacheExperiment, SharedIntervalRecord,
                        TADRRIPSharedRun)

__all__ = ["MixSweepSpec", "MixRunRecord", "MixSweepResult", "run_mix_sweep",
           "mix_trace_seed", "ALGORITHMS"]

#: Partitioning algorithms the sweep can plug into the Talus wrapper,
#: by spec-friendly name (plain strings keep :class:`MixSweepSpec`
#: hashable and picklable).
ALGORITHMS = {
    "hill": hill_climbing,
    "lookahead": lookahead,
    "fair": fair,
}


def mix_trace_seed(base_seed: int, mix_name: str, core: int,
                   app_name: str) -> int:
    """Deterministic trace seed for one core of one mix.

    A stable function of the mix/core/app identity — not of execution
    order — so a mix simulated alone, serially, or in a process-pool
    worker generates the same traces (the contract
    :func:`repro.sim.sweep._derive_seed` establishes for sweep points).
    """
    token = f"{mix_name}|{core}|{app_name}".encode()
    return mix64(mix64(base_seed) ^ zlib.crc32(token)) & 0x7FFFFFFF


@dataclass(frozen=True)
class MixSweepSpec:
    """Declarative description of an execution-driven multi-mix sweep.

    Attributes
    ----------
    total_mb:
        Shared LLC capacity in paper MB.
    scheme:
        Partitioning substrate under Talus ("vantage" by default — the
        paper's Talus+V/LRU configuration, native via the Vantage kernel).
    algorithm:
        Name of the partitioning algorithm Talus wraps (one of
        :data:`ALGORITHMS`: "hill", "lookahead", "fair").
    trace_accesses:
        Length of each application's trace.
    interval_accesses:
        Reconfiguration interval in accesses per application.
    backend:
        Backend of the partitioned substrate ("auto" picks the native
        fast path exactly where it is bit-identical).
    base_seed:
        Root of the per-mix trace-seed derivation.
    max_workers:
        Above 1, mixes fan out — over a process pool or a thread pool
        depending on ``parallel`` (results are identical to a serial run
        either way).
    parallel:
        "threads", "processes" or "auto" ("auto" prefers threads when the
        native kernel is available, so the GIL-releasing replay overlaps;
        without it, the process pool).
    """

    total_mb: float
    scheme: str = "vantage"
    algorithm: str = "hill"
    trace_accesses: int = 60_000
    interval_accesses: int = 20_000
    safety_margin: float = 0.05
    warmup_intervals: int = 1
    monitor_points: int = 33
    granularity_mb: float | None = None
    backend: str = "auto"
    base_seed: int = 2015
    max_workers: int = 1
    parallel: str = "auto"

    def __post_init__(self):
        if self.total_mb <= 0:
            raise ValueError("total_mb must be positive")
        if self.scheme.lower() not in SCHEME_REGISTRY:
            raise ValueError(f"unknown partitioning scheme {self.scheme!r}; "
                             f"valid schemes: "
                             f"{', '.join(sorted(SCHEME_REGISTRY))}")
        object.__setattr__(self, "scheme", self.scheme.lower())
        if self.algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {self.algorithm!r}; valid "
                             f"algorithms: {', '.join(sorted(ALGORITHMS))}")
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; valid "
                             f"backends: {', '.join(BACKENDS)}")
        if self.trace_accesses <= 0 or self.interval_accesses <= 0:
            raise ValueError("trace_accesses and interval_accesses must be "
                             "positive")
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.parallel not in PARALLEL_MODES:
            raise ValueError(f"unknown parallel mode {self.parallel!r}; "
                             f"known: {PARALLEL_MODES}")

    def substrate_spec(self, num_apps: int) -> PartitionSpec:
        """The declarative substrate one mix of ``num_apps`` runs on."""
        return PartitionSpec(scheme=self.scheme,
                             capacity_lines=paper_mb_to_lines(self.total_mb),
                             num_partitions=2 * num_apps,
                             backend=self.backend)


@dataclass(frozen=True)
class MixRunRecord:
    """Execution outcome of one mix: interval records plus measured result."""

    mix_name: str
    app_names: tuple[str, ...]
    intervals: tuple[SharedIntervalRecord, ...]
    result: MixResult

    def to_payload(self) -> dict:
        """JSON-able record (the per-mix entry of the result bank)."""
        return {
            "mix": self.mix_name,
            "apps": list(self.app_names),
            "scheme": self.result.scheme,
            "per_app": [
                {"name": app.name, "allocation_mb": app.allocation_mb,
                 "mpki": app.mpki, "ipc": app.ipc}
                for app in self.result.apps],
            "cov_ipc": self.result.cov_ipc,
            "intervals": [
                {"index": r.index,
                 "accesses": list(r.accesses), "misses": list(r.misses),
                 "allocations_mb": list(r.allocations_mb)}
                for r in self.intervals],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MixRunRecord":
        """Inverse of :meth:`to_payload`.

        Exact: floats round-trip through JSON bit-identically (shortest
        repr), so a record banked by a supervised worker reconstructs
        equal to one computed in-process.  Tolerates pre-supervision
        payloads that lack ``scheme``/interval ``index`` fields.
        """
        from .perf_model import AppPerformance
        apps = tuple(AppPerformance(
            name=entry["name"],
            allocation_mb=float(entry["allocation_mb"]),
            mpki=float(entry["mpki"]), ipc=float(entry["ipc"]))
            for entry in payload["per_app"])
        intervals = tuple(SharedIntervalRecord(
            index=int(entry.get("index", i)),
            accesses=tuple(int(a) for a in entry["accesses"]),
            misses=tuple(int(m) for m in entry["misses"]),
            allocations_mb=tuple(float(a)
                                 for a in entry["allocations_mb"]))
            for i, entry in enumerate(payload["intervals"]))
        return cls(mix_name=payload["mix"],
                   app_names=tuple(payload["apps"]),
                   intervals=intervals,
                   result=MixResult(
                       scheme=payload.get("scheme", "talus-execution"),
                       apps=apps))


def _mix_handles(store: TraceStore, spec: MixSweepSpec,
                 mix: WorkloadMix) -> tuple[TraceHandle, ...]:
    """Materialize (or find) every per-core trace of one mix in ``store``.

    The store's content addressing by ``(app, length, seed)`` means a
    trace shared between mixes — or between cores of a homogeneous mix
    with a coinciding seed — is generated exactly once for the whole
    sweep.
    """
    return tuple(
        store.get(app, spec.trace_accesses,
                  mix_trace_seed(spec.base_seed, mix.name, core, app.name))
        for core, app in enumerate(mix.apps))


def _run_one_mix(spec: MixSweepSpec, mix: WorkloadMix,
                 handles: Sequence[TraceHandle] | None = None
                 ) -> MixRunRecord:
    """Execute one mix end to end (the pool worker entry point).

    With ``handles`` the worker attaches the parent's already-materialized
    traces (zero-copy for memmap/shared-memory backings); without them it
    regenerates from the profiles — both paths draw the same per-core
    seeds, so the records are bit-identical.
    """
    if handles is not None:
        traces = [handle.attach() for handle in handles]
    else:
        traces = [
            app.trace(n_accesses=spec.trace_accesses,
                      seed=mix_trace_seed(spec.base_seed, mix.name, core,
                                          app.name))
            for core, app in enumerate(mix.apps)]
    run = ReconfiguringSharedRun(
        total_mb=spec.total_mb, scheme=spec.scheme,
        algorithm=ALGORITHMS[spec.algorithm],
        interval_accesses=spec.interval_accesses,
        safety_margin=spec.safety_margin,
        warmup_intervals=spec.warmup_intervals,
        monitor_points=spec.monitor_points,
        granularity_mb=spec.granularity_mb,
        backend=spec.backend)
    records = run.run(traces)
    result = run.mix_result(mix.apps, scheme_label=f"talus-{spec.algorithm}"
                                                   "-execution")
    return MixRunRecord(mix_name=mix.name, app_names=tuple(mix.app_names),
                        intervals=tuple(records), result=result)


class MixSweepResult:
    """Per-mix outcomes of a sweep, bridged to the analytic Fig. 12/13 model.

    The measured :class:`~repro.sim.multicore.MixResult` of each mix is
    directly comparable with :meth:`SharedCacheExperiment.evaluate`
    results for the same mix — :meth:`speedup` computes the executed
    weighted/harmonic speedup over the analytic ``lru-shared``
    equilibrium baseline the paper normalizes to, and
    :meth:`gmean_speedup` aggregates it across mixes as Fig. 12 does.
    """

    def __init__(self, spec: MixSweepSpec, mixes: Sequence[WorkloadMix],
                 records: Sequence[MixRunRecord]):
        self.spec = spec
        self.mixes = {mix.name: mix for mix in mixes}
        self.records: Dict[str, MixRunRecord] = {
            record.mix_name: record for record in records}
        self._experiments: Dict[str, SharedCacheExperiment] = {}
        self._baselines: Dict[tuple, MixResult] = {}

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, mix_name: str) -> MixRunRecord:
        return self.records[mix_name]

    def mix_names(self) -> list[str]:
        """Names of the executed mixes, in sweep order."""
        return list(self.records)

    # ------------------------------------------------------------------ #
    # Analytic bridges
    # ------------------------------------------------------------------ #
    def analytic_result(self, mix_name: str,
                        scheme: str = "lru-shared") -> MixResult:
        """One analytic scheme's result for a mix (cached per scheme).

        The experiment models the managed fraction from the sweep's exact
        substrate spec, so the analytic and executed runs agree on the
        partitionable capacity.
        """
        key = (mix_name, scheme)
        if key not in self._baselines:
            # One experiment per mix: the per-app miss curves it derives
            # are the expensive part and are shared by every scheme.
            if mix_name not in self._experiments:
                mix = self.mixes[mix_name]
                self._experiments[mix_name] = SharedCacheExperiment(
                    mix, total_mb=self.spec.total_mb,
                    substrate=self.spec.substrate_spec(len(mix)))
            self._baselines[key] = \
                self._experiments[mix_name].evaluate(scheme)
        return self._baselines[key]

    def executed_tadrrip(self, mix_name: str, seed: int = 0) -> MixResult:
        """The *executed* TA-DRRIP baseline for one mix (cached).

        Regenerates the mix's deterministic traces and replays them
        through one shared thread-aware DRRIP cache
        (:class:`~repro.sim.multicore.TADRRIPSharedRun`) with the sweep's
        interval interleaving — the execution-driven counterpart of the
        analytic ``"ta-drrip"`` occupancy model, comparable against this
        sweep's measured Talus results via the usual speedup methods.
        """
        key = (mix_name, "ta-drrip-execution", seed)
        if key not in self._baselines:
            mix = self.mixes[mix_name]
            traces = [
                app.trace(n_accesses=self.spec.trace_accesses,
                          seed=mix_trace_seed(self.spec.base_seed, mix.name,
                                              core, app.name))
                for core, app in enumerate(mix.apps)]
            run = TADRRIPSharedRun(
                total_mb=self.spec.total_mb,
                interval_accesses=self.spec.interval_accesses,
                warmup_intervals=self.spec.warmup_intervals, seed=seed)
            run.run(traces)
            self._baselines[key] = run.mix_result(mix.apps)
        return self._baselines[key]

    def speedup(self, mix_name: str, metric: str = "weighted",
                baseline_scheme: str = "lru-shared") -> float:
        """Executed speedup of one mix over an analytic baseline scheme."""
        baseline = self.analytic_result(mix_name, baseline_scheme)
        measured = self.records[mix_name].result
        if metric == "weighted":
            return measured.weighted_speedup_over(baseline)
        if metric == "harmonic":
            return measured.harmonic_speedup_over(baseline)
        raise ValueError("metric must be 'weighted' or 'harmonic'")

    def gmean_speedup(self, metric: str = "weighted",
                      baseline_scheme: str = "lru-shared") -> float:
        """Geometric-mean executed speedup across all mixes (Fig. 12)."""
        return float(gmean([self.speedup(name, metric, baseline_scheme)
                            for name in self.records]))

    def cov_ipcs(self) -> Dict[str, float]:
        """Per-mix CoV of measured per-core IPC (the Fig. 13 metric)."""
        return {name: record.result.cov_ipc
                for name, record in self.records.items()}

    # ------------------------------------------------------------------ #
    # JSON result bank
    # ------------------------------------------------------------------ #
    def to_payload(self, include_baselines: bool = True) -> dict:
        """The sweep as a JSON-able result bank.

        Schema (documented in ``docs/BENCHMARKS.md``): a ``spec`` block
        with the sweep parameters, and one ``mixes`` entry per mix with
        per-app measured performance, per-interval records, and — when
        ``include_baselines`` — the executed speedups over the analytic
        ``lru-shared`` equilibrium.
        """
        payload = {"spec": asdict(self.spec), "mixes": []}
        for name, record in self.records.items():
            entry = record.to_payload()
            if include_baselines:
                entry["weighted_speedup_vs_lru_shared"] = self.speedup(
                    name, "weighted")
                entry["harmonic_speedup_vs_lru_shared"] = self.speedup(
                    name, "harmonic")
            payload["mixes"].append(entry)
        if include_baselines and self.records:
            payload["gmean_weighted_speedup"] = self.gmean_speedup("weighted")
            payload["gmean_harmonic_speedup"] = self.gmean_speedup("harmonic")
        return payload

    def save_json(self, path, include_baselines: bool = True) -> Path:
        """Write the result bank to ``path`` (parents created).

        The write is atomic (temp file + ``os.replace``): an interrupted
        run never leaves a torn or truncated bank behind.
        """
        return atomic_write_json(path, self.to_payload(include_baselines))


def run_mix_sweep(mixes: Sequence[WorkloadMix], spec: MixSweepSpec, *,
                  max_workers: int | None = None,
                  backend: str | None = None,
                  parallel: str | None = None,
                  trace_store: TraceStore | None = None,
                  supervise: bool = False,
                  bank=None) -> MixSweepResult:
    """Execute every mix of the sweep through the closed Talus loop.

    Each mix runs one :class:`~repro.sim.multicore.ReconfiguringSharedRun`
    (chunked replay, per-app UMONs, coordinated warm reconfiguration) on
    its own deterministic traces.  With ``max_workers > 1`` the mixes fan
    out — one worker task per mix, since a mix's apps share one cache and
    must advance together — over a process pool or, with
    ``parallel="threads"`` (the "auto" choice when the native kernel is
    available), a thread pool whose workers overlap in the GIL-releasing
    kernel replays.  The stable per-mix seeding makes every strategy
    bit-identical to a serial run.

    The parent materializes every per-core trace exactly once in
    ``trace_store`` (a temporary memmap-backed store when not given) and
    hands workers lightweight handles; pooled workers *attach* rather
    than regenerate, so a sweep no longer pays apps x mixes trace
    generations per pool fan-out.

    ``max_workers``/``backend``/``parallel`` override the spec's values
    (the spec stays the single source of truth for everything the workers
    need, which is what makes it picklable).

    ``supervise=True`` (default off, preserving the in-process fast
    path) routes each mix through the fault-tolerant job runtime
    (:mod:`repro.jobs`): supervised worker processes with watchdogs and
    bounded retry, per-mix results banked in ``bank`` so interrupted
    sweeps resume.  Results are bit-identical either way.
    """
    mixes = list(mixes)
    names = [mix.name for mix in mixes]
    if len(set(names)) != len(names):
        raise ValueError("mix names must be unique")
    if backend is not None and backend != spec.backend:
        from dataclasses import replace
        spec = replace(spec, backend=backend)
    if supervise:
        from ..jobs.drivers import run_mix_sweep_supervised
        return run_mix_sweep_supervised(mixes, spec, bank=bank,
                                        max_workers=max_workers)
    workers = max_workers if max_workers is not None else spec.max_workers
    mode = resolve_parallel(parallel if parallel is not None
                            else spec.parallel)
    store = trace_store if trace_store is not None else TraceStore()
    try:
        handles = [_mix_handles(store, spec, mix) for mix in mixes]
        if workers > 1 and len(mixes) > 1:
            workers = min(workers, len(mixes))
            pool_cls = (ThreadPoolExecutor if mode == "threads"
                        else ProcessPoolExecutor)
            with pool_cls(max_workers=workers) as pool:
                futures = [pool.submit(_run_one_mix, spec, mix, mix_handles)
                           for mix, mix_handles in zip(mixes, handles)]
                records = [future.result() for future in futures]
        else:
            records = [_run_one_mix(spec, mix, mix_handles)
                       for mix, mix_handles in zip(mixes, handles)]
    finally:
        if trace_store is None:
            store.close()
    return MixSweepResult(spec, mixes, records)
