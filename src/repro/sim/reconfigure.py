"""Interval-based Talus reconfiguration loop (the full Fig. 7 system).

In hardware, Talus re-plans every ~10 ms: UMONs accumulate a miss curve over
an interval, software computes the convex hull, runs the partitioning
algorithm, derives shadow partition sizes and sampling rates, and programs
the cache for the next interval.  This module reproduces that closed loop
for a single application; the multi-application loop is
:class:`repro.sim.multicore.ReconfiguringSharedRun` (with the analytic
equilibrium model next to it).

Assumption 1 of the paper — miss curves are stable across intervals — is
what makes planning on the *previous* interval's curve work; the tests use
this driver to check that the dynamically reconfigured cache still tracks
the convex hull.

State ownership in the resumable runtime
----------------------------------------
The loop owns no simulation state of its own — only the interval records
it appends.  All warm state lives in exactly two places and survives every
interval boundary:

* the **cache** (:class:`~repro.cache.talus_cache.TalusCache` and its
  partitioned base): resident lines, recency/RRPV/protection metadata and
  the granted allocations.  ``run_chunk`` advances it in place and
  ``configure`` reallocates it in place; the loop never rebuilds or
  copies it, which is what makes the replay bit-identical to an unchunked
  run.
* the **monitor** (:class:`~repro.monitor.umon.CombinedUMON`): the
  incremental stack-distance tables of its sampled sub-streams.
  ``record_trace`` folds each chunk in; reading the curve never
  re-replays.

The planner in between is stateless: each ``_reconfigure`` reads the
monitor's current curve, plans, and programs the cache — so interrupting
and resuming the loop at any interval boundary (or swapping the replay
backend mid-run on the exact tier) cannot change the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from typing import Callable, Sequence

from ..cache.spec import PartitionSpec, TalusSpec, build
from ..cache.talus_cache import TalusCache
from ..core.convexhull import convex_hull
from ..core.misscurve import MissCurve
from ..core.talus import TalusConfig, plan_shadow_partitions
from ..monitor.umon import CombinedUMON
from ..partitioning.base import PartitioningProblem
from ..partitioning.fair import fair
from ..partitioning.hill_climbing import hill_climbing
from ..workloads.access import Trace
from ..workloads.scale import lines_to_paper_mb, paper_mb_to_lines

__all__ = ["ReconfiguringTalusRun", "IntervalRecord",
           "planning_curve_from_monitor", "config_mb_to_lines",
           "SharedPlan", "plan_shared_allocations"]


def planning_curve_from_monitor(monitor: CombinedUMON,
                                trace: Trace) -> MissCurve:
    """The monitor's current miss curve in planner units (paper MB, MPKI).

    The planner is scale invariant, but MB/MPKI units keep records human
    readable.  Instructions are estimated from the fraction of the trace
    the monitor has observed so far; the monotone envelope removes the
    small non-monotonicities of spliced sampled monitors.  Shared by the
    single-app (:class:`ReconfiguringTalusRun`) and multi-app
    (:class:`~repro.sim.multicore.ReconfiguringSharedRun`) loops so both
    plan from identically derived curves.
    """
    raw = monitor.miss_curve()
    observed = max(monitor.primary.total_accesses, 1)
    instructions = trace.instructions * observed / max(len(trace), 1)
    sizes_mb = np.array([lines_to_paper_mb(s) for s in raw.sizes])
    mpki = raw.misses * 1000.0 / max(instructions, 1.0)
    return MissCurve(sizes_mb, mpki).monotone_envelope()


def config_mb_to_lines(config: TalusConfig) -> TalusConfig:
    """Rescale a planner configuration from paper MB to cache lines."""
    factor = float(paper_mb_to_lines(1.0))
    return TalusConfig(
        total_size=config.total_size * factor,
        alpha=config.alpha * factor,
        beta=config.beta * factor,
        rho=config.rho,
        s1=config.s1 * factor,
        s2=config.s2 * factor,
        degenerate=config.degenerate,
    )


@dataclass(frozen=True)
class SharedPlan:
    """One coordinated multi-application Talus plan.

    ``sizes`` are the per-partition capacity allocations (in the curves'
    size units), ``configs`` the shadow-partition plans in the same
    units, and ``expected_misses`` the hull miss values Talus commits to
    at those sizes.
    """

    sizes: tuple[float, ...]
    configs: tuple[TalusConfig, ...]
    expected_misses: tuple[float, ...]

    @property
    def total_expected_misses(self) -> float:
        return float(sum(self.expected_misses))


def plan_shared_allocations(curves: Sequence[MissCurve], total_size: float,
                            *, granularity: float,
                            algorithm: Callable = hill_climbing,
                            safety_margin: float = 0.0,
                            floors: Sequence[float] | None = None,
                            fairness: float = 0.0,
                            conserve: bool = False) -> SharedPlan:
    """The reusable replan core shared by every multi-application loop.

    This is the pipeline :class:`~repro.partitioning.talus_wrap.TalusPartitioning`
    packages — convex hulls, the system's partitioning algorithm, Theorem 6
    shadow-partition planning — extended with the three knobs the streaming
    controller needs:

    ``floors``
        Per-partition minimum allocations (QoS floors).  Every partition
        starts at its floor; only the remaining budget is contested.
    ``fairness``
        Blend factor in ``[0, 1]`` toward the equal split: the planned
        sizes are interpolated with the :func:`~repro.partitioning.fair.fair`
        allocation and re-snapped onto the granularity grid (floors kept
        exact; snapping rounds down, so enable ``conserve`` to redistribute
        the rounding slack).
    ``conserve``
        Top the allocation up until it sums exactly to ``total_size``:
        some algorithms leave budget unallocated (lookahead stops when
        nobody benefits; hill climbing cannot grant a final sub-step
        residual).  Each top-up unit goes to the partition whose hull
        drops the most for it (ties: lowest index), so the invariant
        "allocations sum to the partitionable capacity" holds exactly.

    With the default knobs (no floors, no fairness, no conservation) the
    result is bit-identical to ``TalusPartitioning.partition`` — the
    fixed-mix :class:`~repro.sim.multicore.ReconfiguringSharedRun` path is
    unchanged by the extraction.
    """
    if not 0.0 <= fairness <= 1.0:
        raise ValueError("fairness must be in [0, 1]")
    hulls = tuple(convex_hull(curve) for curve in curves)
    problem = PartitioningProblem(
        curves=hulls, total_size=total_size, granularity=granularity,
        minimums=None if floors is None else tuple(floors))
    allocation = algorithm(problem)
    sizes = list(allocation.sizes)
    step = granularity
    if fairness > 0.0:
        target = fair(problem).sizes
        lows = problem.floors()
        for i in range(len(sizes)):
            blended = (1.0 - fairness) * sizes[i] + fairness * target[i]
            extra = max(0.0, blended - lows[i])
            sizes[i] = lows[i] + int(extra / step + 1e-9) * step
    if conserve:
        deficit = total_size - sum(sizes)
        while deficit > 1e-9:
            grant = min(step, deficit)
            best_index = 0
            best_gain = -1.0
            for i, hull in enumerate(hulls):
                gain = float(hull(sizes[i])) - float(hull(sizes[i] + grant))
                if gain > best_gain + 1e-15:
                    best_gain = gain
                    best_index = i
            sizes[best_index] += grant
            deficit -= grant
    configs = []
    expected = []
    for curve, hull, size in zip(curves, hulls, sizes):
        configs.append(plan_shadow_partitions(curve, size,
                                              safety_margin=safety_margin))
        expected.append(float(hull(size)))
    return SharedPlan(sizes=tuple(float(s) for s in sizes),
                      configs=tuple(configs),
                      expected_misses=tuple(expected))


@dataclass(frozen=True)
class IntervalRecord:
    """Outcome of one reconfiguration interval."""

    index: int
    accesses: int
    misses: int
    config: TalusConfig | None

    @property
    def miss_rate(self) -> float:
        """Miss rate within the interval."""
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class ReconfiguringTalusRun:
    """Run a trace through Talus with periodic monitor-driven reconfiguration.

    Parameters
    ----------
    target_mb:
        Logical partition capacity in paper MB.
    scheme:
        Underlying partitioning scheme name.
    interval_accesses:
        Reconfiguration interval, in accesses (the hardware uses ~10 ms).
    safety_margin:
        Sampling-rate margin applied when planning (Sec. VI-B).
    warmup_intervals:
        Number of initial intervals during which the cache runs with a
        degenerate (single-partition) configuration while the monitor fills.
    backend:
        Backend of the underlying partitioned cache ("auto" by default).
        Warm-partition reallocation is supported by both backends, and
        the scheme × policy matrix is total on the array side (futility
        scaling excepted), so "auto" always rides the array fast path
        with chunked native replay between reconfigurations; interval
        records are bit-identical to ``backend="object"`` on the exact
        policy tier (LRU/LIP/SRRIP/PDP).
    """

    target_mb: float
    scheme: str = "vantage"
    interval_accesses: int = 50_000
    safety_margin: float = 0.05
    warmup_intervals: int = 1
    monitor_points: int = 65
    backend: str = "auto"
    records: list[IntervalRecord] = field(default_factory=list)

    def run(self, trace: Trace) -> MissCurve | None:
        """Replay ``trace`` with periodic reconfiguration.

        Returns the final measured miss curve (paper MB / MPKI) from the
        monitor, or None if the trace was shorter than one interval.
        """
        lines = paper_mb_to_lines(self.target_mb)
        if lines <= 0:
            raise ValueError("target_mb too small for the configured scale")
        # Both backends reallocate warm partitions (PR 4), so the backend
        # is a free choice; "auto" rides the array fast path for every
        # scheme and policy of the matrix.
        spec = TalusSpec(partition=PartitionSpec(
            scheme=self.scheme, capacity_lines=lines, num_partitions=2,
            backend=self.backend))
        talus: TalusCache = build(spec)
        # Start degenerate: all capacity in the beta partition.  The
        # request is clamped to the scheme's partitionable capacity —
        # Vantage only partitions its managed 90 %, and an unclamped
        # full-capacity request is rejected.
        cap = float(talus.base.partitionable_lines)
        talus.configure(0, TalusConfig(total_size=cap, alpha=cap,
                                       beta=cap, rho=0.0, s1=0.0,
                                       s2=cap, degenerate=True))
        # Hardware UMONs sample at ~1/64 because real LLCs hold millions of
        # lines; at this reproduction's scaled-down sizes that would leave
        # only a handful of sampled lines, so scale the rate to keep a few
        # thousand monitored lines.
        primary_rate = min(1.0, max(1.0 / 64.0, 2048.0 / lines))
        monitor = CombinedUMON(llc_size=lines, points=self.monitor_points,
                               primary_rate=primary_rate,
                               coverage_ratio=0.25)

        addresses = trace.addresses
        total = len(addresses)
        interval = max(1, self.interval_accesses)
        interval_index = 0
        position = 0
        last_curve = None
        self.records = []
        while position < total:
            end = min(position + interval, total)
            config_used = talus.shadow_pair(0).config
            chunk = addresses[position:end]
            # Monitor and cache both advance chunk by chunk on persistent
            # state: the monitor folds the interval into its incremental
            # stack-distance state, and the cache replays it in one batched
            # native pass on the array backend (access by access on the
            # object model — identical results on the exact tier).
            monitor.record_trace(chunk)
            chunk_stats = talus.run_chunk(chunk, 0)
            self.records.append(IntervalRecord(index=interval_index,
                                               accesses=end - position,
                                               misses=chunk_stats.misses,
                                               config=config_used))
            position = end
            interval_index += 1
            if interval_index >= self.warmup_intervals:
                last_curve = self._reconfigure(talus, monitor, lines, trace)
        return last_curve

    def _reconfigure(self, talus: TalusCache, monitor: CombinedUMON,
                     lines: int, trace: Trace) -> MissCurve:
        """Plan from the monitor's current curve and program the cache."""
        curve = planning_curve_from_monitor(monitor, trace)
        partitionable_mb = lines_to_paper_mb(talus.base.partitionable_lines)
        plan_mb = min(self.target_mb, partitionable_mb)
        config = plan_shadow_partitions(curve, plan_mb,
                                        safety_margin=self.safety_margin)
        talus.configure(0, config_mb_to_lines(config))
        return curve

    # ------------------------------------------------------------------ #
    def total_misses(self, skip_warmup: bool = True) -> int:
        """Total misses over recorded intervals (optionally skipping warm-up)."""
        records = self.records[self.warmup_intervals:] if skip_warmup else self.records
        return sum(r.misses for r in records)

    def total_accesses(self, skip_warmup: bool = True) -> int:
        """Total accesses over recorded intervals (optionally skipping warm-up)."""
        records = self.records[self.warmup_intervals:] if skip_warmup else self.records
        return sum(r.accesses for r in records)
