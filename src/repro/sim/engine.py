"""Single-application simulation drivers: miss-curve sweeps and Talus runs.

These helpers connect the workload, cache and core layers:

* exact LRU miss curves via stack distance (fast path — one pass);
* simulated miss curves for arbitrary replacement policies, batched through
  the sweep engine (:mod:`repro.sim.sweep`): the trace is materialized once
  and every (policy, size) point is simulated from it, on the array/native
  backend whenever that is bit-identical to the object model;
* simulated Talus miss curves on a chosen partitioning scheme, either with a
  static configuration planned from a measured curve or with the full
  interval-based reconfiguration loop (:mod:`repro.sim.reconfigure`).

Curves produced here are in (paper MB, MPKI) units so they can be compared
directly with the paper's figures.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..cache.partition import make_partitioned_cache
from ..cache.replacement.base import PolicyFactory
from ..cache.spec import PartitionSpec, TalusSpec
from ..cache.talus_cache import TalusCache
from ..core.misscurve import MissCurve
from ..core.talus import plan_shadow_partitions
from ..monitor.multipoint import MultiPointMonitor
from ..monitor.stack_distance import lru_miss_curve
from ..workloads.access import Trace
from ..workloads.scale import paper_mb_to_lines
from ..workloads.spec_profiles import AppProfile
from .sweep import DEFAULT_WAYS, SweepConfig, SweepSpec, run_sweep

__all__ = [
    "lru_mpki_curve",
    "simulated_mpki_curve",
    "monitored_mpki_curve",
    "talus_simulated_mpki_curve",
    "talus_sweep_configs",
    "plan_talus_spec",
    "simulate_policy_at_size",
    "DEFAULT_WAYS",
]


def lru_mpki_curve(trace: Trace, sizes_mb: Sequence[float]) -> MissCurve:
    """Exact (fully-associative) LRU MPKI curve of a trace via stack distance."""
    sizes_mb = np.asarray(list(sizes_mb), dtype=float)
    sizes_lines = np.array([paper_mb_to_lines(mb) for mb in sizes_mb], dtype=float)
    raw = lru_miss_curve(trace.addresses, sizes=sizes_lines)
    return MissCurve(sizes_mb, raw.misses * 1000.0 / trace.instructions)


def simulate_policy_at_size(trace: Trace, size_mb: float, policy: str,
                            ways: int = DEFAULT_WAYS,
                            backend: str = "auto") -> float:
    """MPKI of ``policy`` on ``trace`` at one cache size (paper MB)."""
    curve = simulated_mpki_curve(trace, [size_mb], policy, ways=ways,
                                 backend=backend)
    return float(curve.misses[0])


def simulated_mpki_curve(trace: Trace, sizes_mb: Sequence[float], policy: str,
                         ways: int = DEFAULT_WAYS,
                         backend: str = "auto",
                         max_workers: int = 1,
                         sampling=None) -> MissCurve:
    """Simulated MPKI curve of an arbitrary policy, batched over all sizes.

    All sizes are simulated from one materialized trace through
    :func:`repro.sim.sweep.run_sweep`; ``backend`` selects the simulation
    core ("object", "array" or "auto") and ``max_workers`` optionally fans
    the sizes out over a process pool.  ``sampling=`` (a
    :class:`~repro.sampling.driver.SamplingSpec`) estimates each point
    from sampled detailed windows instead of an exact replay — the way
    to draw a curve from a trace too long to materialize (a
    :class:`~repro.workloads.scale.ChunkedTrace` is accepted directly).
    """
    spec = SweepSpec(sizes_mb=tuple(float(s) for s in sizes_mb),
                     policies=(policy,), ways=ways, backend=backend,
                     max_workers=max_workers)
    return run_sweep(trace, spec, sampling=sampling).mpki_curve(policy)


def monitored_mpki_curve(trace: Trace, sizes_mb: Sequence[float],
                         policy: str,
                         ways: int = DEFAULT_WAYS,
                         monitor_lines: int = 2048,
                         seed: int = 13,
                         backend: str = "auto") -> MissCurve:
    """Miss curve of ``policy`` as a multi-point monitor would measure it.

    This is the planning-curve source the paper's Sec. VI-C prescribes for
    non-stack policies: one set-sampled monitor per curve point
    (:class:`repro.monitor.multipoint.MultiPointMonitor`), driven here on
    the vectorized/native fast path.  The returned curve covers size 0 plus
    every requested size, in (paper MB, MPKI) units — the measured stand-in
    for :func:`simulated_mpki_curve`, with monitoring noise included.
    Sizes that collapse to the same simulated line count (below the
    half-line resolution of the paper-MB scale) share one monitor point
    and appear once, under the smallest such size.
    """
    size_map: dict[int, float] = {0: 0.0}
    for mb in sorted(set(float(s) for s in sizes_mb)):
        size_map.setdefault(paper_mb_to_lines(mb), mb)
    monitor = MultiPointMonitor(sorted(size_map), policy=policy, ways=ways,
                                monitor_lines=monitor_lines, seed=seed,
                                backend=backend)
    monitor.record_trace(trace.addresses)
    raw = monitor.miss_curve()   # points in ascending line order
    mpki = raw.misses * 1000.0 / trace.instructions
    sizes = [size_map[lines] for lines in sorted(size_map)]
    return MissCurve(np.asarray(sizes), np.asarray(mpki))


def talus_simulated_mpki_curve(profile: AppProfile,
                               sizes_mb: Sequence[float],
                               scheme: str = "vantage",
                               policy: str = "LRU",
                               planning_curve: MissCurve | None = None,
                               safety_margin: float = 0.05,
                               n_accesses: int | None = None,
                               seed: int = 0,
                               ways: int = DEFAULT_WAYS,
                               policy_factory: PolicyFactory | None = None,
                               scheme_kwargs: dict | None = None,
                               backend: str = "auto",
                               ) -> MissCurve:
    """Simulated Talus MPKI curve on a partitioning scheme (Fig. 8 / Fig. 9).

    For each target size, a Talus configuration is planned from
    ``planning_curve`` (default: the profile's exact LRU curve — the role the
    UMONs play in hardware), packed into a
    :class:`~repro.cache.spec.TalusSpec`, and the profile's trace is
    replayed through the built cache.  All sizes ride one
    :func:`repro.sim.sweep.run_sweep` pass; on the (default) "auto"
    backend, way/set/ideal schemes with exact-tier policies replay in the
    partition-aware native kernel, bit-identical to the object model.

    Parameters
    ----------
    profile:
        Application profile supplying the trace.
    sizes_mb:
        Target cache sizes, paper MB.
    scheme:
        Partitioning scheme name ("ideal", "way", "set", "vantage").
    policy:
        Replacement policy inside the shadow partitions.
    planning_curve:
        Miss curve used for planning, in (paper MB, MPKI).  When monitoring
        a non-LRU policy, pass a curve measured with
        :class:`~repro.monitor.multipoint.MultiPointMonitor`.
    safety_margin:
        Sampling-rate margin (the paper's implementation uses 5 %).
    backend:
        Backend of the underlying partitioned caches ("object", "array"
        or "auto").
    """
    sizes_mb = sorted(set(float(s) for s in sizes_mb))
    trace = profile.trace(n_accesses=n_accesses) if n_accesses else profile.trace(seed=seed)
    if planning_curve is None:
        max_mb = max(max(sizes_mb) * 1.5, 1.0)
        planning_curve = profile.lru_curve(max_mb=max_mb)
    configs = talus_sweep_configs(sizes_mb, scheme=scheme, policy=policy,
                                  planning_curve=planning_curve,
                                  safety_margin=safety_margin, ways=ways,
                                  policy_factory=policy_factory,
                                  scheme_kwargs=scheme_kwargs,
                                  backend=backend)
    result = run_sweep(trace, configs)
    mpki_values = [result.mpki(("talus", size_mb)) for size_mb in sizes_mb]
    return MissCurve(np.asarray(sizes_mb), np.asarray(mpki_values))


def plan_talus_spec(size_mb: float,
                    planning_curve: MissCurve,
                    scheme: str = "vantage",
                    policy: str = "LRU",
                    safety_margin: float = 0.05,
                    ways: int = DEFAULT_WAYS,
                    backend: str = "auto",
                    scheme_kwargs: dict | None = None) -> TalusSpec:
    """Plan one Talus configuration and pack it as a declarative spec.

    The shadow-partition split is planned on ``planning_curve`` at the
    scheme's partitionable capacity (computed from the description alone
    via :func:`repro.cache.partition.partitionable_lines_for`, without
    building the cache) and converted to simulated lines; the result is a
    frozen, picklable :class:`~repro.cache.spec.TalusSpec` ready for
    ``build(spec)`` or a :class:`~repro.sim.sweep.SweepConfig`.
    """
    lines = paper_mb_to_lines(size_mb)
    partition = PartitionSpec(
        scheme=scheme, capacity_lines=lines, num_partitions=2,
        policy=policy, ways=ways, backend=backend,
        scheme_kwargs=tuple(sorted((scheme_kwargs or {}).items())))
    partitionable_mb = partition.partitionable_lines / paper_mb_to_lines(1.0)
    config = plan_shadow_partitions(planning_curve,
                                    min(size_mb, partitionable_mb)
                                    if partitionable_mb > 0 else size_mb,
                                    safety_margin=safety_margin)
    return TalusSpec(partition=partition,
                     configs=(_config_to_lines(config),))


def talus_sweep_configs(sizes_mb: Sequence[float],
                        scheme: str = "vantage",
                        policy: str = "LRU",
                        planning_curve: MissCurve | None = None,
                        safety_margin: float = 0.05,
                        ways: int = DEFAULT_WAYS,
                        policy_factory: PolicyFactory | None = None,
                        scheme_kwargs: dict | None = None,
                        label: object = "talus",
                        backend: str = "auto") -> list[SweepConfig]:
    """Sweep configs for planned Talus caches, one per target size.

    Each config's key is ``(label, size_mb)``, so several scheme/policy/
    margin variants can be concatenated into a single
    :func:`repro.sim.sweep.run_sweep` pass (the Fig. 8 harness and the
    ablations do exactly that).  Duplicate sizes are deduplicated; sizes
    that map to zero lines become builder-less zero-capacity configs, which
    the sweep engine reports as all-miss — the trace's full miss rate, as
    the seed per-size loop did.

    Configs are declarative :func:`plan_talus_spec` specs (picklable, and
    batched through the partition-aware fast path wherever ``backend``
    resolves to the array model).  A custom ``policy_factory`` cannot be
    expressed declaratively, so it falls back to the legacy object-model
    builder closure.
    """
    if planning_curve is None:
        raise ValueError("planning_curve is required")
    sizes_mb = sorted(set(float(s) for s in sizes_mb))

    def talus_builder(size_mb: float):
        def build():
            lines = paper_mb_to_lines(size_mb)
            base = make_partitioned_cache(scheme, lines, 2,
                                          policy_factory=policy_factory,
                                          ways=ways,
                                          **(scheme_kwargs or {}))
            talus = TalusCache(base, num_logical=1)
            # Plan in MB on the planning curve, then convert the shadow
            # sizes to lines for the hardware.
            partitionable_mb = base.partitionable_lines / paper_mb_to_lines(1.0)
            config = plan_shadow_partitions(planning_curve,
                                            min(size_mb, partitionable_mb)
                                            if partitionable_mb > 0 else size_mb,
                                            safety_margin=safety_margin)
            talus.configure(0, _config_to_lines(config))
            return talus
        return build

    configs = []
    for size_mb in sizes_mb:
        if paper_mb_to_lines(size_mb) <= 0:
            configs.append(SweepConfig(key=(label, size_mb), size_mb=size_mb))
        elif policy_factory is not None:
            configs.append(SweepConfig(key=(label, size_mb), size_mb=size_mb,
                                       builder=talus_builder(size_mb)))
        else:
            spec = plan_talus_spec(size_mb, planning_curve, scheme=scheme,
                                   policy=policy,
                                   safety_margin=safety_margin, ways=ways,
                                   backend=backend,
                                   scheme_kwargs=scheme_kwargs)
            configs.append(SweepConfig(key=(label, size_mb), size_mb=size_mb,
                                       spec=spec))
    return configs


def _config_to_lines(config):
    """Convert a TalusConfig planned in paper MB to one in simulated lines."""
    from ..core.talus import TalusConfig
    factor = float(paper_mb_to_lines(1.0))
    return TalusConfig(
        total_size=config.total_size * factor,
        alpha=config.alpha * factor,
        beta=config.beta * factor,
        rho=config.rho,
        s1=config.s1 * factor,
        s2=config.s2 * factor,
        degenerate=config.degenerate,
    )
