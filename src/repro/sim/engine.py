"""Single-application simulation drivers: miss-curve sweeps and Talus runs.

These helpers connect the workload, cache and core layers:

* exact LRU miss curves via stack distance (fast path — one pass);
* simulated miss curves for arbitrary replacement policies (one simulation
  per size, as the paper's non-stack policies require);
* simulated Talus miss curves on a chosen partitioning scheme, either with a
  static configuration planned from a measured curve or with the full
  interval-based reconfiguration loop (:mod:`repro.sim.reconfigure`).

Curves produced here are in (paper MB, MPKI) units so they can be compared
directly with the paper's figures.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..cache.cache import SetAssociativeCache
from ..cache.factory import named_policy_factory
from ..cache.partition import make_partitioned_cache
from ..cache.replacement.base import PolicyFactory
from ..cache.talus_cache import TalusCache
from ..core.misscurve import MissCurve
from ..core.talus import plan_shadow_partitions
from ..monitor.stack_distance import lru_miss_curve
from ..workloads.access import Trace
from ..workloads.scale import paper_mb_to_lines
from ..workloads.spec_profiles import AppProfile

__all__ = [
    "lru_mpki_curve",
    "simulated_mpki_curve",
    "talus_simulated_mpki_curve",
    "simulate_policy_at_size",
]

#: Default associativity of simulated caches (scaled stand-in for the
#: paper's 32-way LLC).
DEFAULT_WAYS = 16


def _mpki(misses: float, trace: Trace) -> float:
    return 1000.0 * misses / trace.instructions


def lru_mpki_curve(trace: Trace, sizes_mb: Sequence[float]) -> MissCurve:
    """Exact (fully-associative) LRU MPKI curve of a trace via stack distance."""
    sizes_mb = np.asarray(list(sizes_mb), dtype=float)
    sizes_lines = np.array([paper_mb_to_lines(mb) for mb in sizes_mb], dtype=float)
    raw = lru_miss_curve(trace.addresses, sizes=sizes_lines)
    return MissCurve(sizes_mb, raw.misses * 1000.0 / trace.instructions)


def simulate_policy_at_size(trace: Trace, size_mb: float, policy: str,
                            ways: int = DEFAULT_WAYS) -> float:
    """MPKI of ``policy`` on ``trace`` at one cache size (paper MB)."""
    lines = paper_mb_to_lines(size_mb)
    if lines <= 0:
        return _mpki(len(trace), trace)
    if lines < ways:
        num_sets, eff_ways = 1, lines
    else:
        num_sets, eff_ways = lines // ways, ways
    factory = named_policy_factory(policy, num_sets)
    cache = SetAssociativeCache(num_sets, eff_ways, factory)
    stats = cache.run(trace.addresses)
    return _mpki(stats.misses, trace)


def simulated_mpki_curve(trace: Trace, sizes_mb: Sequence[float], policy: str,
                         ways: int = DEFAULT_WAYS) -> MissCurve:
    """Simulated MPKI curve of an arbitrary policy (one run per size)."""
    sizes_mb = sorted(set(float(s) for s in sizes_mb))
    mpki = [simulate_policy_at_size(trace, mb, policy, ways=ways)
            for mb in sizes_mb]
    return MissCurve(np.asarray(sizes_mb), np.asarray(mpki))


def talus_simulated_mpki_curve(profile: AppProfile,
                               sizes_mb: Sequence[float],
                               scheme: str = "vantage",
                               policy: str = "LRU",
                               planning_curve: MissCurve | None = None,
                               safety_margin: float = 0.05,
                               n_accesses: int | None = None,
                               seed: int = 0,
                               ways: int = DEFAULT_WAYS,
                               policy_factory: PolicyFactory | None = None,
                               scheme_kwargs: dict | None = None,
                               ) -> MissCurve:
    """Simulated Talus MPKI curve on a partitioning scheme (Fig. 8 / Fig. 9).

    For each target size, a Talus configuration is planned from
    ``planning_curve`` (default: the profile's exact LRU curve — the role the
    UMONs play in hardware), programmed into a :class:`TalusCache` built on
    ``scheme``, and the profile's trace is replayed through it.

    Parameters
    ----------
    profile:
        Application profile supplying the trace.
    sizes_mb:
        Target cache sizes, paper MB.
    scheme:
        Partitioning scheme name ("ideal", "way", "set", "vantage").
    policy:
        Replacement policy inside the shadow partitions.
    planning_curve:
        Miss curve used for planning, in (paper MB, MPKI).  When monitoring
        a non-LRU policy, pass a curve measured with
        :class:`~repro.monitor.multipoint.MultiPointMonitor`.
    safety_margin:
        Sampling-rate margin (the paper's implementation uses 5 %).
    """
    sizes_mb = sorted(set(float(s) for s in sizes_mb))
    trace = profile.trace(n_accesses=n_accesses) if n_accesses else profile.trace(seed=seed)
    if planning_curve is None:
        max_mb = max(max(sizes_mb) * 1.5, 1.0)
        planning_curve = profile.lru_curve(max_mb=max_mb)
    mpki_values = []
    for size_mb in sizes_mb:
        lines = paper_mb_to_lines(size_mb)
        if lines <= 0:
            mpki_values.append(_mpki(len(trace), trace))
            continue
        factory = policy_factory
        if factory is None:
            # Two shadow partitions: dueling-by-set is unavailable, so use
            # the standalone variants of each policy.
            factory = named_policy_factory(policy, 2)
        base = make_partitioned_cache(scheme, lines, 2,
                                      policy_factory=factory, ways=ways,
                                      **(scheme_kwargs or {}))
        talus = TalusCache(base, num_logical=1)
        # Plan in MB on the planning curve, then convert the shadow sizes to
        # lines for the hardware.
        partitionable_mb = base.partitionable_lines / paper_mb_to_lines(1.0)
        config = plan_shadow_partitions(planning_curve,
                                        min(size_mb, partitionable_mb)
                                        if partitionable_mb > 0 else size_mb,
                                        safety_margin=safety_margin)
        config_lines = _config_to_lines(config)
        talus.configure(0, config_lines)
        stats = talus.run(trace.addresses, logical=0)
        mpki_values.append(_mpki(stats.misses, trace))
    return MissCurve(np.asarray(sizes_mb), np.asarray(mpki_values))


def _config_to_lines(config):
    """Convert a TalusConfig planned in paper MB to one in simulated lines."""
    from ..core.talus import TalusConfig
    factor = float(paper_mb_to_lines(1.0))
    return TalusConfig(
        total_size=config.total_size * factor,
        alpha=config.alpha * factor,
        beta=config.beta * factor,
        rho=config.rho,
        s1=config.s1 * factor,
        s2=config.s2 * factor,
        degenerate=config.degenerate,
    )
