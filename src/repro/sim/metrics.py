"""System-level metrics used in the paper's evaluation.

* **weighted speedup** — ``(sum_i IPC_i / IPC_i,base) / N``: throughput with
  some fairness weighting (Sec. VII-A).
* **harmonic speedup** — ``1 / sum_i (IPC_i,base / IPC_i)``: emphasizes
  fairness; an application that is starved drags the harmonic mean down.
* **coefficient of variation of per-core IPC** — the paper's unfairness
  measure in Fig. 13 (standard deviation over mean; lower is fairer).
* **gmean** — geometric mean, used for cross-benchmark IPC summaries
  (Fig. 11) and cross-mix speedup summaries (Fig. 12).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["weighted_speedup", "harmonic_speedup", "coefficient_of_variation",
           "gmean"]


def _check_pair(ipcs: Sequence[float], baseline: Sequence[float]) -> None:
    if len(ipcs) != len(baseline):
        raise ValueError("ipcs and baseline must have the same length")
    if len(ipcs) == 0:
        raise ValueError("need at least one application")
    if any(x <= 0 for x in ipcs) or any(x <= 0 for x in baseline):
        raise ValueError("IPC values must be positive")


def weighted_speedup(ipcs: Sequence[float], baseline: Sequence[float]) -> float:
    """``(sum_i IPC_i / IPC_i,baseline) / N`` — the paper's throughput metric."""
    _check_pair(ipcs, baseline)
    ratios = [ipc / base for ipc, base in zip(ipcs, baseline)]
    return float(sum(ratios) / len(ratios))


def harmonic_speedup(ipcs: Sequence[float], baseline: Sequence[float]) -> float:
    """``N / sum_i (IPC_i,baseline / IPC_i)`` — the paper's fairness-weighted metric.

    The paper writes it as ``1 / sum_i (IPC_i,LRU / IPC_i)``; normalizing by
    ``N`` (as done here and in common usage) makes the no-change value 1.0,
    which is how Fig. 12(b)'s axis reads.
    """
    _check_pair(ipcs, baseline)
    inverse = [base / ipc for ipc, base in zip(ipcs, baseline)]
    return float(len(ipcs) / sum(inverse))


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Standard deviation divided by mean (population std); 0 when all equal."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one value")
    mean = arr.mean()
    if mean == 0:
        return 0.0
    return float(arr.std() / mean)


def gmean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one value")
    if np.any(arr <= 0):
        raise ValueError("gmean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
